//! Drive a box into deliberate overload and watch the paper's principles
//! order the degradation (§2.1): the user who overloads is the one who
//! sees it; video sheds before audio; the oldest stream sheds first; and
//! commands still land.
//!
//! ```text
//! cargo run --release --example overload
//! ```

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig};
use pandora_atm::HopConfig;
use pandora_audio::gen::Speech;
use pandora_buffers::ReportClass;
use pandora_sim::{SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn main() {
    let mut sim = Simulation::new();
    let mut cfg = BoxConfig::standard("overloaded");
    cfg.video_backlog_cap = 12; // A deliberately shallow video backlog.
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("peer"),
        &[HopConfig::clean(6_000_000)],
        77,
    );

    // The call starts healthy: audio + one modest video window.
    open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(5)));
    let modest = CaptureConfig {
        rect: Rect::new(0, 0, 256, 192),
        rate: RateFraction::FULL,
        lines_per_segment: 64,
        mode: LineMode::Dpcm,
    };
    let (old_video, _, _h1) = open_video_stream(&pair.a, &pair.b, modest);
    sim.run_until(SimTime::from_secs(3));
    println!(
        "t=3s healthy-ish: audio {} segments out, video {} segments out",
        pair.a.net_out_stats.audio_segments(),
        pair.a.net_out_stats.video_segments()
    );

    // "A video call may come in while several other streams are being
    // displayed … the user should be allowed to open the new stream,
    // observe the degradation, and decide if it is worth shutting
    // something down" (§2.1).
    let (new_video, _, _h2) = open_video_stream(&pair.a, &pair.b, modest);
    sim.run_until(SimTime::from_secs(9));

    println!("\nt=9s overloaded (two full-rate video streams on 6 Mbit/s):");
    println!(
        "  audio delivered  : {} of {} sent — Principle 2 keeps the conversation alive",
        pair.b.speaker.segments_received(),
        pair.a.net_out_stats.audio_segments()
    );
    println!(
        "  video shed       : old stream dropped {} segments, new stream {} — Principle 3",
        pair.a.net_out_stats.p3_drops(old_video),
        pair.a.net_out_stats.p3_drops(new_video)
    );

    // Principle 4: commands still work — shut the old stream down.
    pair.a.query_stream(old_video);
    pair.a.clear_route(old_video);
    sim.run_until(SimTime::from_secs(12));
    let after = pair.a.net_out_stats.p3_drops(new_video);
    println!("  after closing the old stream, the new one flows (its total P3 drops: {after})");

    // The host log shows the overload reports the paper describes (§3.8).
    let overload_reports = pair.a.log.of_class(ReportClass::Overload);
    println!(
        "\nhost log collected {} overload reports; e.g.:",
        overload_reports.len()
    );
    for r in overload_reports.iter().take(4) {
        println!("  {r}");
    }
}
