//! The paper's flagship application: a hands-free duplex videophone call
//! over a jittery network (§2.3, §4.1, §4.3).
//!
//! ```text
//! cargo run --release --example videophone
//! ```
//!
//! Two boxes exchange audio and video for 30 virtual seconds across a
//! path with the paper's observed jitter profile (≈2 ms usually, bursts
//! toward 20 ms). Muting ducks each microphone while the far end talks;
//! clawback buffers absorb the jitter at each speaker.

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig};
use pandora_atm::{HopConfig, JitterModel};
use pandora_audio::gen::Speech;
use pandora_sim::{SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn main() {
    let mut sim = Simulation::new();
    let hop = HopConfig {
        bits_per_sec: 50_000_000,
        latency: SimDuration::from_micros(500),
        jitter: JitterModel::Bursty {
            base: SimDuration::from_millis(2),
            burst: SimDuration::from_millis(20),
            burst_prob: 0.02,
        },
        loss: 0.0002,
    };
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("alice"),
        BoxConfig::standard("bob"),
        &[hop],
        99,
    );

    // Duplex audio: each side speaks (different seeds), hears the other.
    let (_, b_hears) = open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(1)));
    let (_, a_hears) = open_audio_shout(&pair.b, &pair.a, Box::new(Speech::new(2)));
    // Duplex video at 2/5 of full rate (10 fps), quarter-ish windows.
    let window = CaptureConfig {
        rect: Rect::new(64, 32, 256, 192),
        rate: RateFraction::new(2, 5),
        lines_per_segment: 48,
        mode: LineMode::Dpcm,
    };
    open_video_stream(&pair.a, &pair.b, window);
    open_video_stream(&pair.b, &pair.a, window);

    sim.run_until(SimTime::from_secs(30));

    for (name, boxy, hears) in [("alice", &pair.a, a_hears), ("bob", &pair.b, b_hears)] {
        let mut lat = boxy.speaker.latency_ns();
        let jitter = boxy
            .speaker
            .jitter_of(hears)
            .map(|j| j.peak_to_peak() / 1e6)
            .expect("incoming audio stream has a jitter tracker");
        println!("{name} heard/saw:");
        println!(
            "  audio: {} segments, {} lost, {} concealed, latency p50 {:.1} ms, arrival jitter p2p {:.1} ms",
            boxy.speaker.segments_received(),
            boxy.speaker.segments_lost(),
            boxy.speaker.concealed(),
            lat.percentile(50.0) / 1e6,
            jitter,
        );
        println!(
            "  video: {:.1} fps shown, {} frames dropped incomplete, display latency p50 {:.1} ms",
            boxy.display.fps(SimDuration::from_secs(30)),
            boxy.display.frames_dropped(),
            {
                let mut l = boxy.display.latency_ns();
                l.percentile(50.0) / 1e6
            },
        );
        if let Some(muting) = boxy.muting() {
            println!(
                "  muting ended the call in stage {:?}",
                muting.borrow().stage()
            );
        }
    }

    // A taste of the host log (the paper's report multiplexing, §3.8).
    let log = pair.a.log.entries();
    println!("\nalice's host log: {} reports; first few:", log.len());
    for r in log.iter().take(5) {
        println!("  {r}");
    }
}
