//! The paper's flagship application: a hands-free duplex videophone call
//! over a jittery network (§2.3, §4.1, §4.3), set up by the session
//! control plane rather than hand-wired routes.
//!
//! ```text
//! cargo run --release --example videophone
//! ```
//!
//! Two boxes exchange audio and video for 30 virtual seconds across a
//! path with the paper's observed jitter profile (≈2 ms usually, bursts
//! toward 20 ms). Call setup is four sessions — audio and video each
//! way — admitted against each box's capability descriptor; muting
//! ducks each microphone while the far end talks; clawback buffers
//! absorb the jitter at each speaker.

use pandora_atm::{HopConfig, JitterModel};
use pandora_audio::gen::Speech;
use pandora_segment::StreamId;
use pandora_session::{point_to_point, StarConfig, StreamClass};
use pandora_sim::{SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn main() {
    let mut sim = Simulation::new();
    // Each box's fabric attachment gets half the paper's disturbance:
    // a call crosses two attachments in series, so end-to-end the call
    // sees the §3.7.2 profile (≈2 ms usual jitter, bursts toward 20 ms,
    // 0.02% cell loss).
    let hop = HopConfig {
        bits_per_sec: 50_000_000,
        latency: SimDuration::from_micros(250),
        jitter: JitterModel::Bursty {
            base: SimDuration::from_millis(1),
            burst: SimDuration::from_millis(10),
            burst_prob: 0.02,
        },
        loss: 0.0001,
    };
    let star = point_to_point(
        &sim.spawner(),
        StarConfig {
            hops: vec![hop],
            seed: 99,
            ..Default::default()
        },
    );
    let (alice, bob) = (&star.nodes[0], &star.nodes[1]);

    // Sources on each side: a voice and a quarter-ish camera window at
    // 2/5 of full rate (10 fps).
    let window = CaptureConfig {
        rect: Rect::new(64, 32, 256, 192),
        rate: RateFraction::new(2, 5),
        lines_per_segment: 48,
        mode: LineMode::Dpcm,
    };
    let a_mic = alice.boxy.start_audio_source(Box::new(Speech::new(1)));
    let b_mic = bob.boxy.start_audio_source(Box::new(Speech::new(2)));
    let (a_cam, _) = alice.boxy.start_video_capture(window);
    let (b_cam, _) = bob.boxy.start_video_capture(window);

    let controller = star.controller.clone();
    let (a_ep, b_ep) = (alice.endpoint, bob.endpoint);
    let heard = std::rc::Rc::new(std::cell::RefCell::new(Vec::<StreamId>::new()));
    let h = heard.clone();
    sim.spawn("host", async move {
        // The duplex call: audio and video sessions each way. Admission
        // charges each box's budgets; on this fabric everything fits at
        // full rate.
        for (ep, stream, class, dst) in [
            (a_ep, a_mic, StreamClass::Audio, b_ep),
            (b_ep, b_mic, StreamClass::Audio, a_ep),
            (
                a_ep,
                a_cam,
                StreamClass::Video {
                    rate_permille: 1000,
                },
                b_ep,
            ),
            (
                b_ep,
                b_cam,
                StreamClass::Video {
                    rate_permille: 1000,
                },
                a_ep,
            ),
        ] {
            let session = controller.open(ep, stream, class).unwrap();
            let admitted = controller.add_listener(session, dst).await.unwrap();
            assert_eq!(admitted.rate_permille, 1000, "nothing needed degrading");
            if matches!(class, StreamClass::Audio) {
                // Remember the arriving stream ids for the jitter report
                // (b hears first, then a).
                h.borrow_mut().push(admitted.vci.stream());
            }
        }
    });

    sim.run_until(SimTime::from_secs(30));

    let (b_hears, a_hears) = (heard.borrow()[0], heard.borrow()[1]);
    for (name, node, hears) in [("alice", alice, a_hears), ("bob", bob, b_hears)] {
        let boxy = &node.boxy;
        let mut lat = boxy.speaker.latency_ns();
        let jitter = boxy
            .speaker
            .jitter_of(hears)
            .map(|j| j.peak_to_peak() / 1e6)
            .expect("incoming audio stream has a jitter tracker");
        println!("{name} heard/saw:");
        println!(
            "  audio: {} segments, {} lost, {} concealed, latency p50 {:.1} ms, arrival jitter p2p {:.1} ms",
            boxy.speaker.segments_received(),
            boxy.speaker.segments_lost(),
            boxy.speaker.concealed(),
            lat.percentile(50.0) / 1e6,
            jitter,
        );
        println!(
            "  video: {:.1} fps shown, {} frames dropped incomplete, display latency p50 {:.1} ms",
            boxy.display.fps(SimDuration::from_secs(30)),
            boxy.display.frames_dropped(),
            {
                let mut l = boxy.display.latency_ns();
                l.percentile(50.0) / 1e6
            },
        );
        if let Some(muting) = boxy.muting() {
            println!(
                "  muting ended the call in stage {:?}",
                muting.borrow().stage()
            );
        }
    }

    println!(
        "\ncall setup: {} sessions admitted by the control plane, {} rejections",
        star.controller.setups(),
        star.controller.rejections(),
    );
    println!("{}", star.controller.metrics_table().render());

    // A taste of the host log (the paper's report multiplexing, §3.8).
    let log = alice.boxy.log.entries();
    println!("alice's host log: {} reports; first few:", log.len());
    for r in log.iter().take(5) {
        println!("  {r}");
    }
}
