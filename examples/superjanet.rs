//! The SuperJanet trial (§3.7.2): "unmodified Pandora's Boxes communicated
//! audio and video successfully under the high jitter conditions of a
//! connection from Cambridge to London involving several networks and
//! protocol conversions."
//!
//! ```text
//! cargo run --release --example superjanet
//! ```
//!
//! Four bursty hops with loss; stock box configuration; prints the
//! clawback delay adapting over a one-minute call.

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig};
use pandora_atm::{HopConfig, JitterModel};
use pandora_audio::gen::Speech;
use pandora_segment::StreamId;
use pandora_sim::{SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn main() {
    let mut sim = Simulation::new();
    let hop = HopConfig {
        bits_per_sec: 34_000_000,
        latency: SimDuration::from_millis(2),
        jitter: JitterModel::Bursty {
            base: SimDuration::from_millis(4),
            burst: SimDuration::from_millis(25),
            burst_prob: 0.03,
        },
        loss: 0.0005,
    };
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("cambridge"),
        BoxConfig::standard("london"),
        &[hop, hop, hop, hop],
        1993,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(42)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 192, 144),
            rate: RateFraction::new(1, 5),
            lines_per_segment: 48,
            mode: LineMode::DpcmSub2,
        },
    );

    sim.run_until(SimTime::from_secs(60));

    let s = &pair.b.speaker;
    println!("sixty seconds Cambridge -> London over four bursty hops:");
    println!(
        "  audio : {} segments, {} lost, {} concealed, {} late ticks",
        s.segments_received(),
        s.segments_lost(),
        s.concealed(),
        s.late_ticks()
    );
    if let Some(j) = s.jitter_of(StreamId(1)) {
        println!(
            "  jitter: p2p {:.1} ms (RFC3550 smoothed {:.1} ms)",
            j.peak_to_peak() / 1e6,
            j.rfc3550() / 1e6
        );
    }
    let mut lat = s.latency_ns();
    println!(
        "  delay : end-to-end p50 {:.1} ms, p99 {:.1} ms",
        lat.percentile(50.0) / 1e6,
        lat.percentile(99.0) / 1e6
    );
    println!(
        "  video : {:.1} fps shown, {} frames dropped incomplete",
        pair.b.display.fps(SimDuration::from_secs(60)),
        pair.b.display.frames_dropped()
    );
    println!("\nclawback delay over the call (sampled):");
    for (t, v) in s.delay_series().downsample(12) {
        println!("  t={:>5.1}s  {:>5.1} ms", t as f64 / 1e9, v / 1e6);
    }
    let cb = s.clawback_stats();
    println!(
        "\nclawback totals: {} served, {} empty ticks, {} clawed back, {} over the 120 ms cap",
        cb.served, cb.empty_ticks, cb.clawed_back, cb.over_limit
    );
}
