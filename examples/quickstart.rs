//! Quickstart: two Pandora boxes, one audio call, a handful of stats.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds two boxes joined by a clean 50 Mbit/s ATM path, opens a one-way
//! audio stream ("shout", §4.1 of the paper), runs ten virtual seconds
//! and prints what the destination heard.

use pandora::{connect_pair, open_audio_shout, BoxConfig};
use pandora_atm::HopConfig;
use pandora_audio::gen::Tone;
use pandora_sim::{SimTime, Simulation};

fn main() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("alice"),
        BoxConfig::standard("bob"),
        &[HopConfig::clean(50_000_000)],
        1,
    );

    // Allocate a stream at the destination, plumb it to the speaker, and
    // start the microphone at the source — exactly the paper's setup
    // sequence ("inform each process from the destination back to the
    // source what is to be done", §1.1).
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));

    sim.run_until(SimTime::from_secs(10));

    let speaker = &pair.b.speaker;
    let mut latency = speaker.latency_ns();
    println!("ten virtual seconds of audio from alice to bob:");
    println!("  segments received : {}", speaker.segments_received());
    println!("  segments lost     : {}", speaker.segments_lost());
    println!("  late mix ticks    : {}", speaker.late_ticks());
    println!(
        "  one-way latency   : p50 {:.2} ms, p99 {:.2} ms",
        latency.percentile(50.0) / 1e6,
        latency.percentile(99.0) / 1e6
    );
    println!(
        "  clawback stats    : {} blocks served, {} silence ticks, {} clawed back",
        speaker.clawback_stats().served,
        speaker.clawback_stats().empty_ticks,
        speaker.clawback_stats().clawed_back
    );
    println!(
        "  host time         : the whole run took {} task switches in the simulator",
        sim.context_switches()
    );
}
