//! Medusa (§5.2): the exploded Pandora — camera, microphones, speaker and
//! display as independent units on an ATM switch fabric, with a
//! special-purpose video processor inserted in the path.
//!
//! ```text
//! cargo run --release --example medusa
//! ```

use pandora::audio_board::PlaybackConfig;
use pandora_atm::Vci;
use pandora_audio::gen::Speech;
use pandora_medusa::{
    spawn_camera_unit, spawn_display_unit, spawn_filter_unit, spawn_mic_unit, spawn_speaker_unit,
    Fabric,
};
use pandora_sim::{unbounded, SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn main() {
    let mut sim = Simulation::new();
    let spawner = sim.spawner();
    // Six fabric ports: 2 mics, 1 camera, 1 filter, 1 speaker, 1 display.
    let mut fabric = Fabric::new(&spawner, 6, 100_000_000);
    let (rep_tx, _rep_rx) = unbounded();

    // Two microphone units stream straight to the speaker unit (VCIs 10/11
    // → port 4).
    fabric.route(Vci(10), 4);
    fabric.route(Vci(11), 4);
    spawn_mic_unit(
        &spawner,
        "mic-office-a",
        Box::new(Speech::new(1)),
        2,
        Vci(10),
        fabric.port_tx(0),
    );
    spawn_mic_unit(
        &spawner,
        "mic-office-b",
        Box::new(Speech::new(2)),
        2,
        Vci(11),
        fabric.port_tx(1),
    );
    let (speaker, _cpu) = spawn_speaker_unit(
        &spawner,
        "speaker",
        fabric.take_port_rx(4),
        PlaybackConfig::default(),
        rep_tx,
    );

    // The camera streams to a face-tracker-style filter unit (VCI 20 →
    // port 3), which forwards the processed video to the display
    // (VCI 21 → port 5). "This makes it much easier to insert special
    // purpose processes such as face trackers into the video paths."
    fabric.route(Vci(20), 3);
    fabric.route(Vci(21), 5);
    let (_cam_handle, _cam_cpu) = spawn_camera_unit(
        &spawner,
        "camera",
        CaptureConfig {
            rect: Rect::new(0, 0, 160, 120),
            rate: RateFraction::new(2, 5),
            lines_per_segment: 40,
            mode: LineMode::Raw,
        },
        Vci(20),
        fabric.port_tx(2),
    );
    let processed = spawn_filter_unit(
        &spawner,
        "tracker",
        fabric.take_port_rx(3),
        Vci(21),
        fabric.port_tx(3),
        |seg| {
            // A crude "tracker overlay": brighten the middle lines.
            let record = 1 + seg.video.width as usize;
            let lines = seg.data.len() / record;
            for (l, line) in seg.data.chunks_mut(record).enumerate() {
                if l > lines / 3 && l < 2 * lines / 3 {
                    for b in line.iter_mut().skip(1) {
                        *b = b.saturating_add(40);
                    }
                }
            }
        },
    );
    let (display, _dcpu) = spawn_display_unit(&spawner, "display", fabric.take_port_rx(5));

    sim.run_until(SimTime::from_secs(10));

    println!("medusa fabric after 10 virtual seconds:");
    println!(
        "  speaker unit mixed up to {} streams: {} segments, {} late ticks",
        speaker.max_active_streams(),
        speaker.segments_received(),
        speaker.late_ticks()
    );
    println!(
        "  filter unit processed {} video segments in-path",
        processed.get()
    );
    println!(
        "  display unit showed {:.1} fps ({} frames, {} decode errors)",
        display.fps(SimDuration::from_secs(10)),
        display.frames_shown(),
        display.decode_errors()
    );
    println!(
        "  fabric switch forwarded {} cells ({} unroutable, {} overflowed)",
        fabric.switch().forwarded(),
        fabric.switch().unroutable(),
        fabric.switch().overflow()
    );
}
