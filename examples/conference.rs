//! A multi-way conference run by the session control plane: three
//! speakers' boxes streaming audio to one listener who mixes them in
//! real time (§2.0), set up, grown and shrunk through `pandora-session`
//! instead of hand-wired routes.
//!
//! ```text
//! cargo run --release --example conference
//! ```
//!
//! Also demonstrates the "tannoy" (§4.1) as a controller-managed split
//! — one source stream copied to several members — and admission
//! control refusing the copy that would overload the listener's audio
//! transputer (capacity three, §4.2), instead of letting the
//! conversation degrade.

use pandora_session::{SessionError, Star, StarConfig, StreamClass};
use pandora_sim::{SimDuration, SimTime, Simulation};

use pandora_audio::gen::{Speech, Tone};

fn main() {
    let mut sim = Simulation::new();
    // node0 is the listener; node1..node3 speak. The controller sits on
    // the star's fourth fabric port.
    let star = Star::build(&sim.spawner(), 4, StarConfig::default());
    let listener = star.nodes[0].endpoint;
    let mics: Vec<_> = (1..4)
        .map(|i| {
            star.nodes[i]
                .boxy
                .start_audio_source(Box::new(Speech::new(i as u64)))
        })
        .collect();
    let tannoy_src = star.nodes[1]
        .boxy
        .start_audio_source(Box::new(Tone::new(880.0, 4_000.0)));

    let controller = star.controller.clone();
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    sim.spawn("host", async move {
        // Call setup: each speaker's session gains the listener.
        let mut sessions = Vec::new();
        for (i, mic) in mics.into_iter().enumerate() {
            let s = controller
                .open(endpoints[i + 1], mic, StreamClass::Audio)
                .unwrap();
            controller.add_listener(s, listener).await.unwrap();
            sessions.push(s);
        }
        pandora_sim::delay(SimDuration::from_secs(5)).await;
        // The tannoy: one announcement session split to the whole
        // conference. node2 and node3 have spare capacity; the listener
        // is already mixing three streams, so its admission controller
        // refuses the fourth rather than glitching the conversation.
        let tannoy = controller
            .open(endpoints[1], tannoy_src, StreamClass::Audio)
            .unwrap();
        for member in [endpoints[2], endpoints[3]] {
            controller.add_listener(tannoy, member).await.unwrap();
        }
        match controller.add_listener(tannoy, listener).await {
            Err(SessionError::Rejected(reason)) => {
                println!(
                    "t=5s: tannoy toward the listener refused ({reason:?}) — capacity is 3 (§4.2)"
                );
            }
            other => panic!("expected an admission rejection, got {other:?}"),
        }
        pandora_sim::delay(SimDuration::from_secs(2)).await;
        // speaker-3 hangs up; the freed slot lets the tannoy in.
        controller
            .remove_listener(sessions[2], listener)
            .await
            .unwrap();
        controller.add_listener(tannoy, listener).await.unwrap();
        println!("t=7s: speaker-3 left, tannoy admitted to the listener");
    });
    sim.run_until(SimTime::from_secs(12));

    let hub = &star.nodes[0];
    println!(
        "\nlistener mixed up to {} streams; {} late mix ticks, {} segments lost \
         across {} reconfigurations (P6: zero means no glitches)",
        hub.boxy.speaker.max_active_streams(),
        hub.boxy.speaker.late_ticks(),
        hub.boxy.speaker.segments_lost(),
        star.controller.reconfigs(),
    );
    println!(
        "admission at the listener: {} admitted, {} rejected; controller saw {} rejections",
        hub.agent.admitted(),
        hub.agent.rejected(),
        star.controller.rejections(),
    );
    println!(
        "tannoy heard at node2: {} segments, node3: {} segments",
        star.nodes[2].boxy.speaker.segments_received(),
        star.nodes[3].boxy.speaker.segments_received(),
    );
    println!("\n{}", star.controller.metrics_table().render());
}
