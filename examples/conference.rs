//! A multi-way conference: three speakers' boxes all streaming audio to
//! one listener, who mixes them in real time (§2.0: "no limit is placed
//! on the number of incoming streams that can be mixed, save that imposed
//! by system bandwidths and CPU resources").
//!
//! ```text
//! cargo run --release --example conference
//! ```
//!
//! Also demonstrates the "tannoy" (§4.1): one announcement stream split
//! at the source to several destinations.

use pandora::{BoxConfig, OutputId, PandoraBox, StreamKind};
use pandora_atm::{build_path, Cell, HopConfig, Vci};
use pandora_audio::gen::{Speech, Tone};
use pandora_sim::{Receiver, SimTime, Simulation, Spawner};

/// Joins `sources` to `hub` in a star: every source box gets a one-way
/// path into the hub's single ATM attachment (a merger pump models the
/// ring delivering cells from several upstreams).
fn star(
    spawner: &Spawner,
    hub_cfg: BoxConfig,
    source_cfgs: Vec<BoxConfig>,
    hop: HopConfig,
) -> (PandoraBox, Vec<PandoraBox>) {
    let (merged_tx, merged_rx) = pandora_sim::channel::<Cell>();
    // The hub transmits into the void for this demo (no return paths).
    let (hub_tx, _hub_out_rx, _) = build_path(spawner, "hub-out", &[hop], 7);
    let hub = PandoraBox::new(spawner, hub_cfg, hub_tx, merged_rx);
    let mut sources = Vec::new();
    for (i, cfg) in source_cfgs.into_iter().enumerate() {
        let (src_tx, path_rx, _) = build_path(spawner, "spoke", &[hop], 100 + i as u64);
        let merged_tx = merged_tx.clone();
        spawner.spawn(&format!("merge:{i}"), async move {
            while let Ok(cell) = path_rx.recv().await {
                if merged_tx.send(cell).await.is_err() {
                    return;
                }
            }
        });
        // Each source's inbound side is unused here.
        let (_dead_tx, dead_rx) = pandora_sim::channel::<Cell>();
        let _ = &dead_rx as &Receiver<Cell>;
        sources.push(PandoraBox::new(spawner, cfg, src_tx, dead_rx));
    }
    (hub, sources)
}

fn main() {
    let mut sim = Simulation::new();
    let hop = HopConfig::clean(50_000_000);
    let (hub, sources) = star(
        &sim.spawner(),
        BoxConfig::standard("listener"),
        vec![
            BoxConfig::standard("speaker-1"),
            BoxConfig::standard("speaker-2"),
            BoxConfig::standard("speaker-3"),
        ],
        hop,
    );

    // Each source opens a stream to the hub — the hub allocates the stream
    // number, the source labels its cells with it (§3.4).
    for (i, src) in sources.iter().enumerate() {
        let dst_stream = hub.alloc_stream();
        hub.set_route(dst_stream, StreamKind::Audio, vec![OutputId::Audio]);
        let mic = src.start_audio_source(Box::new(Speech::new(i as u64 + 1)));
        src.set_route(
            mic,
            StreamKind::Audio,
            vec![OutputId::Network(Vci::from_stream(dst_stream))],
        );
    }
    // The tannoy: speaker-1 also announces to itself locally *and* to the
    // hub on a second stream — one source, several destinations (§2.2).
    let announce_dst = hub.alloc_stream();
    hub.set_route(announce_dst, StreamKind::Audio, vec![OutputId::Audio]);
    let tannoy = sources[0].start_audio_source(Box::new(Tone::new(880.0, 4_000.0)));
    sources[0].set_route(
        tannoy,
        StreamKind::Audio,
        vec![
            OutputId::Audio,
            OutputId::Network(Vci::from_stream(announce_dst)),
        ],
    );

    sim.run_until(SimTime::from_secs(5));

    // Four simultaneous streams exceed the audio transputer's full-path
    // capacity of three (§4.2) — the listener's own box degrades, exactly
    // as Principle 1 intends: the overloaded user is the one who notices.
    let late_at_5s = hub.speaker.late_ticks();
    println!("t=5s, four streams mixing at the listener:");
    println!(
        "  mixed up to {} streams; {} late mix ticks so far (capacity is 3, §4.2)",
        hub.speaker.max_active_streams(),
        late_at_5s,
    );

    // "The user of the overloaded machine notices the effects, and tends
    // to shut down unwanted applications without further prompting"
    // (§3.8): drop the tannoy.
    hub.clear_route(announce_dst);
    sim.run_until(SimTime::from_secs(10));
    let late_after = hub.speaker.late_ticks();
    println!("t=10s, after shutting the tannoy down:");
    println!(
        "  {} further late ticks (conversation recovered), {} segments heard in total",
        late_after.saturating_sub(late_at_5s),
        hub.speaker.segments_received(),
    );
    println!(
        "  tannoy still played locally at speaker-1 throughout: {} segments",
        sources[0].speaker.segments_received()
    );
}
