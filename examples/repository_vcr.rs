//! Videomail with the Repository (§2.1, §3.2, §4.1): record a live stream,
//! rewrite it into the compact 40 ms format, then play it back later into
//! another box.
//!
//! ```text
//! cargo run --release --example repository_vcr
//! ```

use pandora::{connect_pair, BoxConfig, OutputId, StreamKind};
use pandora_atm::HopConfig;
use pandora_audio::gen::Speech;
use pandora_repository::{Repository, RepositoryCosts};
use pandora_sim::{SimTime, Simulation};

fn main() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("sender"),
        BoxConfig::standard("receiver"),
        &[HopConfig::clean(50_000_000)],
        3,
    );
    let repo = Repository::new(
        &sim.spawner(),
        "archive",
        RepositoryCosts::default(),
        pair.a.log.sender(),
    );

    // Record 5 seconds of the sender's microphone via the repository tap.
    let mic = pair.a.start_audio_source(Box::new(Speech::new(11)));
    pair.a
        .set_route(mic, StreamKind::Audio, vec![OutputId::Repository]);
    let tap = pair.a.take_repository_rx().expect("repository tap");
    let recording = repo.record(tap, mic);
    sim.run_until(SimTime::from_secs(5));
    recording.stop();
    pair.a.clear_route(mic);
    println!("recorded {} live segments", recording.recorded());

    // Rewrite to the 40ms repository format.
    let compact = repo.resegment(recording.id()).expect("audio recording");
    let saving = repo.resegmentation_saving(recording.id(), compact).unwrap();
    let rec = repo.get(compact).unwrap();
    println!(
        "resegmented to {} forty-ms segments ({} bytes, {:.1}% smaller, repository format: {})",
        rec.len(),
        rec.stored_bytes(),
        saving * 100.0,
        pandora_repository::is_repository_format(&rec),
    );

    // Later: play the message into the receiver box ("these can be played
    // back directly to any Pandora box").
    let play_stream = pair.b.alloc_stream();
    pair.b
        .set_route(play_stream, StreamKind::Audio, vec![OutputId::Audio]);
    repo.playback(compact, play_stream, pair.b.injector(), 0)
        .expect("playback");
    sim.run_until(SimTime::from_secs(11));

    println!(
        "receiver heard the message: {} segments, {} lost, latency p50 {:.1} ms",
        pair.b.speaker.segments_received(),
        pair.b.speaker.segments_lost(),
        {
            let mut l = pair.b.speaker.latency_ns();
            l.percentile(50.0) / 1e6
        },
    );
    println!(
        "playback drops under contention: {}",
        repo.dropped_playback()
    );
}
