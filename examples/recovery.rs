//! Crash recovery in a lease-guarded conference: one member dies
//! mid-call, the controller detects the silence on the command path,
//! reconverges the survivors glitch-free, and the restarted box rejoins
//! through normal admission once its stale state is settled.
//!
//! ```text
//! cargo run --release --example recovery
//! ```
//!
//! The timeline printed at the end is the controller's own lease state
//! record — `live -> suspect -> dead -> live` for the crashed box, at
//! exact virtual times, identical on every run.

use pandora_audio::gen::Speech;
use pandora_faults::{install, FaultPlan, FaultTargets};
use pandora_session::{ControllerConfig, LeaseConfig, Star, StarConfig, StreamClass};
use pandora_sim::{SimDuration, SimTime, Simulation};

fn main() {
    let mut sim = Simulation::new();
    // Six members around the star; the controller holds a 100 ms
    // heartbeat lease on every one of them.
    let star = Star::build(
        &sim.spawner(),
        6,
        StarConfig {
            seed: 7,
            controller: ControllerConfig {
                lease: Some(LeaseConfig::default()),
                ..ControllerConfig::default()
            },
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let controller = star.controller.clone();
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let eps = endpoints.clone();
    sim.spawn("host", async move {
        // node0 speaks to everyone else.
        let s0 = controller.open(eps[0], mic0, StreamClass::Audio).unwrap();
        for &dst in &eps[1..=4] {
            controller.add_listener(s0, dst).await.unwrap();
        }
        // Wait out the crash (2 s), the reconvergence and the restart
        // (6.5 s); once the lease revives and the stale debt settles,
        // re-admit the returned box like any newcomer.
        while controller.rejoins() == 0 {
            pandora_sim::delay(SimDuration::from_millis(100)).await;
        }
        let admitted = controller.add_listener(s0, eps[3]).await.unwrap();
        println!(
            "t={:.1}s: node3 rejoined and was re-admitted at rate {}",
            pandora_sim::now().as_nanos() as f64 / 1e9,
            admitted.rate_permille
        );
    });
    // The seeded adversary: node3 crashes at 2 s, restarts at 6.5 s.
    let plan = FaultPlan::default().crash_restart(
        "node3",
        SimDuration::from_secs(2),
        SimDuration::from_millis(4_500),
    );
    let trace = install(&sim.spawner(), &plan, &FaultTargets::new());
    sim.run_until(SimTime::from_secs(12));

    println!("\nfault trace:\n{}", trace.to_text());
    println!("lease timeline:\n{}", star.controller.recovery_timeline());
    println!("recovery: {}", star.controller.recovery_digest());
    let survivors: Vec<usize> = (1..6).filter(|&i| i != 3).collect();
    let lost: u64 = survivors
        .iter()
        .map(|&i| star.nodes[i].boxy.speaker.segments_lost())
        .sum();
    let late: u64 = survivors
        .iter()
        .map(|&i| star.nodes[i].boxy.speaker.late_ticks())
        .sum();
    println!(
        "survivors: {lost} segments lost, {late} late mix ticks across {} members \
         (P6: zero means the crash never glitched them)",
        survivors.len()
    );
    println!(
        "node3 after rejoin: {} segments received",
        star.nodes[3].boxy.speaker.segments_received()
    );
}
