//! One source, a thousand viewers: the striped multi-tree overlay
//! broadcast (`pandora-overlay`) at soak scale.
//!
//! ```text
//! cargo run --release --example broadcast
//! ```
//!
//! 1,024 members — the source plus 1,023 viewers — carry a striped
//! video stream over `k = 4` trees of degree 8. Every viewer relays in
//! exactly one tree, every copy serializes through that viewer's
//! bandwidth-limited uplink, and the session admission controller
//! charged every relay's fan-out before the first segment left the
//! source. Mid-broadcast, one interior relay crashes; the hub's leases
//! notice, its orphans are grafted onto their precomputed backup
//! parents, and the clawback rings refill the interrupted stripe
//! before anyone's playout deadline passes.
//!
//! The run prints the plan shape (measured depth against the
//! `ceil(log_d n)` bound), the delivery scoreboard for the surviving
//! viewers, the merged per-hop latency histogram, and the repair-gap
//! statistics — the worst single-stripe silence any survivor saw.

use pandora_overlay::{
    build_overlay_broadcast, plan_for, CrashPlan, OverlayConfig, OverlaySummary,
};
use pandora_sim::{SimDuration, SimTime};

fn soak_config() -> OverlayConfig {
    OverlayConfig {
        viewers: 1_023,
        trees: 4,
        degree: 8,
        seed: 42,
        segments: 100,
        segment_interval: SimDuration::from_millis(4),
        payload_bytes: 1_408,
        // 30 cells per segment at 1875 cells/s per stripe copy: 32
        // copies of serialization capacity, so a backup that adopts a
        // dead relay's children (8 -> 16 copies) still has headroom.
        uplink_cps: 60_000,
        source_uplink_cps: 120_000,
        ..OverlayConfig::default()
    }
}

fn main() {
    let mut cfg = soak_config();

    // Crash the busiest interior relay once the broadcast is rolling.
    let plan = match plan_for(&cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("plan failed: {e}");
            std::process::exit(1);
        }
    };
    let victim = (1..plan.members())
        .max_by_key(|&v| plan.fanout(v))
        .filter(|&v| plan.fanout(v) > 0);
    if let Some(victim) = victim {
        cfg.crash = Some(CrashPlan {
            member: victim,
            at: SimDuration::from_millis(150),
        });
    }

    println!("pandora-overlay broadcast soak");
    println!(
        "  members={} trees={} degree={} seed={}",
        plan.members(),
        cfg.trees,
        cfg.degree,
        cfg.seed
    );
    println!(
        "  depth: measured={} bound=ceil(log_d n)={}",
        plan.max_depth_overall(),
        plan.depth_bound()
    );
    if let Some(v) = victim {
        println!(
            "  crash: member {v} (fan-out {}) at 150 ms, interior in tree {:?}",
            plan.fanout(v),
            plan.interior_tree(v)
        );
    }

    let built = match build_overlay_broadcast(&cfg, 4) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("build failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "  admission: relay fan-out charged {} cells/s total",
        built.relay_tx_cps
    );

    let deadline = SimTime::from_nanos(
        cfg.segment_interval.as_nanos() * u64::from(cfg.segments)
            + SimDuration::from_millis(200).as_nanos(),
    );
    let lines = built.cluster.run(deadline).merged_lines();
    let s = OverlaySummary::parse(&lines);

    println!();
    println!("delivery (surviving viewers)");
    let alive = s.viewers - s.crashed;
    println!(
        "  viewers={alive} (of {}, {} crashed)",
        s.viewers, s.crashed
    );
    println!(
        "  delivered={} lost={} late={} dupes={} gap_skips={}",
        s.delivered, s.lost_alive, s.late_alive, s.dupes, s.gap_skips
    );
    println!(
        "  forwarded: source={} relays={} p3_drops={} p8_skips={} max_divisor={}",
        s.src_forwarded, s.forwarded, s.p3_drops, s.p8_skips, s.max_divisor
    );
    println!(
        "  slab: {} payload bytes gathered once at the source",
        s.slab_copied_out
    );

    println!();
    println!("repair");
    println!(
        "  deaths={} grafts={} applied={} unrepairable={}",
        s.hub_deaths, s.hub_grafts, s.grafts_in, s.hub_unrepairable
    );
    println!(
        "  repair gap: worst single-stripe silence {} us (playout budget {} us)",
        s.stripe_gap_max_us_alive,
        cfg.playout.as_nanos() / 1_000
    );
    println!(
        "  overall gap: worst any-stripe silence {} us",
        s.gap_max_us_alive
    );

    println!();
    println!("per-hop latency (merged over surviving viewers)");
    println!(
        "  hops={} p50<={} us p95<={} us p99<={} us max={} us",
        s.hop_count(),
        s.hop_percentile_us(500),
        s.hop_percentile_us(950),
        s.hop_percentile_us(990),
        s.hop_max_us
    );
    for (i, count) in s.hop_buckets.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let lo = 1u64 << i;
        let hi = 1u64 << (i + 1);
        let total = s.hop_count().max(1);
        let bar = "#".repeat(((count * 48).div_ceil(total)) as usize);
        println!("  [{lo:>6}..{hi:>6}) us {count:>8} {bar}");
    }
    if s.lost_alive + s.late_alive == 0 && s.hub_unrepairable == 0 {
        println!();
        println!("every surviving viewer: 0 lost, 0 late — repair held the stream");
    }
}
