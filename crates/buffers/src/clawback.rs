//! Clawback buffers (§3.7.2) — destination-side jitter removal with
//! automatic delay reduction.
//!
//! "These buffers are designed to remove the effects of drift and jitter,
//! and should be placed downstream of any components that introduce
//! variable delays … as close to the destination as possible." One buffer
//! per arriving audio stream; the mixer reads a 2 ms block from each every
//! 2 ms. An empty buffer at mix time inserts silence and lets the buffer
//! refill one block deeper; persistent excess depth is *clawed back* at a
//! fixed slow rate (2 ms per 8 s by default — the Clawback Rate of 1 in
//! 4000), which also absorbs clock drift up to that rate.
//!
//! The [`MultiRateClawback`] implements the paper's proposed extension for
//! high-jitter environments: removal frequency proportional to the running
//! minimum buffer contents, giving an exponential decay of the jitter
//! correction delay with time constant ≈ the configured block-seconds
//! level.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use pandora_segment::StreamId;

/// Nanoseconds per 2 ms audio block.
const BLOCK_NANOS: u64 = 2_000_000;

/// Configuration of a single-rate clawback buffer (defaults from §3.7.2).
#[derive(Debug, Clone, Copy)]
pub struct ClawbackConfig {
    /// The lower target in blocks ("our default is 4ms" = 2 blocks).
    pub lower_target_blocks: usize,
    /// Above-target arrivals before one block is clawed back
    /// ("4096 in our implementation, representing 8 seconds").
    pub count_threshold: u64,
    /// Hard per-stream cap in blocks ("no point in buffering more than
    /// about 120ms of audio for a single stream" = 60 blocks).
    pub per_stream_limit_blocks: usize,
}

impl Default for ClawbackConfig {
    fn default() -> Self {
        ClawbackConfig {
            lower_target_blocks: 2,
            count_threshold: 4096,
            per_stream_limit_blocks: 60,
        }
    }
}

impl ClawbackConfig {
    /// The clawback rate: fraction of blocks removed while above target
    /// (1/4096 by default; the paper rounds to "1 in 4000").
    pub fn clawback_rate(&self) -> f64 {
        1.0 / self.count_threshold as f64
    }
}

/// Outcome of offering an arriving block to a clawback buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Queued normally.
    Accepted,
    /// Dropped to claw back accumulated delay (the adaptive mechanism).
    ClawedBack,
    /// Dropped because the stream hit its hard buffering cap; the paper
    /// treats this as a reportable fault ("the process reports this
    /// condition so that the cause can be investigated").
    OverLimit,
    /// Dropped because the shared pool is exhausted.
    PoolFull,
}

/// Statistics kept by each clawback buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClawbackStats {
    // Fields are summed by `merge` below.
    /// Blocks offered.
    pub arrivals: u64,
    /// Blocks queued.
    pub accepted: u64,
    /// Blocks dropped by the clawback mechanism.
    pub clawed_back: u64,
    /// Blocks dropped at the per-stream cap.
    pub over_limit: u64,
    /// Blocks dropped because the shared pool was full.
    pub pool_full: u64,
    /// Mix ticks that found the buffer empty (silence insertions).
    pub empty_ticks: u64,
    /// Blocks delivered to the mixer.
    pub served: u64,
}

impl ClawbackStats {
    /// Field-wise sum of two snapshots.
    pub fn merge(&self, other: &ClawbackStats) -> ClawbackStats {
        ClawbackStats {
            arrivals: self.arrivals + other.arrivals,
            accepted: self.accepted + other.accepted,
            clawed_back: self.clawed_back + other.clawed_back,
            over_limit: self.over_limit + other.over_limit,
            pool_full: self.pool_full + other.pool_full,
            empty_ticks: self.empty_ticks + other.empty_ticks,
            served: self.served + other.served,
        }
    }
}

/// The shared memory pool: "we have a total of four seconds of clawback
/// buffering shared between all active streams". Buffers are linked lists
/// precisely so they can share this pool dynamically.
#[derive(Debug, Clone)]
pub struct ClawbackPool {
    capacity: usize,
    used: Rc<Cell<usize>>,
}

impl ClawbackPool {
    /// A pool of `capacity` blocks (2000 blocks = 4 s by default).
    pub fn new(capacity: usize) -> Self {
        ClawbackPool {
            capacity,
            used: Rc::new(Cell::new(0)),
        }
    }

    /// The standard 4-second pool.
    pub fn standard() -> Self {
        ClawbackPool::new(2_000)
    }

    fn try_take(&self) -> bool {
        if self.used.get() < self.capacity {
            self.used.set(self.used.get() + 1);
            true
        } else {
            false
        }
    }

    fn give_back(&self) {
        debug_assert!(self.used.get() > 0, "pool release without take");
        self.used.set(self.used.get().saturating_sub(1));
    }

    /// Blocks currently held across all streams.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Total blocks in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A single-rate clawback buffer for one stream.
#[derive(Debug)]
pub struct Clawback<T> {
    queue: VecDeque<T>,
    config: ClawbackConfig,
    above_target_count: u64,
    stats: ClawbackStats,
    pool: Option<ClawbackPool>,
}

impl<T> Clawback<T> {
    /// Creates a buffer with its own unshared memory.
    pub fn new(config: ClawbackConfig) -> Self {
        Clawback {
            queue: VecDeque::new(),
            config,
            above_target_count: 0,
            stats: ClawbackStats::default(),
            pool: None,
        }
    }

    /// Creates a buffer drawing blocks from a shared pool.
    pub fn with_pool(config: ClawbackConfig, pool: ClawbackPool) -> Self {
        let mut b = Clawback::new(config);
        b.pool = Some(pool);
        b
    }

    /// Offers an arriving block.
    pub fn arrival(&mut self, item: T) -> Arrival {
        self.stats.arrivals += 1;
        // Hard cap first: "we throw away samples if the buffer is above its
        // limit when they arrive."
        if self.queue.len() >= self.config.per_stream_limit_blocks {
            self.stats.over_limit += 1;
            return Arrival::OverLimit;
        }
        // The clawback check: "every time a block is added, the clawback
        // mechanism checks the count of blocks in the buffer against a
        // lower target … If it is above this target level, a count is
        // incremented. When this count exceeds some value, the current
        // incoming block is dropped to reduce the delay."
        if self.queue.len() > self.config.lower_target_blocks {
            self.above_target_count += 1;
            if self.above_target_count >= self.config.count_threshold {
                self.above_target_count = 0;
                self.stats.clawed_back += 1;
                return Arrival::ClawedBack;
            }
        }
        if let Some(pool) = &self.pool {
            if !pool.try_take() {
                self.stats.pool_full += 1;
                return Arrival::PoolFull;
            }
        }
        self.queue.push_back(item);
        self.stats.accepted += 1;
        Arrival::Accepted
    }

    /// The mixer's 2 ms read: a block, or `None` when empty (the caller
    /// mixes silence for this stream and the buffer refills one deeper).
    pub fn tick(&mut self) -> Option<T> {
        match self.queue.pop_front() {
            Some(item) => {
                if let Some(pool) = &self.pool {
                    pool.give_back();
                }
                self.stats.served += 1;
                Some(item)
            }
            None => {
                self.stats.empty_ticks += 1;
                None
            }
        }
    }

    /// Blocks currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The jitter-correction delay this buffer currently adds, in ns.
    pub fn delay_nanos(&self) -> u64 {
        self.queue.len() as u64 * BLOCK_NANOS
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClawbackStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> ClawbackConfig {
        self.config
    }
}

impl<T> Drop for Clawback<T> {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            for _ in 0..self.queue.len() {
                pool.give_back();
            }
        }
    }
}

/// Configuration of the multi-rate clawback (§3.7.2's proposal).
#[derive(Debug, Clone, Copy)]
pub struct MultiRateConfig {
    /// The product level in block·seconds ("20 block seconds would be
    /// suitable for our environment").
    pub level_block_seconds: f64,
    /// Hard per-stream cap in blocks.
    pub per_stream_limit_blocks: usize,
}

impl Default for MultiRateConfig {
    fn default() -> Self {
        MultiRateConfig {
            level_block_seconds: 20.0,
            per_stream_limit_blocks: 512,
        }
    }
}

/// The multi-rate clawback buffer: "keeping a running minimum of the
/// buffer contents, and removing blocks at a frequency proportional to
/// that minimum … remove a block and reset the counts whenever the product
/// (minimum contents) × (blocks since last reset) exceeds some level."
///
/// The running minimum is sampled at mix reads (after each pop), which is
/// where the true standing excess shows; the measurement window resets on
/// every removal *and* on every underrun — a buffer that just ran dry
/// carries no excess delay, so measurement starts afresh.
#[derive(Debug)]
pub struct MultiRateClawback<T> {
    queue: VecDeque<T>,
    config: MultiRateConfig,
    /// Minimum post-pop contents this window; `usize::MAX` = no sample yet.
    running_min: usize,
    arrivals_since_reset: u64,
    stats: ClawbackStats,
}

impl<T> MultiRateClawback<T> {
    /// Creates a multi-rate buffer.
    pub fn new(config: MultiRateConfig) -> Self {
        MultiRateClawback {
            queue: VecDeque::new(),
            config,
            running_min: usize::MAX,
            arrivals_since_reset: 0,
            stats: ClawbackStats::default(),
        }
    }

    fn reset_window(&mut self) {
        self.arrivals_since_reset = 0;
        self.running_min = usize::MAX;
    }

    /// Offers an arriving block.
    pub fn arrival(&mut self, item: T) -> Arrival {
        self.stats.arrivals += 1;
        if self.queue.len() >= self.config.per_stream_limit_blocks {
            self.stats.over_limit += 1;
            return Arrival::OverLimit;
        }
        self.arrivals_since_reset += 1;
        let seconds = self.arrivals_since_reset as f64 * (BLOCK_NANOS as f64 / 1e9);
        if self.running_min != usize::MAX && self.running_min > 0 {
            let product = self.running_min as f64 * seconds;
            if product > self.config.level_block_seconds {
                // Remove a block and reset the counts.
                self.reset_window();
                self.stats.clawed_back += 1;
                return Arrival::ClawedBack;
            }
        }
        self.queue.push_back(item);
        self.stats.accepted += 1;
        Arrival::Accepted
    }

    /// The mixer's 2 ms read.
    pub fn tick(&mut self) -> Option<T> {
        match self.queue.pop_front() {
            Some(item) => {
                self.running_min = self.running_min.min(self.queue.len());
                self.stats.served += 1;
                Some(item)
            }
            None => {
                self.stats.empty_ticks += 1;
                self.reset_window();
                None
            }
        }
    }

    /// Blocks currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClawbackStats {
        self.stats
    }

    /// The current jitter-correction delay in nanoseconds.
    pub fn delay_nanos(&self) -> u64 {
        self.queue.len() as u64 * BLOCK_NANOS
    }
}

/// A bank of per-stream clawback buffers with the paper's automatic
/// lifecycle: "the time saved when a clawback buffer is found to be empty
/// is used to deactivate the stream, removing the clawback buffer
/// altogether. If a block arrives for a stream that does not have a
/// buffer, a new clawback buffer will be inserted, and mixing will
/// resume."
pub struct ClawbackBank<T> {
    streams: BTreeMap<StreamId, Clawback<T>>,
    config: ClawbackConfig,
    pool: ClawbackPool,
    deactivations: u64,
    activations: u64,
    retired: ClawbackStats,
}

impl<T> ClawbackBank<T> {
    /// Creates a bank sharing `pool` across all streams.
    pub fn new(config: ClawbackConfig, pool: ClawbackPool) -> Self {
        ClawbackBank {
            streams: BTreeMap::new(),
            config,
            pool,
            deactivations: 0,
            activations: 0,
            retired: ClawbackStats::default(),
        }
    }

    /// Routes an arriving block to its stream's buffer, creating one if
    /// the stream is new or was deactivated.
    pub fn arrival(&mut self, stream: StreamId, item: T) -> Arrival {
        let config = self.config;
        let pool = &self.pool;
        let activations = &mut self.activations;
        self.streams
            .entry(stream)
            .or_insert_with(|| {
                *activations += 1;
                Clawback::with_pool(config, pool.clone())
            })
            .arrival(item)
    }

    /// The mixer's 2 ms tick: pops one block per active stream. Streams
    /// whose buffer is empty are deactivated and removed.
    pub fn mix_tick(&mut self) -> Vec<(StreamId, T)> {
        let mut out = Vec::with_capacity(self.streams.len());
        let mut dead = Vec::new();
        for (&id, buf) in self.streams.iter_mut() {
            match buf.tick() {
                Some(item) => out.push((id, item)),
                None => dead.push(id),
            }
        }
        for id in dead {
            if let Some(buf) = self.streams.remove(&id) {
                self.retired = self.retired.merge(&buf.stats());
            }
            self.deactivations += 1;
        }
        out
    }

    /// Number of active (buffered) streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Current delay of one stream, if active.
    pub fn delay_nanos(&self, stream: StreamId) -> Option<u64> {
        self.streams.get(&stream).map(|b| b.delay_nanos())
    }

    /// Stats of one stream, if active.
    pub fn stats(&self, stream: StreamId) -> Option<ClawbackStats> {
        self.streams.get(&stream).map(|b| b.stats())
    }

    /// The shared pool.
    pub fn pool(&self) -> &ClawbackPool {
        &self.pool
    }

    /// How many times streams were deactivated on empty.
    pub fn deactivations(&self) -> u64 {
        self.deactivations
    }

    /// How many times buffers were (re)created on arrival.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Aggregate statistics over all streams, including retired buffers.
    pub fn total_stats(&self) -> ClawbackStats {
        self.streams
            .values()
            .fold(self.retired, |acc, b| acc.merge(&b.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClawbackConfig {
        ClawbackConfig::default()
    }

    #[test]
    fn fills_and_serves_fifo() {
        let mut b = Clawback::new(cfg());
        assert_eq!(b.arrival(1), Arrival::Accepted);
        assert_eq!(b.arrival(2), Arrival::Accepted);
        assert_eq!(b.tick(), Some(1));
        assert_eq!(b.tick(), Some(2));
        assert_eq!(b.tick(), None);
        assert_eq!(b.stats().empty_ticks, 1);
        assert_eq!(b.stats().served, 2);
    }

    #[test]
    fn empty_tick_counts_silence() {
        let mut b = Clawback::<u32>::new(cfg());
        assert!(b.tick().is_none());
        assert_eq!(b.stats().empty_ticks, 1);
    }

    #[test]
    fn clawback_rate_is_one_in_threshold() {
        // Keep the buffer permanently above target and count drops.
        let mut b = Clawback::new(ClawbackConfig {
            count_threshold: 100,
            ..cfg()
        });
        for _ in 0..5 {
            b.arrival(0u32);
        }
        let mut dropped = 0;
        for _ in 0..1_000 {
            // One in, one out: length stays above target (5 > 2).
            if b.arrival(0) == Arrival::ClawedBack {
                dropped += 1;
            } else {
                b.tick();
            }
        }
        assert_eq!(dropped, 10, "1000 above-target arrivals at 1/100");
    }

    #[test]
    fn default_rate_matches_paper() {
        let c = cfg();
        assert_eq!(c.count_threshold, 4096);
        assert!((c.clawback_rate() - 1.0 / 4096.0).abs() < 1e-12);
        // 4096 blocks x 2ms = 8.192s: "representing 8 seconds".
        assert!((c.count_threshold as f64 * 0.002 - 8.192).abs() < 1e-9);
    }

    #[test]
    fn no_clawback_at_or_below_target() {
        let mut b = Clawback::new(ClawbackConfig {
            count_threshold: 10,
            ..cfg()
        });
        // Steady state at exactly the target (2 blocks): never dropped.
        b.arrival(0u32);
        b.arrival(0);
        for _ in 0..1_000 {
            assert_eq!(b.arrival(0), Arrival::Accepted);
            b.tick();
        }
        assert_eq!(b.stats().clawed_back, 0);
    }

    #[test]
    fn hard_cap_drops_and_counts() {
        let mut b = Clawback::new(ClawbackConfig {
            per_stream_limit_blocks: 3,
            ..cfg()
        });
        for _ in 0..3 {
            assert_eq!(b.arrival(0u32), Arrival::Accepted);
        }
        assert_eq!(b.arrival(0), Arrival::OverLimit);
        assert_eq!(b.stats().over_limit, 1);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn pool_shared_between_buffers() {
        let pool = ClawbackPool::new(4);
        let mut a = Clawback::with_pool(cfg(), pool.clone());
        let mut b = Clawback::with_pool(cfg(), pool.clone());
        assert_eq!(a.arrival(0u32), Arrival::Accepted);
        assert_eq!(a.arrival(0), Arrival::Accepted);
        assert_eq!(b.arrival(0), Arrival::Accepted);
        assert_eq!(b.arrival(0), Arrival::Accepted);
        assert_eq!(pool.used(), 4);
        assert_eq!(b.arrival(0), Arrival::PoolFull);
        // Draining one frees pool space for the other.
        a.tick();
        assert_eq!(b.arrival(0), Arrival::Accepted);
    }

    #[test]
    fn dropping_buffer_returns_pool_blocks() {
        let pool = ClawbackPool::new(4);
        {
            let mut a = Clawback::with_pool(cfg(), pool.clone());
            a.arrival(0u32);
            a.arrival(0);
            assert_eq!(pool.used(), 2);
        }
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn drift_absorbed_when_slower_than_clawback_rate() {
        // Source 1 in 1000 faster than sink; clawback rate 1 in 100.
        // The buffer must not grow without bound.
        let mut b = Clawback::new(ClawbackConfig {
            count_threshold: 100,
            per_stream_limit_blocks: 1_000,
            ..cfg()
        });
        let mut max_len = 0;
        for i in 0u64..1_000_000 {
            b.arrival(0u32);
            if i % 1000 == 999 {
                b.arrival(0); // The drift surplus block.
            }
            b.tick();
            max_len = max_len.max(b.len());
        }
        assert!(max_len < 20, "buffer grew to {max_len}");
    }

    #[test]
    fn drift_overruns_buffer_when_faster_than_clawback_rate() {
        // Drift 1 in 50 against clawback rate 1 in 100: growth wins and
        // the hard cap engages — the condition the paper's rate argument
        // (drift < clawback rate) is about.
        let mut b = Clawback::new(ClawbackConfig {
            count_threshold: 100,
            per_stream_limit_blocks: 60,
            ..cfg()
        });
        for i in 0u64..100_000 {
            b.arrival(0u32);
            if i % 50 == 49 {
                b.arrival(0);
            }
            b.tick();
        }
        assert!(b.stats().over_limit > 0, "cap never engaged");
        // The queue sits at (or one below, right after a tick) the cap.
        assert!(b.len() >= 59, "len = {}", b.len());
    }

    #[test]
    fn multirate_removal_interval_tracks_min_contents() {
        // E6: at a steady 5-block (10ms) occupancy with level 20
        // block-seconds, removals come every ~2000 arrivals (4s); at 25
        // blocks (50ms), every ~400 arrivals (0.8s).
        for (occupancy, expected) in [(5usize, 2_000u64), (25, 400)] {
            let mut b = MultiRateClawback::new(MultiRateConfig::default());
            for _ in 0..occupancy {
                b.arrival(0u32);
            }
            // Warm up one removal cycle, then measure the second.
            let mut intervals = Vec::new();
            let mut since = 0u64;
            for _ in 0..10_000 {
                since += 1;
                if b.arrival(0) == Arrival::ClawedBack {
                    intervals.push(since);
                    since = 0;
                    // Top the buffer back up to the target occupancy.
                    while b.len() < occupancy {
                        b.arrival(0);
                    }
                } else {
                    b.tick();
                }
            }
            assert!(intervals.len() >= 2, "no removals at occupancy {occupancy}");
            let measured = intervals[1];
            let err = (measured as f64 - expected as f64).abs() / expected as f64;
            assert!(
                err < 0.05,
                "occupancy {occupancy}: interval {measured} vs {expected}"
            );
        }
    }

    #[test]
    fn multirate_idle_buffer_never_removes() {
        let mut b = MultiRateClawback::new(MultiRateConfig::default());
        // Running min 0 (buffer empties every tick): no clawback ever.
        for _ in 0..100_000 {
            assert_eq!(b.arrival(0u32), Arrival::Accepted);
            b.tick();
            b.tick(); // Force emptiness.
        }
        assert_eq!(b.stats().clawed_back, 0);
    }

    #[test]
    fn bank_creates_and_deactivates_streams() {
        let mut bank = ClawbackBank::new(cfg(), ClawbackPool::standard());
        let s1 = StreamId(1);
        let s2 = StreamId(2);
        bank.arrival(s1, 10u32);
        bank.arrival(s2, 20);
        bank.arrival(s2, 21);
        assert_eq!(bank.active_streams(), 2);
        let mixed = bank.mix_tick();
        assert_eq!(mixed, vec![(s1, 10), (s2, 20)]);
        // s1 is now empty: next tick deactivates it.
        let mixed = bank.mix_tick();
        assert_eq!(mixed, vec![(s2, 21)]);
        assert_eq!(bank.active_streams(), 1);
        assert_eq!(bank.deactivations(), 1);
        // An arrival re-creates the buffer: "mixing will resume".
        bank.arrival(s1, 11);
        assert_eq!(bank.active_streams(), 2);
        assert_eq!(bank.activations(), 3);
    }

    #[test]
    fn bank_reports_delay() {
        let mut bank = ClawbackBank::new(cfg(), ClawbackPool::standard());
        let s = StreamId(9);
        for _ in 0..5 {
            bank.arrival(s, 0u32);
        }
        assert_eq!(bank.delay_nanos(s), Some(10_000_000));
        assert_eq!(bank.delay_nanos(StreamId(99)), None);
    }
}
