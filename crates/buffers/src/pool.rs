//! The reference-counting segment buffer allocator (§3.4).
//!
//! "The buffer memory is shared by all the processes that may use it. The
//! allocator keeps a reference count of the number of processes using each
//! buffer", and must be told when a descriptor is duplicated (increment)
//! or finished with (decrement); "the common case of a process passing on
//! a descriptor to just one other process does not require a change in the
//! reference count."
//!
//! "If there are no buffers available, then the allocator will not listen
//! for any requests, and the requesting processes will be descheduled …
//! until the allocator is ready to receive again. The allocator reports
//! this (serious) fault."

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A buffer descriptor — the index that travels through the switch instead
/// of the data itself ("the input processes … transmit the buffer index
/// numbers through the rest of the system").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Descriptor(pub usize);

struct Slot<T> {
    value: Option<T>,
    refs: u32,
}

struct PoolInner<T> {
    slots: RefCell<Vec<Slot<T>>>,
    free: RefCell<Vec<usize>>,
    waiters: RefCell<Vec<Waker>>,
    exhausted_waits: Cell<u64>,
    allocations: Cell<u64>,
}

/// Drop-time audit record: the slots still holding a nonzero reference
/// count when the last [`Pool`] handle went away. A leak here means some
/// process duplicated a descriptor and never released it — the
/// reference-count discipline of §3.4 was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakReport {
    /// Total buffers in the audited pool.
    pub capacity: usize,
    /// Leaked slots: each descriptor and its outstanding reference count.
    pub leaked: Vec<(Descriptor, u32)>,
}

thread_local! {
    static LAST_LEAK: RefCell<Option<LeakReport>> = const { RefCell::new(None) };
}

/// Takes (and clears) the leak report from the most recently dropped
/// leaking pool on this thread, if any. This is the observable side of
/// the `Drop`-time audit; dropping a balanced pool leaves it `None`.
pub fn take_leak_report() -> Option<LeakReport> {
    LAST_LEAK.with(|l| l.borrow_mut().take())
}

impl<T> Drop for PoolInner<T> {
    /// Audits the pool on teardown: any slot with a live reference count
    /// is reported on stderr and recorded for [`take_leak_report`], and
    /// debug builds assert the free list and live slots balance.
    fn drop(&mut self) {
        let slots = self.slots.get_mut();
        let leaked: Vec<(Descriptor, u32)> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.refs > 0)
            .map(|(i, s)| (Descriptor(i), s.refs))
            .collect();
        let free = self.free.get_mut().len();
        debug_assert!(
            free + leaked.len() == slots.len(),
            "pool accounting out of balance: {free} free + {} live != {} slots",
            leaked.len(),
            slots.len()
        );
        if !leaked.is_empty() {
            eprintln!(
                "pandora-buffers: pool dropped with {} leaked descriptor(s) of {}:",
                leaked.len(),
                slots.len()
            );
            for (d, refs) in &leaked {
                eprintln!("  {d:?} with {refs} outstanding reference(s)");
            }
            LAST_LEAK.with(|l| {
                *l.borrow_mut() = Some(LeakReport {
                    capacity: slots.len(),
                    leaked,
                });
            });
        }
    }
}

/// A fixed-size pool of segment buffers with reference counting.
///
/// Cloning the pool handle shares the same buffers, mirroring the single
/// allocator process on the server transputer.
pub struct Pool<T> {
    inner: Rc<PoolInner<T>>,
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Pool<T> {
    /// Creates a pool of `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be non-zero");
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot {
                value: None,
                refs: 0,
            });
        }
        Pool {
            inner: Rc::new(PoolInner {
                slots: RefCell::new(slots),
                free: RefCell::new((0..capacity).rev().collect()),
                waiters: RefCell::new(Vec::new()),
                exhausted_waits: Cell::new(0),
                allocations: Cell::new(0),
            }),
        }
    }

    /// Tries to allocate a buffer holding `value` with reference count 1.
    ///
    /// Returns the value back if the pool is exhausted.
    pub fn try_alloc(&self, value: T) -> Result<Descriptor, T> {
        let idx = match self.inner.free.borrow_mut().pop() {
            Some(i) => i,
            None => return Err(value),
        };
        let mut slots = self.inner.slots.borrow_mut();
        slots[idx] = Slot {
            value: Some(value),
            refs: 1,
        };
        self.inner.allocations.set(self.inner.allocations.get() + 1);
        Ok(Descriptor(idx))
    }

    /// Allocates a buffer, waiting (descheduled) until one is free.
    ///
    /// Exhaustion waits are counted so the caller can raise the paper's
    /// "serious fault" report.
    pub fn alloc(&self, value: T) -> Alloc<'_, T> {
        Alloc {
            pool: self,
            value: Some(value),
            counted: false,
        }
    }

    /// Increments the reference count of `d` by `extra` — required when "a
    /// buffer descriptor has been sent to more than one other process".
    ///
    /// # Panics
    ///
    /// Panics if the descriptor is not allocated.
    pub fn add_refs(&self, d: Descriptor, extra: u32) {
        let mut slots = self.inner.slots.borrow_mut();
        let slot = &mut slots[d.0];
        assert!(
            slot.value.is_some() && slot.refs > 0,
            "add_refs on a free buffer {d:?}"
        );
        slot.refs += extra;
    }

    /// Decrements the reference count; frees the buffer at zero and wakes
    /// any waiting allocators. Returns the stored value if this was the
    /// final reference.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor is not allocated.
    pub fn release(&self, d: Descriptor) -> Option<T> {
        let mut slots = self.inner.slots.borrow_mut();
        let slot = &mut slots[d.0];
        assert!(
            slot.value.is_some() && slot.refs > 0,
            "release of a free buffer {d:?}"
        );
        slot.refs -= 1;
        if slot.refs == 0 {
            let value = slot.value.take();
            drop(slots);
            self.inner.free.borrow_mut().push(d.0);
            for w in self.inner.waiters.borrow_mut().drain(..) {
                w.wake();
            }
            value
        } else {
            None
        }
    }

    /// Reads the buffer behind `d`.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor is not allocated.
    pub fn with<R>(&self, d: Descriptor, f: impl FnOnce(&T) -> R) -> R {
        let slots = self.inner.slots.borrow();
        match slots[d.0].value.as_ref() {
            Some(value) => f(value),
            None => panic!("with() on a free buffer {d:?}"),
        }
    }

    /// Clones the buffer contents behind `d` (for copy-out device handlers).
    pub fn get_clone(&self, d: Descriptor) -> T
    where
        T: Clone,
    {
        self.with(d, |v| v.clone())
    }

    /// Current reference count of `d` (0 if free).
    pub fn refs(&self, d: Descriptor) -> u32 {
        self.inner.slots.borrow()[d.0].refs
    }

    /// Number of free buffers.
    pub fn free_count(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.inner.slots.borrow().len()
    }

    /// Times an allocation had to wait on an exhausted pool.
    pub fn exhausted_waits(&self) -> u64 {
        self.inner.exhausted_waits.get()
    }

    /// Total successful allocations.
    pub fn allocations(&self) -> u64 {
        self.inner.allocations.get()
    }
}

/// Future returned by [`Pool::alloc`].
pub struct Alloc<'a, T> {
    pool: &'a Pool<T>,
    value: Option<T>,
    counted: bool,
}

// `Alloc` holds no self-references — only a pool handle and an owned
// value — so it is freely movable and we can pin-project safely via
// `Pin::get_mut` instead of `unsafe { get_unchecked_mut() }`.
impl<T> Unpin for Alloc<'_, T> {}

impl<T> Future for Alloc<'_, T> {
    type Output = Descriptor;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Descriptor> {
        let this = self.get_mut();
        let Some(value) = this.value.take() else {
            panic!("Alloc polled after completion");
        };
        match this.pool.try_alloc(value) {
            Ok(d) => Poll::Ready(d),
            Err(value) => {
                this.value = Some(value);
                if !this.counted {
                    this.pool
                        .inner
                        .exhausted_waits
                        .set(this.pool.inner.exhausted_waits.get() + 1);
                    this.counted = true;
                }
                this.pool
                    .inner
                    .waiters
                    .borrow_mut()
                    .push(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{SimDuration, Simulation};
    use std::rc::Rc as StdRc;

    #[test]
    fn alloc_and_release_cycle() {
        let pool = Pool::new(2);
        let d = pool.try_alloc("hello").unwrap();
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.refs(d), 1);
        pool.with(d, |v| assert_eq!(*v, "hello"));
        assert_eq!(pool.release(d), Some("hello"));
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.refs(d), 0);
    }

    #[test]
    fn split_requires_add_refs() {
        // A descriptor fanned out to three destinations: +2 refs, three
        // releases, freed only after the last.
        let pool = Pool::new(1);
        let d = pool.try_alloc(42u32).unwrap();
        pool.add_refs(d, 2);
        assert_eq!(pool.release(d), None);
        assert_eq!(pool.release(d), None);
        assert_eq!(pool.free_count(), 0);
        assert_eq!(pool.release(d), Some(42));
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn exhaustion_returns_value() {
        let pool = Pool::new(1);
        let _d = pool.try_alloc(1u8).unwrap();
        assert_eq!(pool.try_alloc(2u8), Err(2u8));
    }

    #[test]
    fn async_alloc_waits_for_release() {
        let mut sim = Simulation::new();
        let pool = Pool::new(1);
        let d0 = pool.try_alloc(0u32).unwrap();
        let got = StdRc::new(Cell::new(false));
        {
            let pool = pool.clone();
            let got = got.clone();
            sim.spawn("waiter", async move {
                let d = pool.alloc(7).await;
                pool.with(d, |v| assert_eq!(*v, 7));
                got.set(true);
            });
        }
        {
            let pool = pool.clone();
            sim.spawn("releaser", async move {
                pandora_sim::delay(SimDuration::from_millis(3)).await;
                pool.release(d0);
            });
        }
        sim.run_until_idle();
        assert!(got.get());
        assert_eq!(pool.exhausted_waits(), 1);
    }

    #[test]
    fn waiters_fifo_progress() {
        let mut sim = Simulation::new();
        let pool = Pool::new(1);
        let d0 = pool.try_alloc(0u32).unwrap();
        let done = StdRc::new(Cell::new(0u32));
        for i in 0..3 {
            let pool = pool.clone();
            let done = done.clone();
            sim.spawn(&format!("w{i}"), async move {
                let d = pool.alloc(i).await;
                done.set(done.get() + 1);
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                pool.release(d);
            });
        }
        {
            let pool = pool.clone();
            sim.spawn("kick", async move {
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                pool.release(d0);
            });
        }
        sim.run_until_idle();
        assert_eq!(done.get(), 3);
    }

    #[test]
    #[should_panic(expected = "release of a free buffer")]
    fn double_release_panics() {
        let pool = Pool::new(1);
        let d = pool.try_alloc(1u8).unwrap();
        pool.release(d);
        pool.release(d);
    }

    #[test]
    #[should_panic(expected = "add_refs on a free buffer")]
    fn add_refs_on_free_panics() {
        let pool = Pool::new(1);
        let d = pool.try_alloc(1u8).unwrap();
        pool.release(d);
        pool.add_refs(d, 1);
    }

    #[test]
    fn get_clone_copies_out() {
        let pool = Pool::new(1);
        let d = pool.try_alloc(vec![1, 2, 3]).unwrap();
        assert_eq!(pool.get_clone(d), vec![1, 2, 3]);
        // Still allocated.
        assert_eq!(pool.refs(d), 1);
    }

    #[test]
    fn allocation_counter() {
        let pool = Pool::new(2);
        let a = pool.try_alloc(1).unwrap();
        let _b = pool.try_alloc(2).unwrap();
        pool.release(a);
        let _c = pool.try_alloc(3).unwrap();
        assert_eq!(pool.allocations(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Pool::<u8>::new(0);
    }

    #[test]
    fn leak_audit_identifies_leaked_slot() {
        let _ = take_leak_report(); // clear any report from another test
        let leaked_descriptor;
        {
            let pool = Pool::new(3);
            let a = pool.try_alloc("released").unwrap();
            let b = pool.try_alloc("leaked").unwrap();
            pool.add_refs(b, 1);
            pool.release(a);
            leaked_descriptor = b;
            // `b` never fully released: 2 refs outstanding at drop.
        }
        let report = take_leak_report().expect("leak audit must fire");
        assert_eq!(report.capacity, 3);
        assert_eq!(report.leaked, vec![(leaked_descriptor, 2)]);
    }

    #[test]
    fn balanced_drop_leaves_no_leak_report() {
        let _ = take_leak_report();
        {
            let pool = Pool::new(2);
            let a = pool.try_alloc(1u8).unwrap();
            let b = pool.try_alloc(2u8).unwrap();
            pool.release(a);
            pool.release(b);
        }
        assert!(take_leak_report().is_none());
    }

    #[test]
    fn exhaustion_wakes_waiters_in_fifo_order() {
        let mut sim = Simulation::new();
        let pool = Pool::new(1);
        let d0 = pool.try_alloc(99u32).unwrap();
        let order = StdRc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let pool = pool.clone();
            let order = order.clone();
            sim.spawn(&format!("w{i}"), async move {
                let d = pool.alloc(i).await;
                order.borrow_mut().push(i);
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                pool.release(d);
            });
        }
        {
            let pool = pool.clone();
            sim.spawn("kick", async move {
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                pool.release(d0);
            });
        }
        sim.run_until_idle();
        // Waiters acquire strictly in arrival order under the
        // deterministic scheduler.
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }
}
