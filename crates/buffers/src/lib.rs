//! # pandora-buffers — decoupling buffers, clawback buffers, allocator
//!
//! The buffering machinery at the heart of the paper (§3.4, §3.7):
//!
//! * [`spawn_decoupling`] / [`spawn_decoupling_ready`] — circular-buffer
//!   processes "inserted to allow some concurrency between processes or
//!   independent hardware units", with the figure 3.6 ready-channel
//!   protocol ([`ReadyGate`]) so upstream can drop instead of block
//!   (Principle 5), dynamic no-loss resizing, and status reports;
//! * [`Clawback`] / [`ClawbackBank`] — per-stream destination jitter
//!   buffers with silence insertion on underrun, a slow fixed clawback
//!   rate (2 ms per 8 s) that also covers 1e-5 clock drift, the 120 ms
//!   per-stream cap inside a shared 4 s [`ClawbackPool`], and automatic
//!   stream activation/deactivation;
//! * [`MultiRateClawback`] — the paper's proposed extension for
//!   high-jitter paths: removal frequency proportional to the running
//!   minimum contents (level in block·seconds, default 20);
//! * [`Pool`] — the reference-counting buffer allocator of §3.4, whose
//!   descriptors are what actually flow through the server switch;
//! * [`ByteSlab`] / [`SlabRef`] (re-exported from `pandora-slab`) — the
//!   byte-level half of the same allocator: refcounted slab regions that
//!   own payload bytes end to end, making the paper's two-copy invariant
//!   checkable via copy counters;
//! * [`Report`] — the report messages all of these emit.

mod clawback;
mod decoupling;
mod pool;
mod report;

pub use clawback::{
    Arrival, Clawback, ClawbackBank, ClawbackConfig, ClawbackPool, ClawbackStats,
    MultiRateClawback, MultiRateConfig,
};
pub use decoupling::{
    spawn_decoupling, spawn_decoupling_ready, BufferCommand, DecouplingHandle, ReadyGate,
};
pub use pool::{take_leak_report, Alloc, Descriptor, LeakReport, Pool};
pub use report::{Report, ReportClass};

pub use pandora_slab::{
    take_slab_leak_report, ByteSlab, SlabError, SlabLeakReport, SlabRef, SlabWriter,
};
