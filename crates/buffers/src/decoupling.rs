//! Decoupling buffers (§3.7.1).
//!
//! "Generic circular buffers, holding a FIFO queue of references to
//! pandora segments. In addition to an input and an output channel for
//! segment references, they also respond to commands and generate
//! reports." The buffer is built, as the paper describes of Pandora
//! processes generally, from two cooperating long-lived subprocesses: a
//! *reader* that owns the queue and alternates over command/feedback/input
//! channels, and a high-priority *writer* that pushes items downstream
//! ("we arrange that the output processes have priority").
//!
//! Two input disciplines are supported:
//!
//! * **blocking** (default): when full, the buffer simply does not listen
//!   on its input channel, so the upstream sender blocks — the transputer
//!   back-pressure that lets "data be thrown away closer to the source";
//! * **ready-channel** (figure 3.6): after accepting each item the buffer
//!   *immediately* replies TRUE (more space) or FALSE (now full, TRUE will
//!   follow when a slot frees), so the upstream process can choose to
//!   throw data away rather than block (Principle 5).

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use pandora_sim::{
    alt2, alt3, channel, unbounded, Either2, Either3, Priority, Receiver, Sender, Spawner,
};

use crate::report::{Report, ReportClass};

/// Commands understood by a decoupling buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferCommand {
    /// Resize the buffer; never loses queued data (§3.7.1: "it is also
    /// possible to specify a new buffer size dynamically, and the buffer
    /// will adjust to this size without any loss of data").
    SetCapacity(usize),
    /// Ask for a status report on the report channel, including "its
    /// present length …, size limit and pointer positions".
    Query,
}

/// Externally visible counters of a running decoupling buffer.
#[derive(Clone)]
pub struct DecouplingHandle {
    shared: Rc<DecShared>,
    cmd_tx: Sender<BufferCommand>,
}

struct DecShared {
    name: String,
    len: Cell<usize>,
    capacity: Cell<usize>,
    accepted: Cell<u64>,
    emitted: Cell<u64>,
    high_watermark: Cell<usize>,
}

impl DecouplingHandle {
    /// Current queue length.
    pub fn len(&self) -> usize {
        self.shared.len.get()
    }

    /// Returns `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current size limit.
    pub fn capacity(&self) -> usize {
        self.shared.capacity.get()
    }

    /// Total items accepted on the input (the "in" pointer position).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.get()
    }

    /// Total items delivered downstream (the "out" pointer position).
    pub fn emitted(&self) -> u64 {
        self.shared.emitted.get()
    }

    /// Largest queue length observed.
    pub fn high_watermark(&self) -> usize {
        self.shared.high_watermark.get()
    }

    /// Sends a command to the buffer process.
    pub async fn command(&self, cmd: BufferCommand) {
        let _ = self.cmd_tx.send(cmd).await;
    }

    /// The buffer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }
}

/// Spawns a *blocking* decoupling buffer between `input` and `output`.
///
/// Returns a handle for statistics and commands.
pub fn spawn_decoupling<T: 'static>(
    spawner: &Spawner,
    name: &str,
    capacity: usize,
    input: Receiver<T>,
    output: Sender<T>,
    reports: Sender<Report>,
) -> DecouplingHandle {
    spawn_inner(spawner, name, capacity, input, output, reports, None)
}

/// Spawns a *ready-channel* decoupling buffer (figure 3.6).
///
/// Returns the handle plus the ready channel the upstream process must
/// listen on — see [`ReadyGate`] for the upstream side of the protocol.
pub fn spawn_decoupling_ready<T: 'static>(
    spawner: &Spawner,
    name: &str,
    capacity: usize,
    input: Receiver<T>,
    output: Sender<T>,
    reports: Sender<Report>,
) -> (DecouplingHandle, Receiver<bool>) {
    let (ready_tx, ready_rx) = unbounded::<bool>();
    let handle = spawn_inner(
        spawner,
        name,
        capacity,
        input,
        output,
        reports,
        Some(ready_tx),
    );
    (handle, ready_rx)
}

fn spawn_inner<T: 'static>(
    spawner: &Spawner,
    name: &str,
    capacity: usize,
    input: Receiver<T>,
    output: Sender<T>,
    reports: Sender<Report>,
    ready: Option<Sender<bool>>,
) -> DecouplingHandle {
    assert!(capacity > 0, "decoupling buffer capacity must be non-zero");
    let shared = Rc::new(DecShared {
        name: name.to_string(),
        len: Cell::new(0),
        capacity: Cell::new(capacity),
        accepted: Cell::new(0),
        emitted: Cell::new(0),
        high_watermark: Cell::new(0),
    });
    let (cmd_tx, cmd_rx) = unbounded::<BufferCommand>();
    let handle = DecouplingHandle {
        shared: shared.clone(),
        cmd_tx,
    };

    // The writer: a high-priority subprocess that performs the possibly
    // blocking downstream send, reporting back when it is free again.
    let (conduit_tx, conduit_rx) = channel::<T>();
    let (feedback_tx, feedback_rx) = channel::<()>();
    let writer_name = format!("dec:{name}:writer");
    // The conduit/feedback pair strictly alternates: the reader sends on
    // conduit only while the writer is idle (writer_busy false) and
    // receives feedback only while it is busy, so the rendezvous loop can
    // never have both parties blocked sending at once.
    // check:allow(channel-cycle): strict alternation, argued above.
    spawner.spawn_prio(&writer_name, Priority::High, async move {
        while let Ok(item) = conduit_rx.recv().await {
            if output.send(item).await.is_err() {
                return;
            }
            if feedback_tx.send(()).await.is_err() {
                return;
            }
        }
    });

    // The reader: owns the queue; PRI ALT with commands first (Principle 4).
    let reader_name = format!("dec:{name}:reader");
    spawner.spawn(&reader_name, async move {
        let mut queue: VecDeque<T> = VecDeque::new();
        let mut writer_busy = false;
        let mut owes_true = false;
        loop {
            // Dispatch to the writer whenever it is idle and data waits.
            if !writer_busy {
                if let Some(item) = queue.pop_front() {
                    shared.len.set(queue.len());
                    shared.emitted.set(shared.emitted.get() + 1);
                    if conduit_tx.send(item).await.is_err() {
                        return;
                    }
                    writer_busy = true;
                    if owes_true && queue.len() < shared.capacity.get() {
                        if let Some(r) = &ready {
                            let _ = r.try_send(true);
                        }
                        owes_true = false;
                    }
                }
            }
            let full = queue.len() >= shared.capacity.get();
            // In blocking mode a full buffer "will not be listening on its
            // input channel". In ready mode we always listen: the upstream
            // is contractually silent after a FALSE reply.
            let listen_input = ready.is_some() || !full;
            if listen_input {
                match alt3(&cmd_rx, &feedback_rx, &input).await {
                    Some(Ok(Either3::A(cmd))) => {
                        handle_command(
                            cmd,
                            &mut queue,
                            &shared,
                            &reports,
                            ready.as_ref(),
                            &mut owes_true,
                        )
                        .await
                    }
                    Some(Ok(Either3::B(()))) => writer_busy = false,
                    Some(Ok(Either3::C(item))) => {
                        accept(item, &mut queue, &shared, ready.as_ref(), &mut owes_true);
                    }
                    _ => return,
                }
            } else {
                match alt2(&cmd_rx, &feedback_rx).await {
                    Some(Ok(Either2::A(cmd))) => {
                        handle_command(
                            cmd,
                            &mut queue,
                            &shared,
                            &reports,
                            ready.as_ref(),
                            &mut owes_true,
                        )
                        .await
                    }
                    Some(Ok(Either2::B(()))) => writer_busy = false,
                    _ => return,
                }
            }
        }
    });
    handle
}

fn accept<T>(
    item: T,
    queue: &mut VecDeque<T>,
    shared: &DecShared,
    ready: Option<&Sender<bool>>,
    owes_true: &mut bool,
) {
    queue.push_back(item);
    shared.len.set(queue.len());
    shared.accepted.set(shared.accepted.get() + 1);
    if queue.len() > shared.high_watermark.get() {
        shared.high_watermark.set(queue.len());
    }
    if let Some(r) = ready {
        // "It is important that the ready channel always sends a reply
        // immediately."
        let has_space = queue.len() < shared.capacity.get();
        let _ = r.try_send(has_space);
        if !has_space {
            *owes_true = true;
        }
    }
}

async fn handle_command<T>(
    cmd: BufferCommand,
    queue: &mut VecDeque<T>,
    shared: &DecShared,
    reports: &Sender<Report>,
    ready: Option<&Sender<bool>>,
    owes_true: &mut bool,
) {
    match cmd {
        BufferCommand::SetCapacity(n) => {
            let n = n.max(1);
            shared.capacity.set(n);
            // Growth may satisfy an owed TRUE immediately.
            if *owes_true && queue.len() < n {
                if let Some(r) = ready {
                    let _ = r.try_send(true);
                }
                *owes_true = false;
            }
        }
        BufferCommand::Query => {
            let msg = format!(
                "len={} capacity={} in={} out={} hwm={}",
                queue.len(),
                shared.capacity.get(),
                shared.accepted.get(),
                shared.emitted.get(),
                shared.high_watermark.get()
            );
            let _ = reports
                .send(Report::new(
                    pandora_sim::now(),
                    &shared.name,
                    ReportClass::Info,
                    msg,
                ))
                .await;
        }
    }
}

/// The upstream half of the ready-channel protocol (figure 3.6).
///
/// "After a FALSE reply, the input process will not send any more data on
/// its output to the decoupling buffer, but will listen on the ready
/// channel … When it subsequently receives a TRUE reply … it sets a flag
/// indicating that the corresponding output can be sent data again."
pub struct ReadyGate<T> {
    data_tx: Sender<T>,
    /// `None` for a gate onto a *blocking* buffer: offers simply send (and
    /// stall on a full buffer) — the Principle-5 conformance ablation.
    ready_rx: Option<Receiver<bool>>,
    permitted: bool,
    dropped: u64,
    sent: u64,
}

impl<T> ReadyGate<T> {
    /// Wraps the data sender and ready receiver for a ready-mode buffer.
    pub fn new(data_tx: Sender<T>, ready_rx: Receiver<bool>) -> Self {
        ReadyGate {
            data_tx,
            ready_rx: Some(ready_rx),
            permitted: true,
            dropped: 0,
            sent: 0,
        }
    }

    /// Wraps the data sender of a *blocking* buffer (no ready channel):
    /// every offer sends, blocking while the buffer is full, so a slow
    /// consumer stalls the offering process — exactly what Principle 5
    /// exists to prevent. Used by the conformance suite's ablations.
    pub fn blocking(data_tx: Sender<T>) -> Self {
        ReadyGate {
            data_tx,
            ready_rx: None,
            permitted: true,
            dropped: 0,
            sent: 0,
        }
    }

    /// Offers an item: sends it if the buffer is known to have space,
    /// otherwise drops it immediately (never blocks on a full buffer).
    /// Gates made with [`ReadyGate::blocking`] always send, blocking on a
    /// full buffer instead of dropping.
    ///
    /// Returns `true` if the item was sent.
    pub async fn offer(&mut self, item: T) -> bool {
        let Some(ready_rx) = &self.ready_rx else {
            if self.data_tx.send(item).await.is_err() {
                self.dropped += 1;
                return false;
            }
            self.sent += 1;
            return true;
        };
        if !self.permitted {
            // Poll the ready channel without blocking.
            while let Some(r) = ready_rx.try_recv() {
                self.permitted = r;
            }
            if !self.permitted {
                self.dropped += 1;
                return false;
            }
        }
        if self.data_tx.send(item).await.is_err() {
            self.dropped += 1;
            return false;
        }
        self.sent += 1;
        // The immediate reply mandated by the protocol.
        match ready_rx.recv().await {
            Ok(r) => self.permitted = r,
            Err(_) => self.permitted = false,
        }
        true
    }

    /// Items dropped because the buffer had no space.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Items successfully handed to the buffer.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{SimDuration, SimTime, Simulation};
    use std::cell::RefCell;

    fn harness() -> (
        Simulation,
        Sender<u32>,
        Receiver<u32>,
        Receiver<Report>,
        DecouplingHandle,
    ) {
        let sim = Simulation::new();
        let (in_tx, in_rx) = channel::<u32>();
        let (out_tx, out_rx) = channel::<u32>();
        let (rep_tx, rep_rx) = unbounded::<Report>();
        let handle = spawn_decoupling(&sim.spawner(), "test", 4, in_rx, out_tx, rep_tx);
        (sim, in_tx, out_rx, rep_rx, handle)
    }

    #[test]
    fn passes_items_in_order() {
        let (mut sim, in_tx, out_rx, _rep, handle) = harness();
        sim.spawn("producer", async move {
            for i in 0..10 {
                in_tx.send(i).await.unwrap();
            }
        });
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn("consumer", async move {
            for _ in 0..10 {
                let item = out_rx.recv().await.unwrap();
                g.borrow_mut().push(item);
            }
        });
        sim.run_until_idle();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<_>>());
        assert_eq!(handle.accepted(), 10);
        assert_eq!(handle.emitted(), 10);
        assert_eq!(handle.len(), 0);
    }

    #[test]
    fn decouples_bursty_producer_from_steady_consumer() {
        let (mut sim, in_tx, out_rx, _rep, handle) = harness();
        let producer_done = Rc::new(Cell::new(SimTime::ZERO));
        let pd = producer_done.clone();
        sim.spawn("producer", async move {
            for i in 0..4 {
                in_tx.send(i).await.unwrap();
            }
            pd.set(pandora_sim::now());
        });
        sim.spawn("consumer", async move {
            loop {
                pandora_sim::delay(SimDuration::from_millis(2)).await;
                if out_rx.recv().await.is_err() {
                    return;
                }
            }
        });
        sim.run_until_idle();
        // The burst fits in the buffer: producer finished immediately even
        // though the consumer takes 2ms per item.
        assert_eq!(producer_done.get(), SimTime::ZERO);
        assert!(handle.high_watermark() >= 3);
    }

    #[test]
    fn blocking_mode_applies_backpressure_when_full() {
        let (mut sim, in_tx, _out_rx, _rep, _handle) = harness();
        // No consumer at all: writer takes 1, buffer holds 4, so sends
        // 0..=4 complete and the 6th blocks forever.
        let progress = Rc::new(Cell::new(0u32));
        let p = progress.clone();
        sim.spawn("producer", async move {
            for i in 0..10 {
                in_tx.send(i).await.unwrap();
                p.set(i + 1);
            }
        });
        sim.run_until_idle();
        assert_eq!(progress.get(), 5, "4 buffered + 1 in writer");
    }

    #[test]
    fn query_reports_length_and_pointers() {
        let (mut sim, in_tx, out_rx, rep_rx, handle) = harness();
        sim.spawn("producer", async move {
            for i in 0..3 {
                in_tx.send(i).await.unwrap();
            }
            handle.command(BufferCommand::Query).await;
        });
        sim.run_until_idle();
        let report = rep_rx.try_recv().expect("a query report");
        assert!(report.message.contains("in=3"), "{}", report.message);
        assert!(report.message.contains("capacity=4"));
        drop(out_rx);
    }

    #[test]
    fn resize_without_loss() {
        let (mut sim, in_tx, out_rx, _rep, handle) = harness();
        let h = handle.clone();
        sim.spawn("producer", async move {
            for i in 0..5 {
                in_tx.send(i).await.unwrap();
            }
            // Shrink below current occupancy: nothing may be lost.
            h.command(BufferCommand::SetCapacity(1)).await;
            for i in 5..8 {
                in_tx.send(i).await.unwrap();
            }
        });
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn("consumer", async move {
            loop {
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                match out_rx.recv().await {
                    Ok(v) => g.borrow_mut().push(v),
                    Err(_) => return,
                }
            }
        });
        sim.run_until_idle();
        assert_eq!(*got.borrow(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn grow_capacity_accepts_more() {
        let (mut sim, in_tx, _out_rx, _rep, handle) = harness();
        let progress = Rc::new(Cell::new(0u32));
        let p = progress.clone();
        let h = handle.clone();
        sim.spawn("grower", async move {
            pandora_sim::delay(SimDuration::from_millis(5)).await;
            h.command(BufferCommand::SetCapacity(16)).await;
        });
        sim.spawn("producer", async move {
            for i in 0..12 {
                in_tx.send(i).await.unwrap();
                p.set(i + 1);
            }
        });
        sim.run_until_idle();
        assert_eq!(progress.get(), 12);
    }

    #[test]
    fn ready_mode_upstream_never_blocks() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<u32>();
        let (out_tx, _out_rx_kept) = channel::<u32>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let (handle, ready_rx) =
            spawn_decoupling_ready(&sim.spawner(), "rdy", 3, in_rx, out_tx, rep_tx);
        let gate_stats = Rc::new(RefCell::new((0u64, 0u64)));
        let gs = gate_stats.clone();
        sim.spawn("producer", async move {
            let mut gate = ReadyGate::new(in_tx, ready_rx);
            // 100 offers with no consumer: all but the first few drop, and
            // the producer finishes at t=0 without blocking.
            for i in 0..100 {
                gate.offer(i).await;
            }
            *gs.borrow_mut() = (gate.sent(), gate.dropped());
            assert_eq!(pandora_sim::now(), SimTime::ZERO);
        });
        sim.run_until_idle();
        let (sent, dropped) = *gate_stats.borrow();
        assert_eq!(sent + dropped, 100);
        // Capacity 3 plus one in the writer.
        assert_eq!(sent, 4, "sent {sent}");
        assert_eq!(handle.accepted(), 4);
    }

    #[test]
    fn ready_mode_resumes_after_space_frees() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<u32>();
        let (out_tx, out_rx) = channel::<u32>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let (_handle, ready_rx) =
            spawn_decoupling_ready(&sim.spawner(), "rdy", 2, in_rx, out_tx, rep_tx);
        let counts = Rc::new(RefCell::new((0u64, 0u64)));
        let c = counts.clone();
        sim.spawn("producer", async move {
            let mut gate = ReadyGate::new(in_tx, ready_rx);
            // Offer an item every 1ms for 100ms.
            for i in 0..100 {
                gate.offer(i).await;
                pandora_sim::delay(SimDuration::from_millis(1)).await;
            }
            *c.borrow_mut() = (gate.sent(), gate.dropped());
        });
        sim.spawn("consumer", async move {
            // Consume every 4ms: the buffer oscillates full/with-space.
            loop {
                pandora_sim::delay(SimDuration::from_millis(4)).await;
                if out_rx.recv().await.is_err() {
                    return;
                }
            }
        });
        sim.run_until_idle();
        let (sent, dropped) = *counts.borrow();
        assert_eq!(sent + dropped, 100);
        // Roughly one in four offers is carried (consumer rate), rest drop;
        // crucially, traffic keeps flowing after the first FALSE.
        assert!(sent >= 20, "sent {sent}");
        assert!(dropped >= 60, "dropped {dropped}");
    }

    #[test]
    fn blocking_gate_stalls_instead_of_dropping() {
        // The Principle-5 ablation: a gate onto a blocking buffer with no
        // consumer wedges the offering process once the buffer fills.
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<u32>();
        let (out_tx, _out_rx_kept) = channel::<u32>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let _handle = spawn_decoupling(&sim.spawner(), "blk", 3, in_rx, out_tx, rep_tx);
        let progress = Rc::new(Cell::new(0u32));
        let p = progress.clone();
        sim.spawn("producer", async move {
            let mut gate = ReadyGate::blocking(in_tx);
            for i in 0..100 {
                gate.offer(i).await;
                p.set(i + 1);
            }
        });
        sim.run_until_idle();
        // 3 buffered + 1 in the writer: the 5th offer blocks forever.
        assert_eq!(progress.get(), 4);
        assert!(sim.deadlock_report().is_some());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let sim = Simulation::new();
        let (_in_tx, in_rx) = channel::<u32>();
        let (out_tx, _out_rx) = channel::<u32>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let _ = spawn_decoupling(&sim.spawner(), "bad", 0, in_rx, out_tx, rep_tx);
    }
}
