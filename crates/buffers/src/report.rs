//! Reports — the observability channel of every Pandora process.
//!
//! "Reports are collected from all main processes, and multiplexed
//! together. They are usually in the form of text messages generated when
//! Pandora is overloaded, when some error has been detected, when a
//! command has requested some information, or on occasion just to say that
//! everything is all right" (§1.1). §3.8 adds rate limiting: "a minimum
//! period between reports for any particular sort of error".

use pandora_sim::SimTime;

/// Severity/kind of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportClass {
    /// Routine information (e.g. a reply to a query command).
    Info,
    /// Degradation under overload (drops, full buffers).
    Overload,
    /// Detected error (corruption, sequence gaps).
    Error,
    /// Serious fault (allocator exhaustion, clawback limit hit).
    Fault,
}

impl std::fmt::Display for ReportClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReportClass::Info => "info",
            ReportClass::Overload => "overload",
            ReportClass::Error => "error",
            ReportClass::Fault => "fault",
        };
        f.write_str(s)
    }
}

/// A report message from a Pandora process.
#[derive(Debug, Clone)]
pub struct Report {
    /// Virtual time the report was generated.
    pub time: SimTime,
    /// Name of the originating process.
    pub source: String,
    /// Report class.
    pub class: ReportClass,
    /// Human-readable message, as on the paper's host log.
    pub message: String,
}

impl Report {
    /// Creates a report stamped `time`.
    pub fn new(
        time: SimTime,
        source: &str,
        class: ReportClass,
        message: impl Into<String>,
    ) -> Self {
        Report {
            time,
            source: source.to_string(),
            class,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.time, self.source, self.class, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_fields() {
        let r = Report::new(
            SimTime::from_millis(5),
            "switch",
            ReportClass::Overload,
            "dropped 3",
        );
        let s = r.to_string();
        assert!(s.contains("switch"));
        assert!(s.contains("overload"));
        assert!(s.contains("dropped 3"));
    }

    #[test]
    fn class_names() {
        assert_eq!(ReportClass::Info.to_string(), "info");
        assert_eq!(ReportClass::Fault.to_string(), "fault");
    }
}
