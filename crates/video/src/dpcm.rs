//! Per-line DPCM compression with sub-sampling (§3.6).
//!
//! "Each line of video data has a one byte compression header added, which
//! is used by the compression hardware to determine what sub-sampling and
//! DPCM coding should be applied." This module is the software stand-in
//! for that silicon: previous-pixel prediction, 4-bit non-uniform
//! quantisation of the error (two samples per byte, ≈2:1 ratio), with an
//! optional 2:1 horizontal sub-sampling mode. "Compression schemes and
//! parameters can be changed from one segment to the next."

/// Per-line compression mode, carried in the 1-byte line header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineMode {
    /// Uncompressed pixels.
    Raw,
    /// DPCM at full horizontal resolution.
    Dpcm,
    /// 2:1 horizontal sub-sampling, then DPCM.
    DpcmSub2,
}

impl LineMode {
    /// Header byte value.
    pub fn header(self) -> u8 {
        match self {
            LineMode::Raw => 0x00,
            LineMode::Dpcm => 0x01,
            LineMode::DpcmSub2 => 0x02,
        }
    }

    /// Parses a header byte.
    pub fn from_header(b: u8) -> Option<LineMode> {
        match b {
            0x00 => Some(LineMode::Raw),
            0x01 => Some(LineMode::Dpcm),
            0x02 => Some(LineMode::DpcmSub2),
            _ => None,
        }
    }
}

/// The 16-level non-uniform DPCM quantiser step table.
///
/// Small steps finely quantised, large steps coarsely — the usual DPCM
/// companding shape.
const STEPS: [i16; 8] = [0, 2, 5, 9, 16, 28, 48, 80];

// The reference quantiser: linear scan of the step table. Kept as the
// oracle the flat LUT below is pinned against, and const so the LUT can
// be built at compile time.
const fn quantise_reference(err: i32) -> u8 {
    let mag = err.unsigned_abs() as i16;
    let mut idx = 0u8;
    let mut i = 0;
    while i < STEPS.len() {
        if mag >= STEPS[i] {
            idx = i as u8;
        }
        i += 1;
    }
    if err < 0 {
        idx | 0x08
    } else {
        idx
    }
}

const fn dequantise_reference(code: u8) -> i32 {
    let mag = STEPS[(code & 0x07) as usize] as i32;
    if code & 0x08 != 0 {
        -mag
    } else {
        mag
    }
}

// Prediction errors are bounded: predictor and pixel both live in
// 0..=255, so err is in -255..=255 and the whole quantiser flattens to
// one 511-entry compile-time LUT indexed by err + 255.
const QLUT: [u8; 511] = {
    let mut t = [0u8; 511];
    let mut i = 0;
    while i < 511 {
        t[i] = quantise_reference(i as i32 - 255);
        i += 1;
    }
    t
};

// All 16 signed step values, so dequantisation is one indexed load.
const DEQ: [i32; 16] = {
    let mut t = [0i32; 16];
    let mut c = 0;
    while c < 16 {
        t[c] = dequantise_reference(c as u8);
        c += 1;
    }
    t
};

fn quantise(err: i32) -> u8 {
    QLUT[(err + 255) as usize]
}

fn dequantise(code: u8) -> i32 {
    DEQ[(code & 0x0F) as usize]
}

/// Compresses one line: returns the 1-byte header followed by the payload.
pub fn compress_line(pixels: &[u8], mode: LineMode) -> Vec<u8> {
    let mut out = vec![mode.header()];
    match mode {
        LineMode::Raw => out.extend_from_slice(pixels),
        LineMode::Dpcm => out.extend_from_slice(&dpcm_encode(pixels)),
        LineMode::DpcmSub2 => {
            let mut sub = Vec::with_capacity(pixels.len().div_ceil(2));
            subsample2_into(pixels, &mut sub);
            out.extend_from_slice(&dpcm_encode(&sub));
        }
    }
    out
}

/// Decompresses one line to `width` pixels.
///
/// Returns `None` on an unknown header or truncated payload.
pub fn decompress_line(data: &[u8], width: usize) -> Option<Vec<u8>> {
    let (&header, payload) = data.split_first()?;
    let mode = LineMode::from_header(header)?;
    match mode {
        LineMode::Raw => {
            if payload.len() < width {
                return None;
            }
            Some(payload[..width].to_vec())
        }
        LineMode::Dpcm => {
            let px = dpcm_decode(payload, width)?;
            Some(px)
        }
        LineMode::DpcmSub2 => {
            let half = width.div_ceil(2);
            let sub = dpcm_decode(payload, half)?;
            // Horizontal interpolation back to full width.
            let mut out = Vec::with_capacity(width);
            for i in 0..width {
                if i % 2 == 0 {
                    out.push(sub[i / 2]);
                } else {
                    let a = sub[i / 2] as u16;
                    let b = *sub.get(i / 2 + 1).unwrap_or(&sub[i / 2]) as u16;
                    out.push(((a + b) / 2) as u8);
                }
            }
            Some(out)
        }
    }
}

fn dpcm_encode(pixels: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pixels.len().div_ceil(2));
    dpcm_encode_into(pixels, &mut out);
    out
}

// The chunked encode pass: two pixels per iteration, each pair packed
// and pushed straight into `out` with no intermediate code buffer. The
// predictor follows the *decoder's* reconstruction so errors do not
// accumulate.
fn dpcm_encode_into(pixels: &[u8], out: &mut Vec<u8>) {
    out.reserve(pixels.len().div_ceil(2));
    let mut pred = 128i32;
    let mut pairs = pixels.chunks_exact(2);
    for pair in pairs.by_ref() {
        let hi = quantise(pair[0] as i32 - pred);
        pred = (pred + dequantise(hi)).clamp(0, 255);
        let lo = quantise(pair[1] as i32 - pred);
        pred = (pred + dequantise(lo)).clamp(0, 255);
        out.push((hi << 4) | lo);
    }
    if let [p] = pairs.remainder() {
        out.push(quantise(*p as i32 - pred) << 4);
    }
}

fn dpcm_decode(data: &[u8], width: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(width);
    dpcm_decode_into(data, width, &mut out)?;
    Some(out)
}

// The chunked decode pass: one payload byte per iteration (two pixels),
// appending reconstructions straight onto `out`.
fn dpcm_decode_into(data: &[u8], width: usize, out: &mut Vec<u8>) -> Option<()> {
    if data.len() < width.div_ceil(2) {
        return None;
    }
    out.reserve(width);
    let mut pred = 128i32;
    for &byte in &data[..width / 2] {
        pred = (pred + dequantise(byte >> 4)).clamp(0, 255);
        out.push(pred as u8);
        pred = (pred + dequantise(byte & 0x0F)).clamp(0, 255);
        out.push(pred as u8);
    }
    if width % 2 == 1 {
        pred = (pred + dequantise(data[width / 2] >> 4)).clamp(0, 255);
        out.push(pred as u8);
    }
    Some(())
}

// 2:1 horizontal sub-sampling (pair averaging, odd tail kept) into a
// reusable scratch buffer.
fn subsample2_into(pixels: &[u8], out: &mut Vec<u8>) {
    out.reserve(pixels.len().div_ceil(2));
    let mut pairs = pixels.chunks_exact(2);
    for c in pairs.by_ref() {
        out.push(((c[0] as u16 + c[1] as u16) / 2) as u8);
    }
    if let [p] = pairs.remainder() {
        out.push(*p);
    }
}

/// Compresses a whole slice (`pixels.len() / width` lines of `width`
/// pixels) in one row-chunked pass: one output buffer sized up front,
/// the sub-sampling scratch reused across rows, and the predict/encode
/// loop running back to back over the rows instead of through one
/// `compress_line` call (and its fresh allocations) per line. The output
/// is byte-identical to concatenating [`compress_line`] over the rows.
///
/// # Panics
///
/// Panics if `width` is zero or does not divide `pixels.len()`.
pub fn compress_slice(pixels: &[u8], width: usize, mode: LineMode) -> Vec<u8> {
    assert!(
        width > 0 && pixels.len().is_multiple_of(width),
        "slice is not whole lines"
    );
    let lines = pixels.len() / width;
    let mut out = Vec::with_capacity(lines * compressed_line_bytes(width, mode));
    let mut sub = Vec::with_capacity(width.div_ceil(2));
    for row in pixels.chunks_exact(width) {
        out.push(mode.header());
        match mode {
            LineMode::Raw => out.extend_from_slice(row),
            LineMode::Dpcm => dpcm_encode_into(row, &mut out),
            LineMode::DpcmSub2 => {
                sub.clear();
                subsample2_into(row, &mut sub);
                dpcm_encode_into(&sub, &mut out);
            }
        }
    }
    out
}

/// Decompresses `lines` consecutive line records into one `lines × width`
/// pixel buffer, the row-chunked counterpart of calling
/// [`decompress_line`] per record. Per-line modes may vary (each record
/// carries its own header). Returns `None` on an unknown header or a
/// truncated record, like the per-line decoder.
pub fn decompress_slice(data: &[u8], width: usize, lines: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(lines * width);
    let mut sub = Vec::with_capacity(width.div_ceil(2));
    let mut off = 0;
    for _ in 0..lines {
        let mode = LineMode::from_header(*data.get(off)?)?;
        let record = compressed_line_bytes(width, mode);
        let payload = data.get(off + 1..off + record)?;
        match mode {
            LineMode::Raw => out.extend_from_slice(payload),
            LineMode::Dpcm => dpcm_decode_into(payload, width, &mut out)?,
            LineMode::DpcmSub2 => {
                let half = width.div_ceil(2);
                sub.clear();
                dpcm_decode_into(payload, half, &mut sub)?;
                // Horizontal interpolation back to full width.
                for i in 0..width {
                    if i % 2 == 0 {
                        out.push(sub[i / 2]);
                    } else {
                        let a = sub[i / 2] as u16;
                        let b = *sub.get(i / 2 + 1).unwrap_or(&sub[i / 2]) as u16;
                        out.push(((a + b) / 2) as u8);
                    }
                }
            }
        }
        off += record;
    }
    Some(out)
}

/// Compressed size of a line of `width` pixels under `mode`, header
/// included.
pub fn compressed_line_bytes(width: usize, mode: LineMode) -> usize {
    1 + match mode {
        LineMode::Raw => width,
        LineMode::Dpcm => width.div_ceil(2),
        LineMode::DpcmSub2 => width.div_ceil(2).div_ceil(2),
    }
}

/// Mean absolute per-pixel error between two equal-length lines.
pub fn line_error(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "line length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
        .sum();
    sum as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: usize) -> Vec<u8> {
        (0..width).map(|i| (i * 255 / width.max(1)) as u8).collect()
    }

    fn texture(width: usize) -> Vec<u8> {
        (0..width)
            .map(|i| (128.0 + 60.0 * ((i as f64) * 0.7).sin()) as u8)
            .collect()
    }

    #[test]
    fn raw_round_trips_exactly() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Raw);
        assert_eq!(decompress_line(&c, 64).unwrap(), px);
    }

    #[test]
    fn dpcm_halves_the_size() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Dpcm);
        assert_eq!(c.len(), 1 + 32);
        assert_eq!(c.len(), compressed_line_bytes(64, LineMode::Dpcm));
    }

    #[test]
    fn dpcm_error_is_small_on_smooth_content() {
        let px = gradient(128);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 128).unwrap();
        assert!(line_error(&px, &d) < 4.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn dpcm_tracks_texture() {
        let px = texture(128);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 128).unwrap();
        assert!(line_error(&px, &d) < 10.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn sub2_quarter_size() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::DpcmSub2);
        assert_eq!(c.len(), 1 + 16);
        let d = decompress_line(&c, 64).unwrap();
        assert_eq!(d.len(), 64);
        // Sub-sampling loses detail but stays in the ballpark.
        assert!(line_error(&px, &d) < 25.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn odd_width_handled() {
        let px = texture(63);
        for mode in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
            let c = compress_line(&px, mode);
            let d = decompress_line(&c, 63).unwrap();
            assert_eq!(d.len(), 63, "mode {mode:?}");
        }
    }

    #[test]
    fn unknown_header_rejected() {
        assert_eq!(decompress_line(&[0x7F, 1, 2, 3], 3), None);
    }

    #[test]
    fn truncated_payload_rejected() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Dpcm);
        assert_eq!(decompress_line(&c[..10], 64), None);
    }

    #[test]
    fn mode_headers_round_trip() {
        for m in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
            assert_eq!(LineMode::from_header(m.header()), Some(m));
        }
        assert_eq!(LineMode::from_header(0x55), None);
    }

    #[test]
    fn quantise_lut_matches_reference_exhaustively() {
        for err in -255i32..=255 {
            assert_eq!(quantise(err), quantise_reference(err), "err={err}");
        }
        for code in 0u8..16 {
            assert_eq!(dequantise(code), dequantise_reference(code));
        }
    }

    #[test]
    fn compress_slice_matches_per_line_concat() {
        for (width, lines) in [(64usize, 8usize), (63, 5), (1, 3)] {
            let pixels: Vec<u8> = (0..width * lines)
                .map(|i| (128.0 + 90.0 * ((i as f64) * 0.13).sin()) as u8)
                .collect();
            for mode in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
                let batched = compress_slice(&pixels, width, mode);
                let per_line: Vec<u8> = pixels
                    .chunks_exact(width)
                    .flat_map(|row| compress_line(row, mode))
                    .collect();
                assert_eq!(batched, per_line, "{width}x{lines} {mode:?}");
            }
        }
    }

    #[test]
    fn decompress_slice_matches_per_line_decode() {
        let width = 63;
        let lines = 6;
        let pixels: Vec<u8> = (0..width * lines).map(|i| (i * 7 % 256) as u8).collect();
        // Mixed per-line modes in one slice.
        let modes = [
            LineMode::Raw,
            LineMode::Dpcm,
            LineMode::DpcmSub2,
            LineMode::Dpcm,
            LineMode::Raw,
            LineMode::DpcmSub2,
        ];
        let mut wire = Vec::new();
        let mut want = Vec::new();
        for (row, &mode) in pixels.chunks_exact(width).zip(&modes) {
            let rec = compress_line(row, mode);
            want.extend(decompress_line(&rec, width).expect("per-line decode"));
            wire.extend(rec);
        }
        assert_eq!(decompress_slice(&wire, width, lines), Some(want));
        // Truncation and bad headers still fail like the per-line path.
        assert_eq!(
            decompress_slice(&wire[..wire.len() - 1], width, lines),
            None
        );
        let mut bad = wire.clone();
        bad[0] = 0x7F;
        assert_eq!(decompress_slice(&bad, width, lines), None);
    }

    #[test]
    fn encoder_decoder_predictors_agree() {
        // A hard step edge: the decoder must track the encoder's
        // reconstruction, not the original, so error stays bounded.
        let mut px = vec![0u8; 32];
        px.extend(vec![255u8; 32]);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 64).unwrap();
        // The tail of each plateau should have converged.
        assert!((d[30] as i32) < 40, "low plateau {:?}", &d[24..32]);
        assert!((d[63] as i32) > 215, "high plateau {:?}", &d[56..64]);
    }
}
