//! Per-line DPCM compression with sub-sampling (§3.6).
//!
//! "Each line of video data has a one byte compression header added, which
//! is used by the compression hardware to determine what sub-sampling and
//! DPCM coding should be applied." This module is the software stand-in
//! for that silicon: previous-pixel prediction, 4-bit non-uniform
//! quantisation of the error (two samples per byte, ≈2:1 ratio), with an
//! optional 2:1 horizontal sub-sampling mode. "Compression schemes and
//! parameters can be changed from one segment to the next."

/// Per-line compression mode, carried in the 1-byte line header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineMode {
    /// Uncompressed pixels.
    Raw,
    /// DPCM at full horizontal resolution.
    Dpcm,
    /// 2:1 horizontal sub-sampling, then DPCM.
    DpcmSub2,
}

impl LineMode {
    /// Header byte value.
    pub fn header(self) -> u8 {
        match self {
            LineMode::Raw => 0x00,
            LineMode::Dpcm => 0x01,
            LineMode::DpcmSub2 => 0x02,
        }
    }

    /// Parses a header byte.
    pub fn from_header(b: u8) -> Option<LineMode> {
        match b {
            0x00 => Some(LineMode::Raw),
            0x01 => Some(LineMode::Dpcm),
            0x02 => Some(LineMode::DpcmSub2),
            _ => None,
        }
    }
}

/// The 16-level non-uniform DPCM quantiser step table.
///
/// Small steps finely quantised, large steps coarsely — the usual DPCM
/// companding shape.
const STEPS: [i16; 8] = [0, 2, 5, 9, 16, 28, 48, 80];

fn quantise(err: i32) -> u8 {
    let mag = err.unsigned_abs() as i16;
    let mut idx = 0u8;
    for (i, &s) in STEPS.iter().enumerate() {
        if mag >= s {
            idx = i as u8;
        }
    }
    if err < 0 {
        idx | 0x08
    } else {
        idx
    }
}

fn dequantise(code: u8) -> i32 {
    let mag = STEPS[(code & 0x07) as usize] as i32;
    if code & 0x08 != 0 {
        -mag
    } else {
        mag
    }
}

/// Compresses one line: returns the 1-byte header followed by the payload.
pub fn compress_line(pixels: &[u8], mode: LineMode) -> Vec<u8> {
    let mut out = vec![mode.header()];
    match mode {
        LineMode::Raw => out.extend_from_slice(pixels),
        LineMode::Dpcm => out.extend_from_slice(&dpcm_encode(pixels)),
        LineMode::DpcmSub2 => {
            let sub: Vec<u8> = pixels
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        ((c[0] as u16 + c[1] as u16) / 2) as u8
                    } else {
                        c[0]
                    }
                })
                .collect();
            out.extend_from_slice(&dpcm_encode(&sub));
        }
    }
    out
}

/// Decompresses one line to `width` pixels.
///
/// Returns `None` on an unknown header or truncated payload.
pub fn decompress_line(data: &[u8], width: usize) -> Option<Vec<u8>> {
    let (&header, payload) = data.split_first()?;
    let mode = LineMode::from_header(header)?;
    match mode {
        LineMode::Raw => {
            if payload.len() < width {
                return None;
            }
            Some(payload[..width].to_vec())
        }
        LineMode::Dpcm => {
            let px = dpcm_decode(payload, width)?;
            Some(px)
        }
        LineMode::DpcmSub2 => {
            let half = width.div_ceil(2);
            let sub = dpcm_decode(payload, half)?;
            // Horizontal interpolation back to full width.
            let mut out = Vec::with_capacity(width);
            for i in 0..width {
                if i % 2 == 0 {
                    out.push(sub[i / 2]);
                } else {
                    let a = sub[i / 2] as u16;
                    let b = *sub.get(i / 2 + 1).unwrap_or(&sub[i / 2]) as u16;
                    out.push(((a + b) / 2) as u8);
                }
            }
            Some(out)
        }
    }
}

fn dpcm_encode(pixels: &[u8]) -> Vec<u8> {
    // Two 4-bit codes per byte; predictor follows the *decoder's*
    // reconstruction so errors do not accumulate.
    let mut codes = Vec::with_capacity(pixels.len());
    let mut pred = 128i32;
    for &p in pixels {
        let err = p as i32 - pred;
        let code = quantise(err);
        pred = (pred + dequantise(code)).clamp(0, 255);
        codes.push(code);
    }
    let mut out = Vec::with_capacity(codes.len().div_ceil(2));
    for pair in codes.chunks(2) {
        let hi = pair[0] << 4;
        let lo = if pair.len() == 2 { pair[1] } else { 0 };
        out.push(hi | lo);
    }
    out
}

fn dpcm_decode(data: &[u8], width: usize) -> Option<Vec<u8>> {
    if data.len() < width.div_ceil(2) {
        return None;
    }
    let mut out = Vec::with_capacity(width);
    let mut pred = 128i32;
    for i in 0..width {
        let byte = data[i / 2];
        let code = if i % 2 == 0 { byte >> 4 } else { byte & 0x0F };
        pred = (pred + dequantise(code)).clamp(0, 255);
        out.push(pred as u8);
    }
    Some(out)
}

/// Compressed size of a line of `width` pixels under `mode`, header
/// included.
pub fn compressed_line_bytes(width: usize, mode: LineMode) -> usize {
    1 + match mode {
        LineMode::Raw => width,
        LineMode::Dpcm => width.div_ceil(2),
        LineMode::DpcmSub2 => width.div_ceil(2).div_ceil(2),
    }
}

/// Mean absolute per-pixel error between two equal-length lines.
pub fn line_error(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "line length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
        .sum();
    sum as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: usize) -> Vec<u8> {
        (0..width).map(|i| (i * 255 / width.max(1)) as u8).collect()
    }

    fn texture(width: usize) -> Vec<u8> {
        (0..width)
            .map(|i| (128.0 + 60.0 * ((i as f64) * 0.7).sin()) as u8)
            .collect()
    }

    #[test]
    fn raw_round_trips_exactly() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Raw);
        assert_eq!(decompress_line(&c, 64).unwrap(), px);
    }

    #[test]
    fn dpcm_halves_the_size() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Dpcm);
        assert_eq!(c.len(), 1 + 32);
        assert_eq!(c.len(), compressed_line_bytes(64, LineMode::Dpcm));
    }

    #[test]
    fn dpcm_error_is_small_on_smooth_content() {
        let px = gradient(128);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 128).unwrap();
        assert!(line_error(&px, &d) < 4.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn dpcm_tracks_texture() {
        let px = texture(128);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 128).unwrap();
        assert!(line_error(&px, &d) < 10.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn sub2_quarter_size() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::DpcmSub2);
        assert_eq!(c.len(), 1 + 16);
        let d = decompress_line(&c, 64).unwrap();
        assert_eq!(d.len(), 64);
        // Sub-sampling loses detail but stays in the ballpark.
        assert!(line_error(&px, &d) < 25.0, "error {}", line_error(&px, &d));
    }

    #[test]
    fn odd_width_handled() {
        let px = texture(63);
        for mode in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
            let c = compress_line(&px, mode);
            let d = decompress_line(&c, 63).unwrap();
            assert_eq!(d.len(), 63, "mode {mode:?}");
        }
    }

    #[test]
    fn unknown_header_rejected() {
        assert_eq!(decompress_line(&[0x7F, 1, 2, 3], 3), None);
    }

    #[test]
    fn truncated_payload_rejected() {
        let px = texture(64);
        let c = compress_line(&px, LineMode::Dpcm);
        assert_eq!(decompress_line(&c[..10], 64), None);
    }

    #[test]
    fn mode_headers_round_trip() {
        for m in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
            assert_eq!(LineMode::from_header(m.header()), Some(m));
        }
        assert_eq!(LineMode::from_header(0x55), None);
    }

    #[test]
    fn encoder_decoder_predictors_agree() {
        // A hard step edge: the decoder must track the encoder's
        // reconstruction, not the original, so error stays bounded.
        let mut px = vec![0u8; 32];
        px.extend(vec![255u8; 32]);
        let c = compress_line(&px, LineMode::Dpcm);
        let d = decompress_line(&c, 64).unwrap();
        // The tail of each plateau should have converged.
        assert!((d[30] as i32) < 40, "low plateau {:?}", &d[24..32]);
        assert!((d[63] as i32) > 215, "high plateau {:?}", &d[56..64]);
    }
}
