//! Decompression with the per-stream last-line software cache (§3.6).
//!
//! "A problem arises when we interleave segments from different video
//! streams, as the vertical interpolation for the first line of a segment
//! needs to know what the last line of the previous segment contained."
//! Of the three options the paper lists, Pandora chose: "maintain a
//! software cache of the last line processed on each stream, and reload
//! the interpolation hardware whenever we interleave segments."
//!
//! This module models that: the decompressor applies a vertical smoothing
//! pass whose first output line depends on the previous segment's last
//! line. Decoding segments from interleaved streams *without* reloading
//! the right line produces measurable seams; with the [`LineCache`] it is
//! seamless.

use std::collections::HashMap;

use pandora_segment::{StreamId, VideoSegment};

use crate::dpcm::decompress_slice;

/// Vertical filter weight: each output line is
/// `(prev_line + 3 * line) / 4`, the smoothing the interpolation hardware
/// applies between adjacent lines.
fn vertical_filter(prev: &[u8], line: &[u8]) -> Vec<u8> {
    prev.iter()
        .zip(line.iter())
        .map(|(&p, &l)| ((p as u16 + 3 * l as u16) / 4) as u8)
        .collect()
}

/// The per-stream software cache of the last processed line.
#[derive(Debug, Default)]
pub struct LineCache {
    lines: HashMap<StreamId, Vec<u8>>,
}

impl LineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached last line for `stream`, if any.
    pub fn get(&self, stream: StreamId) -> Option<&[u8]> {
        self.lines.get(&stream).map(|v| v.as_slice())
    }

    /// Stores `line` as the last processed line of `stream` (the "reload").
    pub fn store(&mut self, stream: StreamId, line: Vec<u8>) {
        self.lines.insert(stream, line);
    }

    /// Forgets a stream (stream closed).
    pub fn remove(&mut self, stream: StreamId) {
        self.lines.remove(&stream);
    }

    /// Number of streams cached.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` when no streams are cached.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Decompresses a video segment into raw lines, applying the vertical
/// filter seeded from `cache` (choice 3 of §3.6), and updates the cache
/// with the segment's last line.
///
/// Returns `None` if any line fails to decode.
pub fn decode_segment(
    segment: &VideoSegment,
    stream: StreamId,
    cache: &mut LineCache,
) -> Option<Vec<Vec<u8>>> {
    let width = segment.video.width as usize;
    let lines = segment.video.lines as usize;
    // One row-chunked pass decodes every line of the segment; the
    // vertical filter then runs over the decoded rows.
    let raw_all = decompress_slice(&segment.data, width, lines)?;
    let mut out = Vec::with_capacity(lines);
    let mut prev: Option<Vec<u8>> = cache.get(stream).map(|l| l.to_vec());
    for i in 0..lines {
        let raw = &raw_all[i * width..(i + 1) * width];
        let filtered = match &prev {
            Some(p) if p.len() == raw.len() => vertical_filter(p, raw),
            // First line of a brand-new stream: seed with itself (the
            // hardware would be loaded with the line directly).
            _ => raw.to_vec(),
        };
        prev = Some(raw.to_vec());
        out.push(filtered);
    }
    if let Some(last) = prev {
        cache.store(stream, last);
    }
    Some(out)
}

/// Decodes a segment *without* consulting the cache — the broken
/// interleaving the paper's choice 3 exists to prevent. The first line is
/// filtered against whatever stale line is passed in (e.g. another
/// stream's), producing a seam.
pub fn decode_segment_stale(
    segment: &VideoSegment,
    stale_prev: Option<&[u8]>,
) -> Option<Vec<Vec<u8>>> {
    let width = segment.video.width as usize;
    let lines = segment.video.lines as usize;
    let raw_all = decompress_slice(&segment.data, width, lines)?;
    let mut out = Vec::with_capacity(lines);
    let mut prev: Option<Vec<u8>> = stale_prev.map(|l| l.to_vec());
    for i in 0..lines {
        let raw = &raw_all[i * width..(i + 1) * width];
        let filtered = match &prev {
            Some(p) if p.len() == raw.len() => vertical_filter(p, raw),
            _ => raw.to_vec(),
        };
        prev = Some(raw.to_vec());
        out.push(filtered);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_rect, CaptureConfig, RateFraction};
    use crate::dpcm::{line_error, LineMode};
    use crate::framestore::{FrameStore, Rect};
    use crate::pattern::TestPattern;
    use pandora_segment::{SequenceNumber, Timestamp};

    fn make_segments(stream_seed: u64, lines_per_segment: u32) -> Vec<VideoSegment> {
        let mut fs = FrameStore::new(32, 16);
        fs.write_frame(&TestPattern::new(32, 16).frame(stream_seed));
        let cfg = CaptureConfig {
            rect: Rect::new(0, 0, 32, 16),
            rate: RateFraction::FULL,
            lines_per_segment,
            mode: LineMode::Dpcm,
        };
        capture_rect(&fs, &cfg, 0, SequenceNumber(0), Timestamp(0))
    }

    #[test]
    fn decode_produces_all_lines() {
        let segs = make_segments(1, 8);
        let mut cache = LineCache::new();
        let mut total = 0;
        for s in &segs {
            total += decode_segment(s, StreamId(1), &mut cache).unwrap().len();
        }
        assert_eq!(total, 16);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_makes_interleaving_seamless() {
        // Decode two interleaved streams with the cache; then decode the
        // second segment of stream A with a *stale* previous line (stream
        // B's last line) and show the seam the cache prevents.
        let segs_a = make_segments(1, 8);
        let segs_b = make_segments(40, 8);
        let mut cache = LineCache::new();

        // Interleaved: A0, B0, A1, B1 — the cache keeps them separate.
        let _a0 = decode_segment(&segs_a[0], StreamId(1), &mut cache).unwrap();
        let b0 = decode_segment(&segs_b[0], StreamId(2), &mut cache).unwrap();
        let a1_good = decode_segment(&segs_a[1], StreamId(1), &mut cache).unwrap();

        // Sequential decode of stream A alone = ground truth.
        let mut solo = LineCache::new();
        let _ = decode_segment(&segs_a[0], StreamId(9), &mut solo).unwrap();
        let a1_truth = decode_segment(&segs_a[1], StreamId(9), &mut solo).unwrap();
        assert_eq!(
            a1_good, a1_truth,
            "cache-reloaded decode must match solo decode"
        );

        // Without the cache: first line filtered against stream B's line.
        let a1_bad = decode_segment_stale(&segs_a[1], Some(b0.last().unwrap())).unwrap();
        let seam = line_error(&a1_bad[0], &a1_truth[0]);
        assert!(seam > 2.0, "expected a visible seam, got error {seam}");
        // Later lines are unaffected — the seam is only at the boundary.
        assert_eq!(a1_bad[3], a1_truth[3]);
    }

    #[test]
    fn fresh_stream_needs_no_cache() {
        let segs = make_segments(1, 16);
        let mut cache = LineCache::new();
        let lines = decode_segment(&segs[0], StreamId(5), &mut cache).unwrap();
        assert_eq!(lines.len(), 16);
    }

    #[test]
    fn cache_lifecycle() {
        let mut cache = LineCache::new();
        assert!(cache.is_empty());
        cache.store(StreamId(1), vec![1, 2, 3]);
        assert_eq!(cache.get(StreamId(1)), Some(&[1u8, 2, 3][..]));
        cache.remove(StreamId(1));
        assert!(cache.get(StreamId(1)).is_none());
    }

    #[test]
    fn corrupt_segment_decodes_to_none() {
        let mut segs = make_segments(1, 16);
        segs[0].data[0] = 0x7F; // Unknown line mode.
        let mut cache = LineCache::new();
        assert!(decode_segment(&segs[0], StreamId(1), &mut cache).is_none());
    }
}
