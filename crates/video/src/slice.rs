//! The slice protocol through the compression pipeline (§3.6).
//!
//! "Each segment of video data is reduced further into several slices of a
//! few lines each for transmission through the compression subsystem.
//! After each slice has been written to the fifo, a small description …
//! is sent over a link to the server transputer. … The slice descriptions
//! on the link can be considered to be a model of the data that is in
//! transit through the fifo's and compression hardware."
//!
//! Because the compression silicon "is pipelined and does not drain
//! automatically", dummy lines are appended after each segment to flush
//! it, and one link buffer is special: it "always holds back one slice
//! description at all times, with any tail or head descriptions that
//! follow, until another slice description is read" — so the description
//! stream never runs ahead of the data that is still stuck in the
//! pipeline.

/// A description travelling on the link alongside the FIFO data (§3.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceDesc<H> {
    /// "A header slice description precedes the first slice of a segment
    /// to describe what compression algorithm has been selected, what
    /// stream number the segment is for, and contains the full segment
    /// header."
    Head(H),
    /// An ordinary slice: `lines` lines whose compressed length is
    /// `bytes` ("the number of lines and their length after compression").
    Slice {
        /// Lines in this slice.
        lines: u32,
        /// Compressed byte count of the slice in the FIFO.
        bytes: u32,
    },
    /// "When the last slice has been sent, a tail marker is sent over the
    /// link."
    Tail,
}

/// The special link buffer: holds back the most recent slice description
/// (plus any tail/head descriptions behind it) until the next slice
/// description arrives.
#[derive(Debug)]
pub struct HoldbackBuffer<H> {
    held: Vec<SliceDesc<H>>,
}

impl<H> Default for HoldbackBuffer<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H> HoldbackBuffer<H> {
    /// Creates an empty hold-back buffer.
    pub fn new() -> Self {
        HoldbackBuffer { held: Vec::new() }
    }

    /// Pushes a description; returns whatever is released downstream.
    ///
    /// A new `Slice` releases everything currently held (its data has
    /// pushed the held slice's data out of the pipeline) and is itself
    /// held. `Head`/`Tail` descriptions queue behind the held slice.
    pub fn push(&mut self, desc: SliceDesc<H>) -> Vec<SliceDesc<H>> {
        match desc {
            SliceDesc::Slice { .. } => {
                let released = std::mem::take(&mut self.held);
                self.held.push(desc);
                released
            }
            other => {
                if self.held.is_empty() {
                    // Nothing in the pipeline: pass straight through.
                    vec![other]
                } else {
                    self.held.push(other);
                    Vec::new()
                }
            }
        }
    }

    /// Descriptions currently held back.
    pub fn held(&self) -> &[SliceDesc<H>] {
        &self.held
    }
}

/// The pipelined compression engine model: always retains the last slice
/// of data written until more data pushes it through.
#[derive(Debug)]
pub struct CompressionPipeline {
    resident: Option<Vec<u8>>,
    /// Total bytes that have passed completely through.
    emitted: u64,
}

impl Default for CompressionPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionPipeline {
    /// Creates an empty (drained) pipeline.
    pub fn new() -> Self {
        CompressionPipeline {
            resident: None,
            emitted: 0,
        }
    }

    /// Writes a slice of data; returns the slice that this write pushed
    /// out of the pipeline, if any.
    pub fn write(&mut self, data: Vec<u8>) -> Option<Vec<u8>> {
        let out = self.resident.replace(data);
        if let Some(o) = &out {
            self.emitted += o.len() as u64;
        }
        out
    }

    /// Bytes of data currently stuck in the pipeline.
    pub fn resident_bytes(&self) -> usize {
        self.resident.as_ref().map_or(0, |d| d.len())
    }

    /// Bytes fully emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Number of dummy flush lines appended after each video segment ("we send
/// a few dummy lines after each video segment" to flush the last slice).
pub const DUMMY_FLUSH_LINES: u32 = 2;

/// Splits a compressed segment payload (a sequence of per-line records)
/// into slices of at most `lines_per_slice` lines, returning
/// `(lines, data)` pairs. The per-line record length is discovered from
/// the 1-byte header via `line_len`.
pub fn slice_segment(
    payload: &[u8],
    total_lines: u32,
    lines_per_slice: u32,
    line_len: impl Fn(&[u8]) -> Option<usize>,
) -> Option<Vec<(u32, Vec<u8>)>> {
    assert!(lines_per_slice > 0, "lines_per_slice must be non-zero");
    let mut slices = Vec::new();
    let mut off = 0usize;
    let mut lines_left = total_lines;
    while lines_left > 0 {
        let lines = lines_per_slice.min(lines_left);
        let start = off;
        for _ in 0..lines {
            let len = line_len(&payload[off..])?;
            off += len;
            if off > payload.len() {
                return None;
            }
        }
        slices.push((lines, payload[start..off].to_vec()));
        lines_left -= lines;
    }
    if off != payload.len() {
        return None;
    }
    Some(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Desc = SliceDesc<&'static str>;

    fn slice(lines: u32, bytes: u32) -> Desc {
        SliceDesc::Slice { lines, bytes }
    }

    #[test]
    fn head_passes_through_empty_buffer() {
        let mut hb = HoldbackBuffer::new();
        assert_eq!(
            hb.push(SliceDesc::Head("seg1")),
            vec![SliceDesc::Head("seg1")]
        );
    }

    #[test]
    fn first_slice_is_held() {
        let mut hb = HoldbackBuffer::<&'static str>::new();
        assert!(hb.push(slice(4, 100)).is_empty());
        assert_eq!(hb.held().len(), 1);
    }

    #[test]
    fn next_slice_releases_previous() {
        let mut hb = HoldbackBuffer::<&'static str>::new();
        hb.push(slice(4, 100));
        let released = hb.push(slice(4, 90));
        assert_eq!(released, vec![slice(4, 100)]);
        assert_eq!(hb.held(), &[slice(4, 90)]);
    }

    #[test]
    fn tail_queues_behind_held_slice() {
        // End of segment: the last slice is in the pipeline, its tail (and
        // the next segment's head) must not overtake it.
        let mut hb = HoldbackBuffer::new();
        hb.push(slice(4, 100));
        assert!(hb.push(Desc::Tail).is_empty());
        assert!(hb.push(SliceDesc::Head("seg2")).is_empty());
        assert_eq!(hb.held().len(), 3);
        // The dummy-flush slice of the next segment releases all three in
        // order.
        let released = hb.push(slice(2, 40));
        assert_eq!(
            released,
            vec![slice(4, 100), Desc::Tail, SliceDesc::Head("seg2")]
        );
    }

    #[test]
    fn pipeline_retains_last_slice() {
        let mut p = CompressionPipeline::new();
        assert_eq!(p.write(vec![1, 2, 3]), None);
        assert_eq!(p.resident_bytes(), 3);
        assert_eq!(p.write(vec![4, 5]), Some(vec![1, 2, 3]));
        assert_eq!(p.resident_bytes(), 2);
        assert_eq!(p.emitted(), 3);
    }

    #[test]
    fn dummy_lines_flush_pipeline() {
        let mut p = CompressionPipeline::new();
        p.write(vec![9; 100]); // Real final slice.
        let flushed = p.write(vec![0; 10]); // Dummy flush lines.
        assert_eq!(flushed, Some(vec![9; 100]));
        // The dummies are now resident — harmless until the next segment.
        assert_eq!(p.resident_bytes(), 10);
    }

    #[test]
    fn slice_segment_partitions_lines() {
        // 3 lines of raw mode: header 0x00 + 4 pixels each.
        let line_len = |d: &[u8]| {
            crate::dpcm::LineMode::from_header(*d.first()?)?;
            Some(1 + 4)
        };
        let mut payload = Vec::new();
        for i in 0..3u8 {
            payload.push(0x00);
            payload.extend([i; 4]);
        }
        let slices = slice_segment(&payload, 3, 2, line_len).unwrap();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].0, 2);
        assert_eq!(slices[0].1.len(), 10);
        assert_eq!(slices[1].0, 1);
        assert_eq!(slices[1].1.len(), 5);
    }

    #[test]
    fn slice_segment_rejects_corrupt_payload() {
        let line_len = |_: &[u8]| Some(100usize); // Overruns immediately.
        assert_eq!(slice_segment(&[0u8; 10], 2, 1, line_len), None);
    }

    #[test]
    fn several_slices_in_transit() {
        // The buffer chain allows concurrency: only the *last* slice is
        // held, earlier ones flow on immediately.
        let mut hb = HoldbackBuffer::<&'static str>::new();
        let mut delivered = 0;
        for i in 0..10u32 {
            delivered += hb.push(slice(4, 100 + i)).len();
        }
        assert_eq!(delivered, 9);
        assert_eq!(hb.held().len(), 1);
    }
}
