//! # pandora-video — the Pandora video path primitives
//!
//! Implements §3.3 and §3.6 of the paper:
//!
//! * [`FrameStore`] / [`ScanModel`] — the double-ported framestore and the
//!   raster-scan timing used to avoid tearing on capture and display;
//! * [`capture_rect`] / [`RateFraction`] — rectangle capture at fractional
//!   frame rates (e.g. 2/5 of 25 Hz = 10 fps), split into self-describing
//!   video segments;
//! * [`dpcm`] — the per-line DPCM + sub-sampling codec with its 1-byte
//!   line headers (the compression silicon stand-in);
//! * [`slice`](mod@slice) — the slice-description link protocol: the pipelined
//!   compression engine model, dummy-line flushing, and the special
//!   hold-back buffer that models data stuck in the pipeline;
//! * [`interp`] — decompression with the per-stream last-line software
//!   cache that makes interleaved multi-stream decode seamless (the
//!   paper's choice 3);
//! * [`FrameAssembler`] — whole-frame assembly before display, so a
//!   partially received frame is never shown (no tears).

pub mod dpcm;
pub mod interp;
pub mod slice;

mod capture;
mod display;
mod framestore;
mod pattern;

pub use capture::{capture_rect, CaptureConfig, RateFraction};
pub use display::{AssembledFrame, FrameAssembler};
pub use framestore::{
    FrameStore, Rect, ScanModel, DEFAULT_HEIGHT, DEFAULT_WIDTH, FRAME_PERIOD_NANOS,
    FULL_FRAME_RATE_HZ,
};
pub use pattern::TestPattern;
