//! Frame assembly and tear-free display (§3.6).
//!
//! "On the mixer board, the video data is copied from the fifo into a
//! waiting memory buffer. We do not display any part of a video frame
//! until all of the segments have been received, otherwise the effect of a
//! tear can be seen when part of the image is moving parallel to a segment
//! boundary. Once we have all the data for a frame, it is copied into the
//! display frame buffer as soon as possible, care being taken to avoid the
//! scan of the display controller."

use std::collections::HashMap;

use pandora_segment::VideoSegment;

use crate::framestore::Rect;

/// Assembles the segments of each video frame; releases a frame only when
/// complete.
#[derive(Debug)]
pub struct FrameAssembler {
    current_frame: Option<u32>,
    expected_segments: u32,
    received: HashMap<u32, VideoSegment>,
    /// Frames abandoned because a newer frame arrived first.
    dropped_incomplete: u64,
    completed: u64,
}

/// A fully assembled frame ready to blit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledFrame {
    /// The frame number.
    pub frame_number: u32,
    /// Placement of the whole rectangle on the display.
    pub rect: Rect,
    /// Decompressed pixels, row-major, `rect.area()` bytes.
    pub pixels: Vec<u8>,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler {
            current_frame: None,
            expected_segments: 0,
            received: HashMap::new(),
            dropped_incomplete: 0,
            completed: 0,
        }
    }

    /// Feeds one decoded segment (already decompressed to `lines` of raw
    /// pixels). Returns the assembled frame when the last piece lands.
    ///
    /// A segment from a newer frame abandons the current incomplete frame
    /// (it can never complete once its successor starts arriving in a
    /// FIFO transport) — the abandonment is counted, never displayed.
    pub fn push(&mut self, segment: &VideoSegment, lines: Vec<Vec<u8>>) -> Option<AssembledFrame> {
        let frame = segment.video.frame_number;
        match self.current_frame {
            Some(f) if f == frame => {}
            Some(f) => {
                // Newer frame (or wrap): drop the partial one.
                if !self.received.is_empty() {
                    self.dropped_incomplete += 1;
                }
                self.received.clear();
                self.current_frame = Some(frame);
                self.expected_segments = segment.video.segments_in_frame;
                let _ = f;
            }
            None => {
                self.current_frame = Some(frame);
                self.expected_segments = segment.video.segments_in_frame;
            }
        }
        let mut seg = segment.clone();
        // Replace compressed payload with raw pixels for composition.
        seg.data = lines.concat();
        self.received.insert(segment.video.segment_number, seg);
        if self.received.len() as u32 == self.expected_segments {
            let frame = self.compose()?;
            self.received.clear();
            self.current_frame = None;
            self.completed += 1;
            Some(frame)
        } else {
            None
        }
    }

    fn compose(&self) -> Option<AssembledFrame> {
        let any = self.received.values().next()?;
        let width = any.video.width;
        let total_lines: u32 = self.received.values().map(|s| s.video.lines).sum();
        let rect = Rect::new(any.video.x_offset, any.video.y_offset, width, total_lines);
        let mut pixels = vec![0u8; rect.area()];
        for seg in self.received.values() {
            let start = seg.video.start_line as usize * width as usize;
            let len = seg.video.lines as usize * width as usize;
            if seg.data.len() != len || start + len > pixels.len() {
                return None;
            }
            pixels[start..start + len].copy_from_slice(&seg.data);
        }
        Some(AssembledFrame {
            frame_number: any.video.frame_number,
            rect,
            pixels,
        })
    }

    /// Frames abandoned mid-assembly.
    pub fn dropped_incomplete(&self) -> u64 {
        self.dropped_incomplete
    }

    /// Frames fully assembled.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Segments currently held for the in-progress frame.
    pub fn pending_segments(&self) -> usize {
        self.received.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_rect, CaptureConfig, RateFraction};
    use crate::dpcm::LineMode;
    use crate::framestore::FrameStore;
    use crate::interp::{decode_segment, LineCache};
    use crate::pattern::TestPattern;
    use pandora_segment::{SequenceNumber, StreamId, Timestamp};

    fn captured_frame(frame_number: u32, lines_per_segment: u32) -> Vec<VideoSegment> {
        let mut fs = FrameStore::new(32, 16);
        fs.write_frame(&TestPattern::new(32, 16).frame(frame_number as u64));
        let cfg = CaptureConfig {
            rect: Rect::new(4, 2, 24, 12),
            rate: RateFraction::FULL,
            lines_per_segment,
            mode: LineMode::Raw, // Raw keeps pixels exact for assertions.
        };
        capture_rect(&fs, &cfg, frame_number, SequenceNumber(0), Timestamp(0))
    }

    fn decode(seg: &VideoSegment, cache: &mut LineCache) -> Vec<Vec<u8>> {
        decode_segment(seg, StreamId(1), cache).unwrap()
    }

    #[test]
    fn frame_released_only_when_complete() {
        let segs = captured_frame(0, 4); // 3 segments.
        let mut asm = FrameAssembler::new();
        let mut cache = LineCache::new();
        assert!(asm.push(&segs[0], decode(&segs[0], &mut cache)).is_none());
        assert!(asm.push(&segs[1], decode(&segs[1], &mut cache)).is_none());
        let frame = asm
            .push(&segs[2], decode(&segs[2], &mut cache))
            .expect("complete");
        assert_eq!(frame.rect, Rect::new(4, 2, 24, 12));
        assert_eq!(frame.pixels.len(), 24 * 12);
        assert_eq!(asm.completed(), 1);
    }

    #[test]
    fn out_of_order_segments_assemble() {
        let segs = captured_frame(0, 4);
        let mut asm = FrameAssembler::new();
        let mut cache = LineCache::new();
        assert!(asm.push(&segs[2], decode(&segs[2], &mut cache)).is_none());
        assert!(asm.push(&segs[0], decode(&segs[0], &mut cache)).is_none());
        let frame = asm.push(&segs[1], decode(&segs[1], &mut cache));
        assert!(frame.is_some());
    }

    #[test]
    fn lost_segment_drops_whole_frame() {
        // Frame 0 loses its middle segment; frame 1 arrives: frame 0 is
        // abandoned (never partially displayed — no tears) and counted.
        let f0 = captured_frame(0, 4);
        let f1 = captured_frame(1, 4);
        let mut asm = FrameAssembler::new();
        let mut cache = LineCache::new();
        asm.push(&f0[0], decode(&f0[0], &mut cache));
        asm.push(&f0[2], decode(&f0[2], &mut cache));
        // Segment f0[1] lost. Frame 1 starts:
        assert!(asm.push(&f1[0], decode(&f1[0], &mut cache)).is_none());
        assert_eq!(asm.dropped_incomplete(), 1);
        asm.push(&f1[1], decode(&f1[1], &mut cache));
        let frame = asm
            .push(&f1[2], decode(&f1[2], &mut cache))
            .expect("frame 1 completes");
        assert_eq!(frame.frame_number, 1);
    }

    #[test]
    fn assembled_pixels_match_source() {
        // Raw mode, single stream: pixels after assemble must equal the
        // framestore rectangle exactly (vertical filter seeds with the
        // first line, and raw lines of a fresh stream pass through, so we
        // only check the first segment's first line plus geometry).
        let segs = captured_frame(0, 12); // Single segment.
        let mut fs = FrameStore::new(32, 16);
        fs.write_frame(&TestPattern::new(32, 16).frame(0));
        let expected = fs.read_rect(Rect::new(4, 2, 24, 12));
        let mut asm = FrameAssembler::new();
        let mut cache = LineCache::new();
        let frame = asm.push(&segs[0], decode(&segs[0], &mut cache)).unwrap();
        // First line exact; subsequent lines are vertically filtered.
        assert_eq!(&frame.pixels[..24], &expected[..24]);
    }

    #[test]
    fn single_segment_frames_flow() {
        let mut asm = FrameAssembler::new();
        let mut cache = LineCache::new();
        for n in 0..5 {
            let segs = captured_frame(n, 12);
            let got = asm.push(&segs[0], decode(&segs[0], &mut cache));
            assert!(got.is_some(), "frame {n}");
        }
        assert_eq!(asm.completed(), 5);
        assert_eq!(asm.dropped_incomplete(), 0);
    }
}
