//! The video framestore and display-scan model (§3.6).
//!
//! The capture board reads rectangular blocks out of a double-ported
//! framestore that the camera writes continuously; reads are "carefully
//! timed so that the data from the camera being written continuously on a
//! second port does not update any part of a block while it is being
//! read". The same scan geometry is used on the display side to avoid
//! tears.

/// A rectangle within a frame (pixel units, top-left origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in lines.
    pub height: u32,
}

impl Rect {
    /// Builds a rectangle.
    pub const fn new(x: u32, y: u32, width: u32, height: u32) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Number of pixels covered.
    pub fn area(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Returns `true` if `self` and `other` share any pixel.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.x + other.width
            && other.x < self.x + self.width
            && self.y < other.y + other.height
            && other.y < self.y + self.height
    }

    /// Returns `true` if the rectangle fits a `width` × `height` frame.
    pub fn fits(&self, width: u32, height: u32) -> bool {
        self.x + self.width <= width && self.y + self.height <= height
    }
}

/// An 8-bit greyscale framestore.
///
/// PAL-ish geometry by default (768 × 288 per field at 25 Hz); the paper's
/// hardware stored 16-bit colour, but the transport and timing behaviour
/// under study is pixel-format-independent (see DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct FrameStore {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
    /// Generation counter: bumped by each camera frame write.
    generation: u64,
}

/// Default framestore width.
pub const DEFAULT_WIDTH: u32 = 768;
/// Default framestore height.
pub const DEFAULT_HEIGHT: u32 = 288;
/// The full camera frame rate (25 Hz).
pub const FULL_FRAME_RATE_HZ: u32 = 25;
/// Nanoseconds per full-rate frame (40 ms).
pub const FRAME_PERIOD_NANOS: u64 = 1_000_000_000 / FULL_FRAME_RATE_HZ as u64;

impl FrameStore {
    /// Creates a zeroed framestore.
    pub fn new(width: u32, height: u32) -> Self {
        FrameStore {
            width,
            height,
            pixels: vec![0; width as usize * height as usize],
            generation: 0,
        }
    }

    /// Creates the default-geometry framestore.
    pub fn standard() -> Self {
        FrameStore::new(DEFAULT_WIDTH, DEFAULT_HEIGHT)
    }

    /// Framestore width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Framestore height in lines.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Frames written so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Overwrites the whole store with a camera frame.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not exactly `width * height` bytes.
    pub fn write_frame(&mut self, frame: &[u8]) {
        assert_eq!(frame.len(), self.pixels.len(), "frame size mismatch");
        self.pixels.copy_from_slice(frame);
        self.generation += 1;
    }

    /// Writes one line (used by the scan-interleaved camera model).
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range or the wrong width.
    pub fn write_line(&mut self, y: u32, line: &[u8]) {
        assert!(y < self.height, "line {y} out of range");
        assert_eq!(line.len(), self.width as usize, "line width mismatch");
        let start = y as usize * self.width as usize;
        self.pixels[start..start + self.width as usize].copy_from_slice(line);
    }

    /// Reads a rectangle, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle does not fit the store.
    pub fn read_rect(&self, rect: Rect) -> Vec<u8> {
        assert!(
            rect.fits(self.width, self.height),
            "rect out of range: {rect:?}"
        );
        let mut out = Vec::with_capacity(rect.area());
        for row in rect.y..rect.y + rect.height {
            let start = row as usize * self.width as usize + rect.x as usize;
            out.extend_from_slice(&self.pixels[start..start + rect.width as usize]);
        }
        out
    }

    /// Writes a rectangle (the display mixer's blit).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle does not fit or `data` has the wrong size.
    pub fn write_rect(&mut self, rect: Rect, data: &[u8]) {
        assert!(
            rect.fits(self.width, self.height),
            "rect out of range: {rect:?}"
        );
        assert_eq!(data.len(), rect.area(), "data size mismatch for {rect:?}");
        for (i, row) in (rect.y..rect.y + rect.height).enumerate() {
            let start = row as usize * self.width as usize + rect.x as usize;
            let src = i * rect.width as usize;
            self.pixels[start..start + rect.width as usize]
                .copy_from_slice(&data[src..src + rect.width as usize]);
        }
    }
}

/// The raster-scan timing model shared by camera writes and display reads.
///
/// At 25 Hz over `height` lines, line `y` is being scanned during
/// `[frame_start + y*line_period, frame_start + (y+1)*line_period)`.
#[derive(Debug, Clone, Copy)]
pub struct ScanModel {
    height: u32,
    frame_period_ns: u64,
}

impl ScanModel {
    /// Builds the scan model for a store of `height` lines.
    pub fn new(height: u32, frame_period_ns: u64) -> Self {
        assert!(height > 0, "height must be non-zero");
        ScanModel {
            height,
            frame_period_ns,
        }
    }

    /// The standard 25 Hz scan for the default framestore.
    pub fn standard() -> Self {
        ScanModel::new(DEFAULT_HEIGHT, FRAME_PERIOD_NANOS)
    }

    /// Time the scan spends on one line.
    pub fn line_period_ns(&self) -> u64 {
        self.frame_period_ns / self.height as u64
    }

    /// The line under the scan beam at absolute time `t_ns`.
    pub fn scan_line_at(&self, t_ns: u64) -> u32 {
        ((t_ns % self.frame_period_ns) / self.line_period_ns()) as u32 % self.height
    }

    /// Whether the scan is inside `rect`'s rows during
    /// `[t_ns, t_ns + duration_ns)`.
    pub fn scan_hits_rect(&self, rect: Rect, t_ns: u64, duration_ns: u64) -> bool {
        // Walk whole line intervals covered by the window.
        let lp = self.line_period_ns();
        let first = t_ns / lp;
        let last = (t_ns + duration_ns.max(1) - 1) / lp;
        for li in first..=last {
            let line = (li % self.height as u64) as u32;
            if line >= rect.y && line < rect.y + rect.height {
                return true;
            }
        }
        false
    }

    /// Earliest delay from `t_ns` at which a copy of `duration_ns` into
    /// `rect` avoids the scan — "copying frames both in front of and
    /// behind the scan if necessary".
    ///
    /// Returns 0 if the copy is already safe now. Searches line-by-line
    /// within one frame period; if the copy is longer than the scan's time
    /// away from the rect, the copy cannot be made safe and 0 is returned
    /// with the caller accepting the tear (the paper's hardware never hit
    /// this because blits are fast relative to the scan).
    pub fn safe_blit_delay(&self, rect: Rect, t_ns: u64, duration_ns: u64) -> u64 {
        let lp = self.line_period_ns();
        let mut delay = 0u64;
        // Try successive line-aligned start times within one frame.
        for _ in 0..=self.height {
            if !self.scan_hits_rect(rect, t_ns + delay, duration_ns) {
                return delay;
            }
            // Jump to the start of the next line interval.
            let into_line = (t_ns + delay) % lp;
            delay += lp - into_line;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(10, 20, 30, 40);
        assert_eq!(r.area(), 1200);
        assert!(r.overlaps(&Rect::new(35, 55, 10, 10)));
        assert!(!r.overlaps(&Rect::new(40, 20, 5, 5)));
        assert!(r.fits(100, 100));
        assert!(!r.fits(39, 100));
    }

    #[test]
    fn read_write_rect_round_trip() {
        let mut fs = FrameStore::new(16, 16);
        let rect = Rect::new(2, 3, 4, 5);
        let data: Vec<u8> = (0..rect.area() as u8).collect();
        fs.write_rect(rect, &data);
        assert_eq!(fs.read_rect(rect), data);
        // Outside the rect is untouched.
        assert_eq!(fs.read_rect(Rect::new(0, 0, 2, 2)), vec![0; 4]);
    }

    #[test]
    fn write_frame_bumps_generation() {
        let mut fs = FrameStore::new(4, 4);
        assert_eq!(fs.generation(), 0);
        fs.write_frame(&[7; 16]);
        assert_eq!(fs.generation(), 1);
        assert_eq!(fs.read_rect(Rect::new(0, 0, 4, 4)), vec![7; 16]);
    }

    #[test]
    #[should_panic(expected = "rect out of range")]
    fn out_of_range_read_panics() {
        let fs = FrameStore::new(8, 8);
        let _ = fs.read_rect(Rect::new(4, 4, 8, 8));
    }

    #[test]
    fn scan_line_advances_with_time() {
        let scan = ScanModel::new(100, 40_000_000); // 400us per line.
        assert_eq!(scan.scan_line_at(0), 0);
        assert_eq!(scan.scan_line_at(400_000), 1);
        assert_eq!(scan.scan_line_at(39_999_999), 99);
        assert_eq!(scan.scan_line_at(40_000_000), 0); // Wraps per frame.
    }

    #[test]
    fn scan_hits_rect_detection() {
        let scan = ScanModel::new(100, 40_000_000);
        let rect = Rect::new(0, 50, 10, 10); // Lines 50-59.
                                             // At t=0 the scan is at line 0: a short copy misses the rect.
        assert!(!scan.scan_hits_rect(rect, 0, 1_000_000));
        // Scanning line 50 at t = 50*400us = 20ms.
        assert!(scan.scan_hits_rect(rect, 20_000_000, 1_000));
        // A copy spanning lines 45-52 hits.
        assert!(scan.scan_hits_rect(rect, 18_000_000, 3_000_000));
    }

    #[test]
    fn safe_blit_defers_past_scan() {
        let scan = ScanModel::new(100, 40_000_000);
        let rect = Rect::new(0, 0, 10, 5); // Lines 0-4.
                                           // At t=0 the scan is inside the rect: must wait ~5 lines (2ms).
        let d = scan.safe_blit_delay(rect, 0, 100_000);
        assert!(d >= 2_000_000, "delay {d}");
        assert!(!scan.scan_hits_rect(rect, d, 100_000));
        // Far from the rect: no delay.
        assert_eq!(scan.safe_blit_delay(rect, 20_000_000, 100_000), 0);
    }

    #[test]
    fn write_line_updates_single_row() {
        let mut fs = FrameStore::new(4, 3);
        fs.write_line(1, &[9, 9, 9, 9]);
        assert_eq!(fs.read_rect(Rect::new(0, 1, 4, 1)), vec![9; 4]);
        assert_eq!(fs.read_rect(Rect::new(0, 0, 4, 1)), vec![0; 4]);
    }
}
