//! Deterministic synthetic camera frames.
//!
//! Stand-in for the live camera: a moving pattern with smooth gradients
//! (good DPCM behaviour) plus a travelling bright blob (motion for the
//! tear and frame-rate experiments). Fully deterministic in
//! (width, height, frame index).

/// A synthetic camera producing 8-bit greyscale frames.
#[derive(Debug, Clone)]
pub struct TestPattern {
    width: u32,
    height: u32,
}

impl TestPattern {
    /// Creates a pattern generator for `width` × `height` frames.
    pub fn new(width: u32, height: u32) -> Self {
        TestPattern { width, height }
    }

    /// Renders frame `n`.
    pub fn frame(&self, n: u64) -> Vec<u8> {
        let w = self.width as usize;
        let h = self.height as usize;
        let mut out = vec![0u8; w * h];
        // A diagonal gradient that drifts one pixel per frame.
        let shift = (n % 256) as usize;
        // A blob circling the frame.
        let cx = (w as f64 / 2.0) * (1.0 + 0.7 * ((n as f64) * 0.1).cos());
        let cy = (h as f64 / 2.0) * (1.0 + 0.7 * ((n as f64) * 0.1).sin());
        for y in 0..h {
            for x in 0..w {
                let g = ((x + y + shift) % 256) as f64 * 0.5;
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let d2 = dx * dx + dy * dy;
                let blob = 120.0 * (-d2 / 60.0).exp();
                out[y * w + x] = (g + blob).min(255.0) as u8;
            }
        }
        out
    }

    /// Frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> u32 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = TestPattern::new(32, 24);
        assert_eq!(p.frame(5), p.frame(5));
    }

    #[test]
    fn frames_differ_over_time() {
        let p = TestPattern::new(32, 24);
        assert_ne!(p.frame(0), p.frame(1));
    }

    #[test]
    fn correct_dimensions() {
        let p = TestPattern::new(17, 9);
        assert_eq!(p.frame(0).len(), 17 * 9);
    }

    #[test]
    fn has_contrast() {
        let p = TestPattern::new(64, 48);
        let f = p.frame(0);
        let min = *f.iter().min().unwrap();
        let max = *f.iter().max().unwrap();
        assert!(max - min > 100, "contrast {min}..{max}");
    }
}
