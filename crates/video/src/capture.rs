//! Rectangle capture at fractional frame rates (§3.6).
//!
//! "Rectangular blocks are read from a video framestore at intervals
//! determined by the requested frame rates of the streams. Each stream can
//! be from different, possibly overlapping, sections of the store. The
//! frame rates are expressed as a fraction of full 25Hz frame rate. For
//! example, 2/5 gives an average of 10 frames per second." Large blocks
//! are split into several segments "each of which is despatched as soon as
//! the data is ready, reducing latencies and buffering requirements".

use pandora_segment::{
    PixelFormat, SequenceNumber, Timestamp, VideoCompression, VideoHeader, VideoSegment,
};

use crate::dpcm::{compress_slice, LineMode};
use crate::framestore::{FrameStore, Rect};

/// A frame rate expressed as a fraction of the full 25 Hz rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateFraction {
    /// Numerator.
    pub num: u32,
    /// Denominator.
    pub den: u32,
}

impl RateFraction {
    /// Builds `num/den` of 25 Hz.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(den > 0, "denominator must be non-zero");
        assert!(num <= den, "rate fraction must be <= 1");
        RateFraction { num, den }
    }

    /// Full rate (25/25).
    pub const FULL: RateFraction = RateFraction { num: 1, den: 1 };

    /// Whether full-rate frame number `n` should be captured: the standard
    /// rational pacing floor((n+1)·p/q) > floor(n·p/q).
    pub fn captures_frame(&self, n: u64) -> bool {
        let p = self.num as u64;
        let q = self.den as u64;
        (n + 1) * p / q > n * p / q
    }

    /// Average frames per second.
    pub fn fps(&self) -> f64 {
        25.0 * self.num as f64 / self.den as f64
    }
}

/// Configuration of one capture stream.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// The rectangle to capture (may overlap other streams' rectangles).
    pub rect: Rect,
    /// Frame rate as a fraction of 25 Hz.
    pub rate: RateFraction,
    /// Maximum lines per video segment ("a frame can be broken up into a
    /// number of rectangular segments").
    pub lines_per_segment: u32,
    /// Per-line compression mode.
    pub mode: LineMode,
}

/// Splits one captured rectangle into compressed video segments.
///
/// Returns the segments in top-to-bottom order; each is self-describing
/// via its [`VideoHeader`] (placement, lines, compression arguments).
pub fn capture_rect(
    store: &FrameStore,
    config: &CaptureConfig,
    frame_number: u32,
    first_seq: SequenceNumber,
    timestamp: Timestamp,
) -> Vec<VideoSegment> {
    let rect = config.rect;
    let pixels = store.read_rect(rect);
    let lines_per_segment = config.lines_per_segment.max(1);
    let segment_count = rect.height.div_ceil(lines_per_segment);
    let mut out = Vec::with_capacity(segment_count as usize);
    let mut seq = first_seq;
    for s in 0..segment_count {
        let start_line = s * lines_per_segment;
        let lines = lines_per_segment.min(rect.height - start_line);
        // The segment's rows are contiguous in the captured rectangle, so
        // the whole slice compresses in one row-chunked pass.
        let off = start_line as usize * rect.width as usize;
        let len = lines as usize * rect.width as usize;
        let data = compress_slice(&pixels[off..off + len], rect.width as usize, config.mode);
        let header = VideoHeader {
            frame_number,
            segments_in_frame: segment_count,
            segment_number: s,
            x_offset: rect.x,
            y_offset: rect.y,
            pixel_format: PixelFormat::Mono8,
            compression: VideoCompression::Dpcm,
            compression_args: vec![config.mode.header() as u32],
            width: rect.width,
            start_line,
            lines,
            data_length: 0,
        };
        out.push(VideoSegment::new(seq, timestamp, header, data));
        seq = seq.next();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TestPattern;

    fn store_with_pattern() -> FrameStore {
        let mut fs = FrameStore::new(64, 48);
        let frame = TestPattern::new(64, 48).frame(3);
        fs.write_frame(&frame);
        fs
    }

    #[test]
    fn rate_two_fifths_gives_10fps() {
        let r = RateFraction::new(2, 5);
        assert_eq!(r.fps(), 10.0);
        let captured: Vec<u64> = (0..25).filter(|&n| r.captures_frame(n)).collect();
        assert_eq!(captured.len(), 10, "10 of 25 frames captured: {captured:?}");
    }

    #[test]
    fn full_rate_captures_everything() {
        let r = RateFraction::FULL;
        assert!((0..100).all(|n| r.captures_frame(n)));
    }

    #[test]
    fn zero_rate_numerator_captures_nothing() {
        let r = RateFraction::new(0, 5);
        assert!(!(0..100).any(|n| r.captures_frame(n)));
    }

    #[test]
    fn capture_splits_into_segments() {
        let fs = store_with_pattern();
        let cfg = CaptureConfig {
            rect: Rect::new(8, 8, 32, 20),
            rate: RateFraction::FULL,
            lines_per_segment: 8,
            mode: LineMode::Dpcm,
        };
        let segs = capture_rect(&fs, &cfg, 7, SequenceNumber(100), Timestamp(5));
        assert_eq!(segs.len(), 3); // 8 + 8 + 4 lines.
        assert_eq!(segs[0].video.segments_in_frame, 3);
        assert_eq!(segs[2].video.lines, 4);
        assert_eq!(segs[1].video.start_line, 8);
        assert_eq!(segs[0].common.sequence, SequenceNumber(100));
        assert_eq!(segs[2].common.sequence, SequenceNumber(102));
        for s in &segs {
            assert_eq!(s.video.frame_number, 7);
            assert_eq!(s.video.x_offset, 8);
            assert_eq!(s.video.width, 32);
        }
    }

    #[test]
    fn compressed_data_is_smaller_than_raw() {
        let fs = store_with_pattern();
        let cfg = CaptureConfig {
            rect: Rect::new(0, 0, 64, 48),
            rate: RateFraction::FULL,
            lines_per_segment: 48,
            mode: LineMode::Dpcm,
        };
        let segs = capture_rect(&fs, &cfg, 0, SequenceNumber(0), Timestamp(0));
        let raw = 64 * 48;
        let compressed: usize = segs.iter().map(|s| s.data.len()).sum();
        assert!(
            compressed < raw * 6 / 10,
            "compressed {compressed} vs raw {raw}"
        );
    }

    #[test]
    fn overlapping_rects_both_capture() {
        let fs = store_with_pattern();
        for rect in [Rect::new(0, 0, 32, 32), Rect::new(16, 16, 32, 32)] {
            let cfg = CaptureConfig {
                rect,
                rate: RateFraction::FULL,
                lines_per_segment: 32,
                mode: LineMode::Raw,
            };
            let segs = capture_rect(&fs, &cfg, 0, SequenceNumber(0), Timestamp(0));
            assert_eq!(segs.len(), 1);
            assert_eq!(segs[0].data.len(), 32 * (32 + 1)); // 1 header byte/line.
        }
    }
}
