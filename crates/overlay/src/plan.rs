//! The deterministic striped-tree planner.
//!
//! Given the session directory's membership (member 0 is the source) and
//! per-member uplink budgets, the planner computes `k` push trees rooted
//! at the source such that every relay-capable member is **interior in
//! exactly one tree** and a pure leaf in the other `k - 1` — the
//! SplitStream shape: a single crash interrupts only the one stripe its
//! victim forwards, 1/k of the stream for its subtree, while the other
//! k - 1 stripes keep flowing through trees where the victim forwarded
//! nothing.
//!
//! Construction is breadth-first under explicit uplink budgets: a member
//! may parent at most `min(degree, uplink_cps / stripe_cps)` children
//! (all of them in its interior tree, since it forwards nothing
//! elsewhere), so the plan never promises bandwidth admission would
//! refuse. Interiors are dealt round-robin from a seeded shuffle — the
//! only randomness, and it is replayed from the seed, so equal inputs
//! yield byte-identical plans ([`TreePlan::digest`] pins this).
//!
//! With every budget at `degree` or better the breadth-first fill packs
//! each tree as a `degree`-ary heap: interiors land within
//! `ceil(log_d N)` hops and leaves at most one hop deeper than the
//! shallowest spare slot, keeping the measured depth at or under
//! [`depth_bound`] — the Deterministic Near-Optimal P2P Streaming bound
//! the acceptance soak asserts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One session member as the planner sees it. Index 0 of the member
/// slice is the broadcast source; everyone else is a viewer that may be
/// asked to relay.
#[derive(Debug, Clone)]
pub struct Member {
    /// Display name, used in digests and topology port labels.
    pub name: String,
    /// Transmit budget in cells/second — the same unit the session
    /// admission controller charges (`Capabilities::link_cps`).
    pub uplink_cps: u64,
}

/// Planner tunables.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Number of striped trees `k`. Segment `seq` travels tree
    /// `seq % k`.
    pub trees: usize,
    /// Maximum children per node `d`.
    pub degree: usize,
    /// Seed for interior-assignment tie-breaking.
    pub seed: u64,
    /// Cell rate of one stripe copy — what forwarding one child costs a
    /// member's uplink.
    pub stripe_cps: u64,
}

/// Why a plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Fewer than two members, or zero trees/degree/stripe rate.
    Degenerate,
    /// Tree `tree` ran out of uplink capacity before every member was
    /// attached.
    Capacity {
        /// The tree that could not absorb all members.
        tree: usize,
    },
    /// The source's uplink cannot feed even one child per tree.
    SourceUplink,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Degenerate => {
                write!(f, "degenerate overlay (need 2+ members, k,d,rate > 0)")
            }
            PlanError::Capacity { tree } => {
                write!(
                    f,
                    "tree {tree} out of uplink capacity before all members attached"
                )
            }
            PlanError::SourceUplink => write!(f, "source uplink cannot feed one child per tree"),
        }
    }
}

/// The computed overlay: `k` trees over `n` members, every edge within
/// budget, every relay interior in exactly one tree.
#[derive(Debug, Clone)]
pub struct TreePlan {
    n: usize,
    k: usize,
    d: usize,
    seed: u64,
    /// `parent[tree][member]`; `None` for the source.
    parent: Vec<Vec<Option<usize>>>,
    /// `children[tree][member]`, in attachment order.
    children: Vec<Vec<Vec<usize>>>,
    /// `depth[tree][member]` in hops from the source.
    depth: Vec<Vec<u32>>,
    /// The tree each member is interior in; `None` for the source
    /// (interior everywhere) and for leaf-only members.
    interior_in: Vec<Option<usize>>,
    /// `backup[tree][member]`: the grandparent, the survivor an orphan
    /// is grafted onto when its parent dies. `None` when the parent is
    /// the source itself.
    backup: Vec<Vec<Option<usize>>>,
}

/// Smallest `L` with `d^L >= n` — the depth bound `ceil(log_d n)` the
/// acceptance soak measures against.
pub fn depth_bound(n: usize, d: usize) -> u32 {
    if n <= 1 || d <= 1 {
        return if n <= 1 { 0 } else { n as u32 - 1 };
    }
    let mut l = 0u32;
    let mut reach = 1usize;
    while reach < n {
        reach = reach.saturating_mul(d);
        l += 1;
    }
    l
}

/// One open attachment slot during the breadth-first fill.
struct Slot {
    node: usize,
    remaining: u64,
}

impl TreePlan {
    /// Computes the plan. `members[0]` is the source.
    ///
    /// # Errors
    ///
    /// [`PlanError::Degenerate`] on empty/zero inputs,
    /// [`PlanError::SourceUplink`] when the source cannot feed every
    /// tree, and [`PlanError::Capacity`] when some tree runs out of
    /// budgeted uplink slots before every member has a parent.
    pub fn compute(members: &[Member], cfg: &PlanConfig) -> Result<TreePlan, PlanError> {
        let n = members.len();
        let k = cfg.trees;
        let d = cfg.degree;
        if n < 2 || k == 0 || d == 0 || cfg.stripe_cps == 0 {
            return Err(PlanError::Degenerate);
        }
        // The source pushes every stripe: its per-tree child capacity
        // divides its uplink across the k stripes.
        let src_cap = (members[0].uplink_cps / (cfg.stripe_cps * k as u64)).min(d as u64);
        if src_cap == 0 {
            return Err(PlanError::SourceUplink);
        }
        let cap: Vec<u64> = members
            .iter()
            .map(|m| (m.uplink_cps / cfg.stripe_cps).min(d as u64))
            .collect();

        // Seeded shuffle of the relay-capable viewers, then a round-robin
        // deal: shuffled[j] is interior in tree j % k. The shuffle is the
        // tie-break — equal seeds replay the same deal byte-identically.
        let mut capable: Vec<usize> = (1..n).filter(|&i| cap[i] >= 1).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for j in (1..capable.len()).rev() {
            let swap = rng.gen_range(0..=j);
            capable.swap(j, swap);
        }
        let mut interior_in: Vec<Option<usize>> = vec![None; n];
        let mut interiors: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (j, &m) in capable.iter().enumerate() {
            let t = j % k;
            interior_in[m] = Some(t);
            interiors[t].push(m);
        }

        let mut parent = vec![vec![None; n]; k];
        let mut children = vec![vec![Vec::new(); n]; k];
        let mut depth = vec![vec![0u32; n]; k];
        for (t, tree_interiors) in interiors.iter().enumerate() {
            // Breadth-first fill: pop the earliest slot with spare
            // budget; interiors first (they open new slots), then every
            // remaining member as a leaf, so leaves land in the
            // shallowest spare capacity.
            let mut slots = std::collections::VecDeque::new();
            slots.push_back(Slot {
                node: 0,
                remaining: src_cap,
            });
            let mut attach = |v: usize,
                              opens: Option<u64>,
                              slots: &mut std::collections::VecDeque<Slot>|
             -> bool {
                loop {
                    let Some(front) = slots.front_mut() else {
                        return false;
                    };
                    if front.remaining == 0 {
                        slots.pop_front();
                        continue;
                    }
                    front.remaining -= 1;
                    let p = front.node;
                    parent[t][v] = Some(p);
                    depth[t][v] = depth[t][p] + 1;
                    children[t][p].push(v);
                    if let Some(capacity) = opens {
                        slots.push_back(Slot {
                            node: v,
                            remaining: capacity,
                        });
                    }
                    return true;
                }
            };
            for &u in tree_interiors {
                if !attach(u, Some(cap[u]), &mut slots) {
                    return Err(PlanError::Capacity { tree: t });
                }
            }
            for (v, interior) in interior_in.iter().enumerate().skip(1) {
                if *interior == Some(t) {
                    continue;
                }
                if !attach(v, None, &mut slots) {
                    return Err(PlanError::Capacity { tree: t });
                }
            }
        }

        let mut backup = vec![vec![None; n]; k];
        for (t, parents) in parent.iter().enumerate() {
            for v in 1..n {
                backup[t][v] = match parents[v] {
                    Some(p) if p != 0 => parents[p],
                    _ => None,
                };
            }
        }

        Ok(TreePlan {
            n,
            k,
            d,
            seed: cfg.seed,
            parent,
            children,
            depth,
            interior_in,
            backup,
        })
    }

    /// Member count, source included.
    pub fn members(&self) -> usize {
        self.n
    }

    /// Number of striped trees.
    pub fn trees(&self) -> usize {
        self.k
    }

    /// The tree carrying segment `seq`.
    pub fn tree_of(&self, seq: u32) -> usize {
        seq as usize % self.k
    }

    /// Parent of `member` in `tree` (`None` for the source).
    pub fn parent(&self, tree: usize, member: usize) -> Option<usize> {
        self.parent[tree][member]
    }

    /// Children of `member` in `tree`, in attachment order.
    pub fn children(&self, tree: usize, member: usize) -> &[usize] {
        &self.children[tree][member]
    }

    /// Hops from the source to `member` in `tree`.
    pub fn depth(&self, tree: usize, member: usize) -> u32 {
        self.depth[tree][member]
    }

    /// The tree `member` is interior in; `None` for the source and for
    /// leaf-only members.
    pub fn interior_tree(&self, member: usize) -> Option<usize> {
        self.interior_in[member]
    }

    /// The grandparent graft target for `member` in `tree` — the
    /// survivor that adopts it if its parent dies. `None` when the
    /// parent is the source.
    pub fn backup(&self, tree: usize, member: usize) -> Option<usize> {
        self.backup[tree][member]
    }

    /// Total children of `member` across every tree — the copy count its
    /// uplink admission must cover.
    pub fn fanout(&self, member: usize) -> usize {
        (0..self.k).map(|t| self.children[t][member].len()).sum()
    }

    /// Deepest member in `tree`.
    pub fn max_depth(&self, tree: usize) -> u32 {
        (0..self.n).map(|v| self.depth[tree][v]).max().unwrap_or(0)
    }

    /// Deepest member across all trees — the hop count the latency
    /// budget must cover.
    pub fn max_depth_overall(&self) -> u32 {
        (0..self.k).map(|t| self.max_depth(t)).max().unwrap_or(0)
    }

    /// `ceil(log_d n)` for this plan's shape.
    pub fn depth_bound(&self) -> u32 {
        depth_bound(self.n, self.d)
    }

    /// Canonical text rendering: seed, shape, then one line per tree
    /// with every member's parent. Byte-identical for equal inputs —
    /// the replay contract.
    pub fn digest(&self) -> String {
        let mut out = format!(
            "plan seed={} n={} k={} d={} depth={}/{}\n",
            self.seed,
            self.n,
            self.k,
            self.d,
            self.max_depth_overall(),
            self.depth_bound()
        );
        for t in 0..self.k {
            out.push_str(&format!("t{t}:"));
            for v in 1..self.n {
                let p = self.parent[t][v].expect("non-source member always has a parent");
                let mark = if self.interior_in[v] == Some(t) {
                    "*"
                } else {
                    ""
                };
                out.push_str(&format!(" {v}{mark}<{p}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize, uplink: u64) -> Vec<Member> {
        (0..n)
            .map(|i| Member {
                name: format!("m{i}"),
                uplink_cps: uplink,
            })
            .collect()
    }

    fn cfg(k: usize, d: usize, seed: u64) -> PlanConfig {
        PlanConfig {
            trees: k,
            degree: d,
            seed,
            stripe_cps: 1_000,
        }
    }

    #[test]
    fn every_relay_is_interior_in_exactly_one_tree() {
        let plan = TreePlan::compute(&members(64, 16_000), &cfg(4, 4, 7)).unwrap();
        for v in 1..64 {
            let t = plan.interior_tree(v).expect("all capable here");
            for other in 0..4 {
                if other != t {
                    assert!(
                        plan.children(other, v).is_empty(),
                        "member {v} has children outside its interior tree"
                    );
                }
            }
        }
        // Every member is attached in every tree.
        for t in 0..4 {
            for v in 1..64 {
                assert!(plan.parent(t, v).is_some());
            }
        }
    }

    #[test]
    fn depth_stays_within_the_log_bound() {
        for (n, k, d) in [(64, 4, 4), (256, 3, 4), (1024, 4, 8), (100, 2, 3)] {
            // The source affords d children in every tree; viewers afford d.
            let mut m = members(n, 1_000 * d as u64);
            m[0].uplink_cps = 1_000 * (k * d) as u64;
            let plan = TreePlan::compute(&m, &cfg(k, d, 11)).unwrap();
            assert!(
                plan.max_depth_overall() <= plan.depth_bound(),
                "n={n} k={k} d={d}: depth {} > bound {}",
                plan.max_depth_overall(),
                plan.depth_bound()
            );
        }
    }

    #[test]
    fn equal_seeds_replay_byte_identically_and_seeds_matter() {
        let m = members(40, 4_000);
        let a = TreePlan::compute(&m, &cfg(3, 4, 5)).unwrap().digest();
        let b = TreePlan::compute(&m, &cfg(3, 4, 5)).unwrap().digest();
        assert_eq!(a, b);
        let c = TreePlan::compute(&m, &cfg(3, 4, 6)).unwrap().digest();
        assert_ne!(a, c, "different seeds should break ties differently");
    }

    #[test]
    fn uplink_budget_caps_fanout() {
        // Viewers can afford 2 children each even though degree is 4.
        let plan = TreePlan::compute(&members(32, 2_000), &cfg(2, 4, 1)).unwrap();
        for v in 1..32 {
            assert!(plan.fanout(v) <= 2, "member {v} over its uplink budget");
        }
    }

    #[test]
    fn leaf_only_members_never_parent() {
        let mut m = members(24, 4_000);
        for weak in m.iter_mut().skip(1).step_by(3) {
            weak.uplink_cps = 0;
        }
        let plan = TreePlan::compute(&m, &cfg(2, 4, 3)).unwrap();
        for v in (1..24).step_by(3) {
            assert_eq!(plan.interior_tree(v), None);
            assert_eq!(plan.fanout(v), 0);
        }
    }

    #[test]
    fn backup_is_the_grandparent() {
        let plan = TreePlan::compute(&members(64, 8_000), &cfg(2, 4, 9)).unwrap();
        for t in 0..2 {
            for v in 1..64 {
                match plan.parent(t, v) {
                    Some(0) => assert_eq!(plan.backup(t, v), None),
                    Some(p) => assert_eq!(plan.backup(t, v), plan.parent(t, p)),
                    None => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn capacity_shortfall_is_reported() {
        // Source can feed k trees but viewers can't relay at all and the
        // source can't absorb everyone alone.
        let err = TreePlan::compute(&members(32, 0), &cfg(2, 4, 1));
        assert!(matches!(err, Err(PlanError::SourceUplink)));
        let mut m = members(32, 0);
        m[0].uplink_cps = 4_000; // source: 2 per tree
        let err = TreePlan::compute(&m, &cfg(2, 4, 1));
        assert_eq!(err.unwrap_err(), PlanError::Capacity { tree: 0 });
    }

    #[test]
    fn depth_bound_matches_log() {
        assert_eq!(depth_bound(1, 4), 0);
        assert_eq!(depth_bound(2, 4), 1);
        assert_eq!(depth_bound(64, 4), 3);
        assert_eq!(depth_bound(65, 4), 4);
        assert_eq!(depth_bound(1024, 8), 4);
    }
}
