//! The overlay broadcast topology: one source, thousands of viewers,
//! every viewer a potential relay.
//!
//! [`build_overlay_broadcast`] turns an [`OverlayConfig`] into a
//! sharded cluster wired per a [`TreePlan`]: `k` striped trees whose
//! edges are latency-stamped ports, one bandwidth-limited uplink per
//! member (every copy a relay forwards is serialized through it), a
//! heartbeat/graft control plane rooted at the source's hub, and the
//! session admission charge for every relay's fan-out taken before a
//! single port is created — the P1 stance: capacity is budgeted at
//! admission, not discovered by congestion.
//!
//! Degradation when an uplink is squeezed follows the paper's P3/P8
//! split:
//!
//! * **P3 (drop the oldest)** — the uplink queue is bounded; when the
//!   link can't drain it, the oldest queued copy is dropped first, so
//!   fresh slices keep their timeliness at the cost of old ones.
//! * **P8 (degrade locally)** — each relay runs an
//!   [`AdaptMachine`] over its own uplink windows (enqueues, drops,
//!   overdue queue waits). Sustained trouble steps a rate divisor up,
//!   and the relay forwards only every divisor-th stripe segment until
//!   the trouble clears — decided at the box that sees the backlog,
//!   with no controller round-trip.
//!
//! Repair is the hub's job: member heartbeats feed the
//! [`RepairEngine`]'s leases, a dead interior relay's orphans are
//! grafted onto their precomputed backup parents, and each backup
//! replays its clawback ring so the orphan's stripe refills inside the
//! playout budget. Everything is driven by virtual time and
//! deterministic channel selection, so a run's merged report is
//! byte-identical across replays and shard counts.

use std::cell::{Cell as StdCell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use pandora_atm::{burst_gather, PathControl, Vci};
use pandora_faults::{install, FaultPlan, FaultTargets, FaultTrace};
use pandora_recover::{
    AdaptAction, AdaptMachine, HealthConfig, LeaseConfig, MediaClass, WindowSample,
};
use pandora_session::{AdmissionController, Capabilities, Decision, StreamClass};
use pandora_shard::broadcast::shard_of;
use pandora_shard::{Cluster, Egress, Ingress, ShardEnv};
use pandora_sim::{
    alt_many, delay, link_controlled, now, unbounded, LinkConfig, Receiver, Sender, SimDuration,
    WireSize,
};
use pandora_slab::ByteSlab;

use crate::plan::{Member, PlanConfig, PlanError, TreePlan};
use crate::repair::RepairEngine;
use crate::stripe::{Accept, RepairRing, Slice, StripeReceiver, HOP_BUCKETS};

/// Bytes one ATM cell occupies on the wire; a member's uplink budget in
/// cells/second converts to link bits/second through this.
const CELL_WIRE_BITS: u64 = 53 * 8;

/// Segment header bytes carried ahead of the payload in each burst
/// (the big-endian sequence number).
const SEG_HEADER_BYTES: usize = 4;

/// VCI base for the striped trees: stripe `t` rides `OVERLAY_VCI_BASE + t`.
pub const OVERLAY_VCI_BASE: u32 = 0x40;

/// A scripted mid-broadcast crash of one member.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// The member that dies (must not be 0 — the source hosts the hub).
    pub member: usize,
    /// Virtual time of the crash, from run start.
    pub at: SimDuration,
}

/// A scripted squeeze of one member's uplink, driven through
/// `pandora-faults` ([`FaultPlan::uplink_cap`]).
#[derive(Debug, Clone, Copy)]
pub struct UplinkCapPlan {
    /// The member whose uplink is capped.
    pub member: usize,
    /// When the cap lands.
    pub at: SimDuration,
    /// How long it holds before auto-reverting.
    pub hold: SimDuration,
    /// Remaining bandwidth in permille of nominal.
    pub permille: u64,
}

/// Shape and tunables of an overlay broadcast run.
#[derive(Debug, Clone, Copy)]
pub struct OverlayConfig {
    /// Viewers (members beyond the source).
    pub viewers: usize,
    /// Striped trees `k`.
    pub trees: usize,
    /// Maximum children per node `d`.
    pub degree: usize,
    /// Planner tie-break seed.
    pub seed: u64,
    /// Segments the source emits.
    pub segments: u32,
    /// Source emission cadence (one segment, striped round-robin).
    pub segment_interval: SimDuration,
    /// Payload bytes per segment (gathered once into cells at the
    /// source).
    pub payload_bytes: usize,
    /// Propagation latency of every tree edge — also the cross-shard
    /// lookahead window, so it must be positive.
    pub hop_latency: SimDuration,
    /// Per-relay processing cost before forwarding a slice.
    pub relay_cost: SimDuration,
    /// Propagation latency of the control plane (heartbeats and
    /// grafts).
    pub ctl_latency: SimDuration,
    /// Member heartbeat cadence; also the hub sweep cadence and the P8
    /// observation window.
    pub heartbeat: SimDuration,
    /// Lease walk for crash detection at the hub.
    pub lease: LeaseConfig,
    /// Clawback ring capacity per relay (slices of its interior
    /// stripe).
    pub ring: usize,
    /// Playout delay: slices older than this on arrival count late.
    pub playout: SimDuration,
    /// Per-viewer uplink budget in cells/second (drives both the
    /// planner's fan-out caps and the serializing link rate). For
    /// glitch-free repair this should afford `2 × degree` stripe
    /// copies per stripe interval: a backup parent that adopts its
    /// grandchildren can see its fan-out double, and without that
    /// headroom the graft replay backlogs its uplink until P8 sheds
    /// segments for its whole subtree.
    pub uplink_cps: u64,
    /// The source's uplink budget in cells/second.
    pub source_uplink_cps: u64,
    /// Uplink queue depth before P3 drop-oldest engages.
    pub uplink_queue: usize,
    /// Optional scripted crash.
    pub crash: Option<CrashPlan>,
    /// Optional scripted uplink squeeze.
    pub uplink_cap: Option<UplinkCapPlan>,
}

impl Default for OverlayConfig {
    fn default() -> OverlayConfig {
        OverlayConfig {
            viewers: 63,
            trees: 4,
            degree: 4,
            seed: 42,
            segments: 120,
            segment_interval: SimDuration::from_millis(4),
            payload_bytes: 1_408,
            hop_latency: SimDuration::from_micros(500),
            relay_cost: SimDuration::from_micros(50),
            ctl_latency: SimDuration::from_micros(200),
            heartbeat: SimDuration::from_millis(10),
            lease: LeaseConfig {
                interval: SimDuration::from_millis(10),
                suspect_after: 2,
                dead_after: 3,
                backoff_cap: SimDuration::from_millis(80),
            },
            ring: 32,
            playout: SimDuration::from_millis(80),
            uplink_cps: 30_000,
            source_uplink_cps: 60_000,
            uplink_queue: 64,
            crash: None,
            uplink_cap: None,
        }
    }
}

/// Why a topology could not be built.
#[derive(Debug)]
pub enum BuildError {
    /// The planner refused (capacity, degenerate shape).
    Plan(PlanError),
    /// The admission controller refused a relay's fan-out charge — the
    /// plan promised copies the member's uplink budget cannot carry.
    Admission {
        /// The refused member.
        member: usize,
        /// The admission decision that refused it.
        decision: Decision,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Plan(e) => write!(f, "plan: {e}"),
            BuildError::Admission { member, decision } => {
                write!(
                    f,
                    "relay admission refused for member {member}: {decision:?}"
                )
            }
        }
    }
}

/// A built overlay, ready to run.
pub struct OverlayBuild {
    /// The sharded cluster; run it to a deadline and parse the merged
    /// report with [`OverlaySummary::parse`].
    pub cluster: Cluster,
    /// The tree plan the topology was wired from.
    pub plan: TreePlan,
    /// Total transmit cells/second the relay admission charge took
    /// across all members.
    pub relay_tx_cps: u64,
}

/// Messages on the overlay's data and control ports.
#[derive(Debug, Clone)]
pub enum Msg {
    /// A striped segment travelling down its tree.
    Slice(Slice),
    /// Hub order to a backup parent: adopt `orphan` on `tree` and
    /// replay the clawback ring from `resume_from`.
    Graft {
        /// Stripe tree being repaired.
        tree: usize,
        /// The member to adopt.
        orphan: usize,
        /// Global sequence replay resumes from.
        resume_from: u32,
    },
}

/// A member's heartbeat to the hub: liveness plus the per-tree resume
/// points a graft would need.
#[derive(Debug, Clone)]
pub struct Hello {
    /// Reporting member.
    pub node: usize,
    /// Next expected global sequence per tree.
    pub next: Vec<u32>,
}

/// One copy queued on a member's uplink, addressed to a child.
#[derive(Debug, Clone)]
struct UpItem {
    tree: usize,
    dest: usize,
    queued_at: u64,
    slice: Slice,
}

impl WireSize for UpItem {
    fn wire_bytes(&self) -> usize {
        self.slice.wire_bytes()
    }
}

/// Cells one segment gathers into (header plus payload, 48-byte AAL
/// payload per cell).
pub fn cells_per_segment(payload_bytes: usize) -> u64 {
    ((SEG_HEADER_BYTES + payload_bytes) as u64).div_ceil(48)
}

/// Cell rate one stripe copy costs a forwarding uplink: each tree
/// carries every k-th segment.
pub fn stripe_cps(cfg: &OverlayConfig) -> u64 {
    let tree_interval_ns = cfg.segment_interval.as_nanos().max(1) * cfg.trees.max(1) as u64;
    (cells_per_segment(cfg.payload_bytes) * 1_000_000_000).div_ceil(tree_interval_ns)
}

/// The stream class a stripe copy is admitted as. The rate rounds
/// *down* so admission's demand never exceeds the planner's budget
/// arithmetic — the plan and the charge agree by construction.
pub fn stripe_class(cfg: &OverlayConfig) -> StreamClass {
    let rate = (stripe_cps(cfg) * 1_000 / 2_600).max(1);
    StreamClass::Video {
        rate_permille: rate.min(u64::from(u32::MAX)) as u32,
    }
}

/// The membership the planner sees: member 0 is the source.
pub fn members_for(cfg: &OverlayConfig) -> Vec<Member> {
    let mut members = Vec::with_capacity(cfg.viewers + 1);
    members.push(Member {
        name: "src".to_string(),
        uplink_cps: cfg.source_uplink_cps,
    });
    for v in 1..=cfg.viewers {
        members.push(Member {
            name: format!("v{v}"),
            uplink_cps: cfg.uplink_cps,
        });
    }
    members
}

/// The deterministic tree plan for `cfg`.
///
/// # Errors
///
/// Propagates the planner's [`PlanError`].
pub fn plan_for(cfg: &OverlayConfig) -> Result<TreePlan, PlanError> {
    TreePlan::compute(
        &members_for(cfg),
        &PlanConfig {
            trees: cfg.trees,
            degree: cfg.degree,
            seed: cfg.seed,
            stripe_cps: stripe_cps(cfg),
        },
    )
}

/// Charges every forwarding member's fan-out against a fresh admission
/// controller over its uplink capabilities. Returns the total transmit
/// cells/second charged.
fn charge_relay_admission(plan: &TreePlan, cfg: &OverlayConfig) -> Result<u64, BuildError> {
    let class = stripe_class(cfg);
    let mut total = 0u64;
    for member in 0..plan.members() {
        let copies = plan.fanout(member);
        if copies == 0 {
            continue;
        }
        let link_cps = if member == 0 {
            cfg.source_uplink_cps
        } else {
            cfg.uplink_cps
        };
        let mut adm = AdmissionController::new(Capabilities {
            audio_sinks_max: 0,
            video_sinks_max: cfg.trees as u32,
            link_cps,
        });
        let copies = copies.min(u32::MAX as usize) as u32;
        match adm.admit_relay(class, copies) {
            Decision::Admit => total += adm.tx_cps(),
            decision => return Err(BuildError::Admission { member, decision }),
        }
    }
    Ok(total)
}

/// The P3 uplink: a bounded queue draining into a serializing link.
/// Overflow drops the *oldest* copy; the windows feed the P8 machine.
struct Uplink {
    q: RefCell<VecDeque<UpItem>>,
    cap: usize,
    late_bound_nanos: u64,
    kick: Sender<()>,
    enqueued: StdCell<u64>,
    drops: StdCell<u64>,
    window_enq: StdCell<u64>,
    window_drops: StdCell<u64>,
    window_late: StdCell<u64>,
}

impl Uplink {
    fn new(cap: usize, late_bound_nanos: u64, kick: Sender<()>) -> Rc<Uplink> {
        Rc::new(Uplink {
            q: RefCell::new(VecDeque::with_capacity(cap)),
            cap: cap.max(1),
            late_bound_nanos,
            kick,
            enqueued: StdCell::new(0),
            drops: StdCell::new(0),
            window_enq: StdCell::new(0),
            window_drops: StdCell::new(0),
            window_late: StdCell::new(0),
        })
    }

    fn push(&self, tree: usize, dest: usize, slice: Slice) {
        let mut q = self.q.borrow_mut();
        if q.len() >= self.cap {
            q.pop_front();
            self.drops.set(self.drops.get() + 1);
            self.window_drops.set(self.window_drops.get() + 1);
        }
        q.push_back(UpItem {
            tree,
            dest,
            queued_at: now().as_nanos(),
            slice,
        });
        drop(q);
        self.enqueued.set(self.enqueued.get() + 1);
        self.window_enq.set(self.window_enq.get() + 1);
        let _ = self.kick.try_send(());
    }

    fn pop(&self) -> Option<UpItem> {
        let item = self.q.borrow_mut().pop_front();
        if let Some(it) = &item {
            if now().as_nanos().saturating_sub(it.queued_at) > self.late_bound_nanos {
                self.window_late.set(self.window_late.get() + 1);
            }
        }
        item
    }

    /// Closes one P8 observation window: enqueues as received, P3 drops
    /// as gaps, overdue queue waits as late.
    fn take_window(&self) -> WindowSample {
        let sample = WindowSample {
            received: self.window_enq.get(),
            gaps: self.window_drops.get(),
            late: self.window_late.get(),
        };
        self.window_enq.set(0);
        self.window_drops.set(0);
        self.window_late.set(0);
        sample
    }
}

/// Spawns the uplink machinery shared by relays and the source: the
/// bounded queue, the pump that serializes copies through a
/// bandwidth-limited link, and the router that hands each arriving copy
/// to the egress of its (tree, child) edge. Returns the queue handle
/// and the link control (for fault registration).
fn spawn_uplink(
    env: &ShardEnv,
    member: usize,
    uplink_cps: u64,
    cfg: &OverlayConfig,
    child_txs: BTreeMap<(usize, usize), Sender<Msg>>,
    dead: Rc<StdCell<bool>>,
) -> (Rc<Uplink>, pandora_sim::LinkControl) {
    let (kick_tx, kick_rx) = unbounded::<()>();
    // A copy that waits longer than one stripe interval (its own
    // forwarding cadence) marks the uplink persistently backlogged;
    // shorter waits — a graft replay burst, say — are transient.
    let late_bound = cfg.segment_interval.as_nanos() * cfg.trees.max(1) as u64;
    let uplink = Uplink::new(cfg.uplink_queue, late_bound, kick_tx);
    let (link_tx, link_rx, link_ctl) = link_controlled::<UpItem>(
        env.spawner(),
        LinkConfig::new("ovl-up", uplink_cps.max(1) * CELL_WIRE_BITS),
    );
    let pump_up = uplink.clone();
    let pump_dead = dead.clone();
    env.spawner().spawn(&format!("ovl:up{member}"), async move {
        while kick_rx.recv().await.is_ok() {
            while let Some(item) = pump_up.pop() {
                if pump_dead.get() {
                    continue;
                }
                if link_tx.send(item).await.is_err() {
                    return;
                }
            }
        }
    });
    let out_dead = dead;
    env.spawner()
        .spawn(&format!("ovl:out{member}"), async move {
            while let Ok(item) = link_rx.recv().await {
                if out_dead.get() {
                    continue;
                }
                if let Some(tx) = child_txs.get(&(item.tree, item.dest)) {
                    let _ = tx.try_send(Msg::Slice(item.slice));
                }
            }
        });
    (uplink, link_ctl)
}

/// Installs the scripted uplink cap against this member's link, if the
/// config aims one here. Returns the trace for the finish report.
fn install_uplink_cap(
    env: &ShardEnv,
    member: usize,
    cfg: &OverlayConfig,
    link_ctl: &pandora_sim::LinkControl,
) -> Option<FaultTrace> {
    let cap = cfg.uplink_cap?;
    if cap.member != member {
        return None;
    }
    let mut targets = FaultTargets::new();
    targets.register_path("relay.up", PathControl::from_links(vec![link_ctl.clone()]));
    let plan =
        FaultPlan::scripted(Vec::new()).uplink_cap("relay.up", cap.at, cap.hold, cap.permille);
    Some(install(env.spawner(), &plan, &targets))
}

/// Everything one viewer's setup closure needs, shipped to its shard.
struct NodeSeat {
    member: usize,
    interior: Option<usize>,
    children: Vec<Vec<usize>>,
    ins: Vec<Ingress<Msg>>,
    outs: Vec<(usize, usize, Egress<Msg>)>,
    report: Egress<Hello>,
    cfg: OverlayConfig,
}

fn node_setup(env: &mut ShardEnv, seat: NodeSeat) {
    let NodeSeat {
        member,
        interior,
        children,
        ins,
        outs,
        report,
        cfg,
    } = seat;
    let k = cfg.trees;

    let mut child_txs: BTreeMap<(usize, usize), Sender<Msg>> = BTreeMap::new();
    for (tree, dest, egress) in outs {
        let (tx, rx) = unbounded::<Msg>();
        env.bind_egress(egress, rx);
        child_txs.insert((tree, dest), tx);
    }
    let rxs: Vec<Receiver<Msg>> = ins.into_iter().map(|i| env.bind_ingress(i)).collect();
    let (rpt_tx, rpt_rx) = unbounded::<Hello>();
    env.bind_egress(report, rpt_rx);

    let dead = Rc::new(StdCell::new(false));
    let receiver = Rc::new(RefCell::new(StripeReceiver::new(k, cfg.playout.as_nanos())));
    let ring = Rc::new(RefCell::new(RepairRing::new(cfg.ring)));
    let active = Rc::new(RefCell::new(children));
    let divisor = Rc::new(StdCell::new(1u32));
    let max_divisor = Rc::new(StdCell::new(1u32));
    let p8_skips = Rc::new(StdCell::new(0u64));
    let grafts_in = Rc::new(StdCell::new(0u64));

    let (uplink, link_ctl) =
        spawn_uplink(env, member, cfg.uplink_cps, &cfg, child_txs, dead.clone());
    let fault_trace = install_uplink_cap(env, member, &cfg, &link_ctl);

    if let Some(crash) = cfg.crash {
        if crash.member == member {
            let crash_dead = dead.clone();
            env.spawner()
                .spawn(&format!("ovl:crash{member}"), async move {
                    delay(crash.at).await;
                    crash_dead.set(true);
                });
        }
    }

    // The relay proper: deliver, dedupe, and forward its interior
    // stripe (clawback ring, P8 divisor, P3 uplink queue).
    let main_dead = dead.clone();
    let main_rx = receiver.clone();
    let main_ring = ring.clone();
    let main_active = active.clone();
    let main_div = divisor.clone();
    let main_p8 = p8_skips.clone();
    let main_grafts = grafts_in.clone();
    let main_up = uplink.clone();
    env.spawner()
        .spawn(&format!("ovl:node{member}"), async move {
            let refs: Vec<&Receiver<Msg>> = rxs.iter().collect();
            while let Some(Ok((_, msg))) = alt_many(&refs).await {
                if main_dead.get() {
                    continue;
                }
                match msg {
                    Msg::Slice(slice) => {
                        let arrived = now().as_nanos();
                        if let Accept::Duplicate = main_rx.borrow_mut().accept(&slice, arrived) {
                            continue;
                        }
                        let tree = slice.tree as usize;
                        if interior != Some(tree) {
                            continue;
                        }
                        let div = main_div.get();
                        if div > 1 && !(slice.seq / k.max(1) as u32).is_multiple_of(div) {
                            main_p8.set(main_p8.get() + 1);
                            continue;
                        }
                        main_ring.borrow_mut().push(slice.clone());
                        let kids: Vec<usize> = main_active.borrow()[tree].clone();
                        if kids.is_empty() {
                            continue;
                        }
                        delay(cfg.relay_cost).await;
                        let sent = now().as_nanos();
                        for dest in kids {
                            main_up.push(tree, dest, slice.retimed(sent));
                        }
                    }
                    Msg::Graft {
                        tree,
                        orphan,
                        resume_from,
                    } => {
                        main_grafts.set(main_grafts.get() + 1);
                        {
                            let mut a = main_active.borrow_mut();
                            if !a[tree].contains(&orphan) {
                                a[tree].push(orphan);
                            }
                        }
                        let replay = main_ring.borrow().replay_from(resume_from);
                        let sent = now().as_nanos();
                        for s in replay {
                            main_up.push(tree, orphan, s.retimed(sent));
                        }
                    }
                }
            }
        });

    // Heartbeat: liveness + resume points to the hub, and the local P8
    // window observation.
    let hb_dead = dead.clone();
    let hb_rx = receiver.clone();
    let hb_up = uplink.clone();
    let hb_div = divisor.clone();
    let hb_max = max_divisor.clone();
    env.spawner().spawn(&format!("ovl:hb{member}"), async move {
        let mut adapt = AdaptMachine::new(
            MediaClass::Video,
            HealthConfig {
                window: cfg.heartbeat,
                ..HealthConfig::default()
            },
        );
        loop {
            delay(cfg.heartbeat).await;
            if hb_dead.get() {
                break;
            }
            let _ = rpt_tx.try_send(Hello {
                node: member,
                next: hb_rx.borrow().next_expected().to_vec(),
            });
            let sample = hb_up.take_window();
            if let Some(AdaptAction::SetDivisor(d)) = adapt.observe(&sample) {
                hb_div.set(d);
                hb_max.set(hb_max.get().max(d));
            }
        }
    });

    env.on_finish(move || {
        let r = receiver.borrow();
        let buckets = r
            .hop_buckets()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let mut lines = vec![format!(
            "node{member:04} recv={} dup={} gap={} lost={} late={} fwd={} p3={} p8={} \
             graftin={} deg={} gapmax_us={} sgapmax_us={} hopmax_us={} crashed={} hopbkt={}",
            r.delivered(),
            r.dupes(),
            r.gap_skips(),
            r.lost(cfg.segments),
            r.late(),
            uplink.enqueued.get(),
            uplink.drops.get(),
            p8_skips.get(),
            grafts_in.get(),
            max_divisor.get(),
            r.gap_max_nanos() / 1_000,
            r.stripe_gap_max_nanos() / 1_000,
            r.hop_max_nanos() / 1_000,
            u64::from(dead.get()),
            buckets,
        )];
        if let Some(trace) = &fault_trace {
            for line in trace.to_text().lines() {
                lines.push(format!("node{member:04} fault {line}"));
            }
        }
        lines
    });
}

/// Member 0's setup: the broadcast source and the repair hub.
struct HubSeat {
    src_children: Vec<Vec<usize>>,
    outs: Vec<(usize, usize, Egress<Msg>)>,
    ctls: Vec<(usize, Egress<Msg>)>,
    reports: Vec<Ingress<Hello>>,
    plan: TreePlan,
    cfg: OverlayConfig,
}

fn hub_setup(env: &mut ShardEnv, seat: HubSeat) {
    let HubSeat {
        src_children,
        outs,
        ctls,
        reports,
        plan,
        cfg,
    } = seat;
    let k = cfg.trees;

    let mut child_txs: BTreeMap<(usize, usize), Sender<Msg>> = BTreeMap::new();
    for (tree, dest, egress) in outs {
        let (tx, rx) = unbounded::<Msg>();
        env.bind_egress(egress, rx);
        child_txs.insert((tree, dest), tx);
    }
    let mut ctl_txs: BTreeMap<usize, Sender<Msg>> = BTreeMap::new();
    for (v, egress) in ctls {
        let (tx, rx) = unbounded::<Msg>();
        env.bind_egress(egress, rx);
        ctl_txs.insert(v, tx);
    }
    let hello_rxs: Vec<Receiver<Hello>> =
        reports.into_iter().map(|i| env.bind_ingress(i)).collect();

    let dead = Rc::new(StdCell::new(false)); // the source never dies
    let (uplink, _link_ctl) =
        spawn_uplink(env, 0, cfg.source_uplink_cps, &cfg, child_txs, dead.clone());

    let rings = Rc::new(RefCell::new(
        (0..k)
            .map(|_| RepairRing::new(cfg.ring))
            .collect::<Vec<_>>(),
    ));
    let active = Rc::new(RefCell::new(src_children));
    let engine = Rc::new(RefCell::new(RepairEngine::new(plan, cfg.lease)));
    let src_grafts = Rc::new(StdCell::new(0u64));
    let slab_bytes = cfg.payload_bytes.max(64);
    let slab = ByteSlab::new(4, slab_bytes);

    // The source: one slab write and one gather per segment, then Arc
    // clones all the way down the trees.
    let src_up = uplink.clone();
    let src_rings = rings.clone();
    let src_active = active.clone();
    let src_slab = slab.clone();
    env.spawner().spawn("ovl:src", async move {
        let cells_per = cells_per_segment(cfg.payload_bytes) as u32;
        for seq in 0..cfg.segments {
            let tree = seq as usize % k.max(1);
            let Ok(mut writer) = src_slab.try_writer() else {
                delay(cfg.segment_interval).await;
                continue;
            };
            let fill = [(seq % 251) as u8; 64];
            let mut left = cfg.payload_bytes;
            while left > 0 {
                let take = left.min(fill.len());
                if writer.append(&fill[..take]).is_err() {
                    break;
                }
                left -= take;
            }
            let seg = writer.freeze();
            let burst = seg.copy_out_with(|payload| {
                burst_gather(
                    Vci(OVERLAY_VCI_BASE + tree as u32),
                    &seq.to_be_bytes(),
                    payload,
                    seq.wrapping_mul(cells_per),
                )
            });
            let stamp = now().as_nanos();
            let slice = Slice {
                tree: tree as u8,
                seq,
                stamp,
                sent: stamp,
                burst: Arc::new(burst),
            };
            src_rings.borrow_mut()[tree].push(slice.clone());
            let kids: Vec<usize> = src_active.borrow()[tree].clone();
            for dest in kids {
                src_up.push(tree, dest, slice.retimed(stamp));
            }
            delay(cfg.segment_interval).await;
        }
    });

    // The hub's ears: every heartbeat renews a lease and refreshes the
    // member's graft resume points.
    let ear_engine = engine.clone();
    env.spawner().spawn("ovl:hub:hello", async move {
        let refs: Vec<&Receiver<Hello>> = hello_rxs.iter().collect();
        while let Some(Ok((_, hello))) = alt_many(&refs).await {
            ear_engine.borrow_mut().hello(hello.node, &hello.next);
        }
    });

    // The hub's sweep: silent members walk their leases toward Dead;
    // each death's orphans are grafted — remotely via the control plane,
    // or locally when the source itself is the backup.
    let sweep_engine = engine.clone();
    let sweep_rings = rings.clone();
    let sweep_active = active.clone();
    let sweep_up = uplink.clone();
    let sweep_grafts = src_grafts.clone();
    env.spawner().spawn("ovl:hub:sweep", async move {
        // First sweep half a beat after the first hellos are due, so a
        // healthy member is never missed on startup jitter.
        delay(SimDuration::from_nanos(cfg.heartbeat.as_nanos() * 3 / 2)).await;
        loop {
            let grafts = sweep_engine.borrow_mut().sweep(now().as_nanos());
            for g in grafts {
                if g.backup == 0 {
                    sweep_grafts.set(sweep_grafts.get() + 1);
                    {
                        let mut a = sweep_active.borrow_mut();
                        if !a[g.tree].contains(&g.orphan) {
                            a[g.tree].push(g.orphan);
                        }
                    }
                    let replay = sweep_rings.borrow()[g.tree].replay_from(g.resume_from);
                    let sent = now().as_nanos();
                    for s in replay {
                        sweep_up.push(g.tree, g.orphan, s.retimed(sent));
                    }
                } else if let Some(tx) = ctl_txs.get(&g.backup) {
                    let _ = tx.try_send(Msg::Graft {
                        tree: g.tree,
                        orphan: g.orphan,
                        resume_from: g.resume_from,
                    });
                }
            }
            delay(cfg.heartbeat).await;
        }
    });

    env.on_finish(move || {
        let mut lines = vec![format!(
            "node0000 src fwd={} p3={} slabin={} slabout={} srcgraft={}",
            uplink.enqueued.get(),
            uplink.drops.get(),
            slab.copied_in_bytes(),
            slab.copied_out_bytes(),
            src_grafts.get(),
        )];
        let e = engine.borrow();
        lines.push(format!(
            "hub deaths={} grafts={} unrepairable={}",
            e.deaths(),
            e.grafts(),
            e.unrepairable(),
        ));
        for line in e.log() {
            lines.push(format!("hub {line}"));
        }
        lines
    });
}

/// Builds the overlay broadcast over `shards` shards.
///
/// Ports are created in one canonical order (primary edges, backup
/// edges, control, reports — each in member-then-tree order) and setups
/// are registered in member order, so the merged report is
/// byte-identical at every shard count.
///
/// # Errors
///
/// [`BuildError::Plan`] when the planner refuses the shape,
/// [`BuildError::Admission`] when a member's relay charge does not fit
/// its uplink budget.
///
/// # Panics
///
/// Panics if `hop_latency` or `ctl_latency` is zero with more than one
/// shard (port latency is the cross-shard lookahead window).
pub fn build_overlay_broadcast(
    cfg: &OverlayConfig,
    shards: usize,
) -> Result<OverlayBuild, BuildError> {
    let plan = plan_for(cfg).map_err(BuildError::Plan)?;
    let relay_tx_cps = charge_relay_admission(&plan, cfg)?;
    let n = plan.members();
    let k = plan.trees();
    let mut cluster = Cluster::new(shards);
    let place = |member: usize| shard_of(member, n, shards);

    let mut ins: Vec<Vec<Ingress<Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut outs: Vec<Vec<(usize, usize, Egress<Msg>)>> = (0..n).map(|_| Vec::new()).collect();
    // Primary tree edges.
    for (v, ins_v) in ins.iter_mut().enumerate().skip(1) {
        for t in 0..k {
            let Some(p) = plan.parent(t, v) else { continue };
            let (eg, ing) =
                cluster.port::<Msg>(place(p), place(v), cfg.hop_latency, &format!("e{t}.{v}"));
            outs[p].push((t, v, eg));
            ins_v.push(ing);
        }
    }
    // Backup (graft) edges: grandparent → grandchild, pre-wired so a
    // repair needs no new ports mid-run.
    for (v, ins_v) in ins.iter_mut().enumerate().skip(1) {
        for t in 0..k {
            let Some(g) = plan.backup(t, v) else { continue };
            let (eg, ing) =
                cluster.port::<Msg>(place(g), place(v), cfg.hop_latency, &format!("b{t}.{v}"));
            outs[g].push((t, v, eg));
            ins_v.push(ing);
        }
    }
    // Control plane: hub → member grafts, member → hub heartbeats.
    let mut ctls: Vec<(usize, Egress<Msg>)> = Vec::with_capacity(n.saturating_sub(1));
    for (v, ins_v) in ins.iter_mut().enumerate().skip(1) {
        let (eg, ing) = cluster.port::<Msg>(place(0), place(v), cfg.ctl_latency, &format!("c{v}"));
        ctls.push((v, eg));
        ins_v.push(ing);
    }
    let mut reports: Vec<Ingress<Hello>> = Vec::with_capacity(n.saturating_sub(1));
    let mut report_eg: Vec<Egress<Hello>> = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let (eg, ing) =
            cluster.port::<Hello>(place(v), place(0), cfg.ctl_latency, &format!("r{v}"));
        report_eg.push(eg);
        reports.push(ing);
    }

    // Setups in member order: the merge key order of the finish report.
    let mut outs_iter = outs.into_iter();
    let mut ins_iter = ins.into_iter();
    let hub = HubSeat {
        src_children: (0..k).map(|t| plan.children(t, 0).to_vec()).collect(),
        outs: outs_iter.next().unwrap_or_default(),
        ctls,
        reports,
        plan: plan.clone(),
        cfg: *cfg,
    };
    let _ = ins_iter.next();
    cluster.setup(0, move |env| hub_setup(env, hub));
    let mut report_iter = report_eg.into_iter();
    for v in 1..n {
        let (Some(v_ins), Some(v_outs), Some(report)) =
            (ins_iter.next(), outs_iter.next(), report_iter.next())
        else {
            break;
        };
        let seat = NodeSeat {
            member: v,
            interior: plan.interior_tree(v),
            children: (0..k).map(|t| plan.children(t, v).to_vec()).collect(),
            ins: v_ins,
            outs: v_outs,
            report,
            cfg: *cfg,
        };
        cluster.setup(place(v), move |env| node_setup(env, seat));
    }

    Ok(OverlayBuild {
        cluster,
        plan,
        relay_tx_cps,
    })
}

/// Aggregate statistics parsed back out of a run's merged report lines.
///
/// `*_alive` fields aggregate only members that did not crash — the
/// "surviving viewers" the acceptance criteria speak about. Hop
/// histogram buckets are merged across alive members.
#[derive(Debug, Clone, Default)]
pub struct OverlaySummary {
    /// Viewer report lines seen.
    pub viewers: u64,
    /// Members flagged crashed.
    pub crashed: u64,
    /// Slices delivered in order across all viewers.
    pub delivered: u64,
    /// Replay overlaps deduplicated.
    pub dupes: u64,
    /// Sequences skipped for good (sum).
    pub gap_skips: u64,
    /// Lost slices across all viewers (crashed included).
    pub lost_total: u64,
    /// Late deliveries across all viewers (crashed included).
    pub late_total: u64,
    /// Lost slices summed over surviving viewers only.
    pub lost_alive: u64,
    /// Late deliveries summed over surviving viewers only.
    pub late_alive: u64,
    /// Copies relays put on their uplinks.
    pub forwarded: u64,
    /// P3 drop-oldest discards.
    pub p3_drops: u64,
    /// P8 divisor skips.
    pub p8_skips: u64,
    /// Grafts applied (backup side), source-local grafts included.
    pub grafts_in: u64,
    /// Highest P8 divisor any relay reached.
    pub max_divisor: u64,
    /// Worst any-stripe delivery silence on a surviving viewer, µs.
    pub gap_max_us_alive: u64,
    /// Worst single-stripe silence on a surviving viewer, µs — the
    /// repair gap.
    pub stripe_gap_max_us_alive: u64,
    /// Worst single-hop latency on a surviving viewer, µs.
    pub hop_max_us: u64,
    /// Merged per-hop latency histogram of surviving viewers (bucket
    /// `i` counts hops in `[2^i, 2^(i+1))` µs).
    pub hop_buckets: [u64; HOP_BUCKETS],
    /// Copies the source put on its uplink.
    pub src_forwarded: u64,
    /// Bytes the source gathered out of the slab (the one copy).
    pub slab_copied_out: u64,
    /// Deaths the hub observed.
    pub hub_deaths: u64,
    /// Grafts the hub issued.
    pub hub_grafts: u64,
    /// Orphans with no backup parent.
    pub hub_unrepairable: u64,
}

fn field(token: &str, key: &str) -> Option<u64> {
    let rest = token.strip_prefix(key)?;
    rest.parse().ok()
}

impl OverlaySummary {
    /// Parses the merged finish-report lines of one run.
    pub fn parse(lines: &[String]) -> OverlaySummary {
        let mut s = OverlaySummary::default();
        for line in lines {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                [node, "src", rest @ ..] if node.starts_with("node") => {
                    for t in rest {
                        if let Some(v) = field(t, "fwd=") {
                            s.src_forwarded = v;
                        } else if let Some(v) = field(t, "slabout=") {
                            s.slab_copied_out = v;
                        } else if let Some(v) = field(t, "srcgraft=") {
                            s.grafts_in += v;
                        }
                    }
                }
                ["hub", rest @ ..] => {
                    for t in rest {
                        if let Some(v) = field(t, "deaths=") {
                            s.hub_deaths = v;
                        } else if let Some(v) = field(t, "grafts=") {
                            s.hub_grafts = v;
                        } else if let Some(v) = field(t, "unrepairable=") {
                            s.hub_unrepairable = v;
                        }
                    }
                }
                [node, rest @ ..] if node.starts_with("node") && rest.first() != Some(&"fault") => {
                    s.viewers += 1;
                    let crashed = rest.iter().any(|t| field(t, "crashed=") == Some(1));
                    if crashed {
                        s.crashed += 1;
                    }
                    for t in rest {
                        if let Some(v) = field(t, "recv=") {
                            s.delivered += v;
                        } else if let Some(v) = field(t, "dup=") {
                            s.dupes += v;
                        } else if let Some(v) = field(t, "gap=") {
                            s.gap_skips += v;
                        } else if let Some(v) = field(t, "lost=") {
                            s.lost_total += v;
                            if !crashed {
                                s.lost_alive += v;
                            }
                        } else if let Some(v) = field(t, "late=") {
                            s.late_total += v;
                            if !crashed {
                                s.late_alive += v;
                            }
                        } else if let Some(v) = field(t, "fwd=") {
                            s.forwarded += v;
                        } else if let Some(v) = field(t, "p3=") {
                            s.p3_drops += v;
                        } else if let Some(v) = field(t, "p8=") {
                            s.p8_skips += v;
                        } else if let Some(v) = field(t, "graftin=") {
                            s.grafts_in += v;
                        } else if let Some(v) = field(t, "deg=") {
                            s.max_divisor = s.max_divisor.max(v);
                        } else if !crashed {
                            if let Some(v) = field(t, "gapmax_us=") {
                                s.gap_max_us_alive = s.gap_max_us_alive.max(v);
                            } else if let Some(v) = field(t, "sgapmax_us=") {
                                s.stripe_gap_max_us_alive = s.stripe_gap_max_us_alive.max(v);
                            } else if let Some(v) = field(t, "hopmax_us=") {
                                s.hop_max_us = s.hop_max_us.max(v);
                            } else if let Some(list) = t.strip_prefix("hopbkt=") {
                                for (i, part) in list.split(',').take(HOP_BUCKETS).enumerate() {
                                    s.hop_buckets[i] += part.parse::<u64>().unwrap_or(0);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// Total hops in the merged histogram.
    pub fn hop_count(&self) -> u64 {
        self.hop_buckets.iter().sum()
    }

    /// Upper bucket edge (µs) below which `permille`/1000 of all
    /// measured hops fall. Zero when no hops were measured.
    pub fn hop_percentile_us(&self, permille: u64) -> u64 {
        let total = self.hop_count();
        if total == 0 {
            return 0;
        }
        let target = (total * permille).div_ceil(1_000);
        let mut seen = 0u64;
        for (i, count) in self.hop_buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HOP_BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::SimTime;

    fn small_cfg() -> OverlayConfig {
        OverlayConfig {
            viewers: 40,
            trees: 3,
            degree: 3,
            seed: 11,
            segments: 40,
            payload_bytes: 320,
            uplink_cps: 12_000,
            source_uplink_cps: 40_000,
            relay_cost: SimDuration::from_micros(20),
            ..OverlayConfig::default()
        }
    }

    fn run(cfg: &OverlayConfig, shards: usize) -> (Vec<String>, TreePlan) {
        let built = match build_overlay_broadcast(cfg, shards) {
            Ok(b) => b,
            Err(e) => panic!("build failed: {e}"),
        };
        let deadline = SimTime::from_nanos(
            cfg.segment_interval.as_nanos() * u64::from(cfg.segments)
                + SimDuration::from_millis(140).as_nanos(),
        );
        let report = built.cluster.run(deadline);
        (report.merged_lines(), built.plan)
    }

    #[test]
    fn clean_run_delivers_everything_on_time() {
        let cfg = small_cfg();
        let (lines, plan) = run(&cfg, 1);
        let s = OverlaySummary::parse(&lines);
        assert_eq!(s.viewers, 40);
        assert_eq!(s.delivered, 40 * 40, "{lines:?}");
        assert_eq!(s.lost_total, 0);
        assert_eq!(s.late_total, 0);
        assert_eq!(s.dupes, 0);
        assert_eq!(s.p3_drops, 0);
        assert_eq!(s.hub_deaths, 0);
        assert!(plan.max_depth_overall() <= plan.depth_bound());
        // One slab gather per segment — relays added no payload copies.
        assert_eq!(
            s.slab_copied_out,
            u64::from(cfg.segments) * cfg.payload_bytes as u64
        );
        assert!(s.hop_count() > 0);
    }

    #[test]
    fn replay_is_byte_identical() {
        let cfg = small_cfg();
        let (a, _) = run(&cfg, 1);
        let (b, _) = run(&cfg, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn interior_crash_is_repaired_for_all_survivors() {
        let mut cfg = small_cfg();
        let plan = match plan_for(&cfg) {
            Ok(p) => p,
            Err(e) => panic!("plan: {e}"),
        };
        let victim = (1..plan.members())
            .find(|&v| {
                plan.interior_tree(v)
                    .is_some_and(|t| !plan.children(t, v).is_empty())
            })
            .expect("no interior relay with children");
        cfg.crash = Some(CrashPlan {
            member: victim,
            at: SimDuration::from_millis(60),
        });
        let (lines, _) = run(&cfg, 1);
        let s = OverlaySummary::parse(&lines);
        assert_eq!(s.crashed, 1, "{lines:?}");
        assert_eq!(s.hub_deaths, 1);
        assert!(s.hub_grafts >= 1, "no grafts issued: {lines:?}");
        assert_eq!(s.lost_alive, 0, "survivors lost slices: {lines:?}");
        assert_eq!(s.late_alive, 0, "survivors saw late slices: {lines:?}");
        // The repair gap stayed within the playout budget.
        assert!(
            s.stripe_gap_max_us_alive <= cfg.playout.as_nanos() / 1_000,
            "repair gap {}us exceeds playout",
            s.stripe_gap_max_us_alive
        );
    }

    #[test]
    fn uplink_cap_drives_p3_and_p8_then_recovers() {
        let mut cfg = small_cfg();
        cfg.uplink_queue = 8;
        let plan = match plan_for(&cfg) {
            Ok(p) => p,
            Err(e) => panic!("plan: {e}"),
        };
        let victim = (1..plan.members())
            .find(|&v| {
                plan.interior_tree(v)
                    .is_some_and(|t| plan.children(t, v).len() >= 2)
            })
            .expect("no busy relay");
        cfg.uplink_cap = Some(UplinkCapPlan {
            member: victim,
            at: SimDuration::from_millis(30),
            hold: SimDuration::from_millis(80),
            permille: 40,
        });
        let (lines, _) = run(&cfg, 1);
        let s = OverlaySummary::parse(&lines);
        assert!(
            s.p3_drops > 0 || s.p8_skips > 0,
            "cap produced no local degradation: {lines:?}"
        );
        assert!(s.max_divisor >= 2, "P8 never stepped: {lines:?}");
        let text = lines.join("\n");
        assert!(
            text.contains("apply bandwidth-collapse path=relay.up"),
            "{text}"
        );
        assert!(
            text.contains("revert bandwidth-collapse path=relay.up"),
            "{text}"
        );
    }

    #[test]
    fn admission_charge_covers_every_planned_copy() {
        let cfg = small_cfg();
        let built = match build_overlay_broadcast(&cfg, 1) {
            Ok(b) => b,
            Err(e) => panic!("build failed: {e}"),
        };
        let copies: usize = (0..built.plan.members())
            .map(|m| built.plan.fanout(m))
            .sum();
        assert!(copies > 0);
        let per_copy = match stripe_class(&cfg) {
            StreamClass::Video { rate_permille } => {
                StreamClass::Video { rate_permille }.demand_cps()
            }
            StreamClass::Audio => unreachable!("stripes are video class"),
        };
        assert_eq!(built.relay_tx_cps, per_copy * copies as u64);
    }

    #[test]
    fn summary_parses_node_hub_and_src_lines() {
        let lines = vec![
            "node0000 src fwd=120 p3=0 slabin=12800 slabout=12800 srcgraft=1".to_string(),
            "node0001 recv=40 dup=2 gap=0 lost=0 late=0 fwd=120 p3=1 p8=2 graftin=1 deg=2 \
             gapmax_us=5000 sgapmax_us=12000 hopmax_us=900 crashed=0 hopbkt=0,1,2,0,0,0,0,0,0,0,0,0,0,0,0,0"
                .to_string(),
            "node0002 recv=10 dup=0 gap=3 lost=30 late=1 fwd=0 p3=0 p8=0 graftin=0 deg=1 \
             gapmax_us=900000 sgapmax_us=900000 hopmax_us=20000 crashed=1 hopbkt=0,0,0,0,9,0,0,0,0,0,0,0,0,0,0,0"
                .to_string(),
            "hub deaths=1 grafts=2 unrepairable=0".to_string(),
            "hub t=000000000001 death relay=2 tree=0".to_string(),
        ];
        let s = OverlaySummary::parse(&lines);
        assert_eq!(s.viewers, 2);
        assert_eq!(s.crashed, 1);
        assert_eq!(s.delivered, 50);
        assert_eq!(s.lost_total, 30);
        assert_eq!(s.lost_alive, 0);
        assert_eq!(s.late_alive, 0);
        assert_eq!(s.grafts_in, 2, "node graftin + srcgraft");
        assert_eq!(s.max_divisor, 2);
        assert_eq!(s.hub_deaths, 1);
        assert_eq!(s.src_forwarded, 120);
        assert_eq!(s.gap_max_us_alive, 5_000);
        assert_eq!(s.stripe_gap_max_us_alive, 12_000);
        assert_eq!(s.hop_max_us, 900, "crashed node's hops excluded");
        assert_eq!(s.hop_buckets[1], 1);
        assert_eq!(s.hop_buckets[4], 0, "crashed node's buckets excluded");
        assert_eq!(s.hop_count(), 3);
        assert_eq!(s.hop_percentile_us(1_000), 1 << 3);
    }
}
