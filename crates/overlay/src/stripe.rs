//! Stripe scheduling and the per-viewer receive state.
//!
//! A segment becomes one [`Slice`]: its cells gathered once, at the
//! source, into a [`CellBurst`] behind an `Arc`. Every relay hop clones
//! the `Arc` — never the payload — so fanning one slice to a thousand
//! viewers adds **zero** payload copies beyond the source's single
//! slab-to-cells gather (pinned by `relay_adds_no_payload_copies`).
//!
//! The scheduler is round-robin by construction: segment `seq` rides
//! tree `seq % k`, so each tree carries every k-th segment and a crashed
//! interior interrupts only its own stripe. Receivers track per-tree
//! next-expected sequence numbers: in-order slices are delivered,
//! re-sent slices from a repair replay are deduplicated, and anything
//! arriving past the playout budget is counted late — the clawback rule:
//! a viewer plays `playout` behind the source, so repair has that long
//! to refill a gap invisibly.

use std::collections::VecDeque;
use std::sync::Arc;

use pandora_atm::CellBurst;
use pandora_sim::WireSize;

/// Number of power-of-two microsecond buckets in a hop histogram.
pub const HOP_BUCKETS: usize = 16;

/// One striped segment in flight: shared cells plus routing/timing
/// metadata. Cloning bumps the `Arc` — relays never copy payload.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The tree (stripe) this slice rides: `seq % k`.
    pub tree: u8,
    /// Source-assigned segment sequence number, global across stripes.
    pub seq: u32,
    /// Source emission time, nanoseconds of virtual time.
    pub stamp: u64,
    /// Last forwarding hop's transmit time — per-hop latency is
    /// `arrival - sent`.
    pub sent: u64,
    /// The segment's cells, gathered once at the source.
    pub burst: Arc<CellBurst>,
}

impl Slice {
    /// The slice re-stamped for the next hop's transmit time.
    pub fn retimed(&self, now_nanos: u64) -> Slice {
        Slice {
            sent: now_nanos,
            ..self.clone()
        }
    }
}

impl WireSize for Slice {
    fn wire_bytes(&self) -> usize {
        self.burst.wire_bytes()
    }
}

/// Per-tree ring of recently forwarded slices, the clawback buffer a
/// backup parent replays from when it adopts an orphan. Only the tree a
/// node is interior in needs one (plus all trees at the source) — a node
/// forwards nothing elsewhere.
#[derive(Debug, Default)]
pub struct RepairRing {
    cap: usize,
    slices: VecDeque<Slice>,
}

impl RepairRing {
    /// A ring holding at most `cap` slices.
    pub fn new(cap: usize) -> RepairRing {
        RepairRing {
            cap,
            slices: VecDeque::with_capacity(cap),
        }
    }

    /// Records a forwarded slice, evicting the oldest past capacity.
    pub fn push(&mut self, slice: Slice) {
        if self.cap == 0 {
            return;
        }
        if self.slices.len() == self.cap {
            self.slices.pop_front();
        }
        self.slices.push_back(slice);
    }

    /// Slices with `seq >= from_seq`, oldest first — the catch-up burst
    /// for a freshly grafted orphan.
    pub fn replay_from(&self, from_seq: u32) -> Vec<Slice> {
        self.slices
            .iter()
            .filter(|s| s.seq >= from_seq)
            .cloned()
            .collect()
    }

    /// Slices currently buffered.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

/// What [`StripeReceiver::accept`] decided about an arriving slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// First sight of this sequence, delivered in order.
    Delivered {
        /// Arrived within the playout budget.
        on_time: bool,
    },
    /// Already delivered (a repair-replay overlap) — dropped.
    Duplicate,
    /// Delivered, but sequences were skipped getting here (`gap` of
    /// them went missing for good).
    DeliveredAfterGap {
        /// Stripe-local sequences skipped over.
        gap: u32,
        /// Arrived within the playout budget.
        on_time: bool,
    },
}

/// Per-viewer receive state across the `k` stripes: dedupe, gap and
/// lateness accounting, and the per-hop latency histogram.
#[derive(Debug)]
pub struct StripeReceiver {
    k: usize,
    playout_nanos: u64,
    /// Next expected global seq per tree (tree t starts at seq t and
    /// advances by k).
    next: Vec<u32>,
    delivered: u64,
    dupes: u64,
    gap_skips: u64,
    late: u64,
    last_delivery: u64,
    gap_max: u64,
    /// Last delivery time per tree (`u64::MAX` before the first).
    stripe_last: Vec<u64>,
    stripe_gap_max: u64,
    hop_max: u64,
    hop_buckets: [u64; HOP_BUCKETS],
}

impl StripeReceiver {
    /// Fresh state for `k` stripes under a `playout` lateness budget.
    pub fn new(k: usize, playout_nanos: u64) -> StripeReceiver {
        StripeReceiver {
            k,
            playout_nanos,
            next: (0..k as u32).collect(),
            delivered: 0,
            dupes: 0,
            gap_skips: 0,
            late: 0,
            last_delivery: 0,
            gap_max: 0,
            stripe_last: vec![u64::MAX; k],
            stripe_gap_max: 0,
            hop_max: 0,
            hop_buckets: [0; HOP_BUCKETS],
        }
    }

    /// Classifies and accounts one arriving slice.
    pub fn accept(&mut self, slice: &Slice, now_nanos: u64) -> Accept {
        let t = slice.tree as usize;
        debug_assert_eq!(slice.seq as usize % self.k, t, "slice on the wrong stripe");
        if slice.seq < self.next[t] {
            self.dupes += 1;
            return Accept::Duplicate;
        }
        let gap = (slice.seq - self.next[t]) / self.k as u32;
        self.next[t] = slice.seq + self.k as u32;
        let on_time = now_nanos.saturating_sub(slice.stamp) <= self.playout_nanos;
        if !on_time {
            self.late += 1;
        }
        if self.delivered > 0 {
            self.gap_max = self
                .gap_max
                .max(now_nanos.saturating_sub(self.last_delivery));
        }
        self.last_delivery = now_nanos;
        if self.stripe_last[t] != u64::MAX {
            self.stripe_gap_max = self
                .stripe_gap_max
                .max(now_nanos.saturating_sub(self.stripe_last[t]));
        }
        self.stripe_last[t] = now_nanos;
        self.delivered += 1;
        let hop = now_nanos.saturating_sub(slice.sent);
        self.hop_max = self.hop_max.max(hop);
        let us = hop / 1_000;
        // Bucket i holds hops in [2^i, 2^(i+1)) microseconds.
        let idx = (us.max(1).ilog2() as usize).min(HOP_BUCKETS - 1);
        self.hop_buckets[idx] += 1;
        if gap > 0 {
            self.gap_skips += u64::from(gap);
            Accept::DeliveredAfterGap { gap, on_time }
        } else {
            Accept::Delivered { on_time }
        }
    }

    /// Next expected global sequence per tree — what heartbeats report
    /// so a graft knows where replay must resume.
    pub fn next_expected(&self) -> &[u32] {
        &self.next
    }

    /// Slices delivered (first sight, in order).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Replay overlaps dropped.
    pub fn dupes(&self) -> u64 {
        self.dupes
    }

    /// Sequences skipped for good.
    pub fn gap_skips(&self) -> u64 {
        self.gap_skips
    }

    /// Deliveries past the playout budget.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Longest wait between consecutive deliveries — the repair-gap
    /// statistic: how long the viewer's clawback buffer had to bridge.
    pub fn gap_max_nanos(&self) -> u64 {
        self.gap_max
    }

    /// Longest wait between consecutive deliveries *on one stripe* — the
    /// repair-gap statistic proper: when an interior relay dies, only its
    /// stripe goes silent for its subtree (the other k - 1 keep
    /// delivering), so this is the window the graft-and-replay machinery
    /// had to close, and it must stay under the playout budget for the
    /// repair to be glitch-free.
    pub fn stripe_gap_max_nanos(&self) -> u64 {
        self.stripe_gap_max
    }

    /// Worst single-hop latency observed.
    pub fn hop_max_nanos(&self) -> u64 {
        self.hop_max
    }

    /// The per-hop latency histogram: bucket `i` counts hops in
    /// `[2^i, 2^(i+1))` microseconds.
    pub fn hop_buckets(&self) -> &[u64; HOP_BUCKETS] {
        &self.hop_buckets
    }

    /// Slices this receiver should have seen of `segments` total, given
    /// round-robin striping.
    pub fn expected(&self, segments: u32) -> u64 {
        u64::from(segments)
    }

    /// Slices never delivered out of `segments` emitted.
    pub fn lost(&self, segments: u32) -> u64 {
        self.expected(segments).saturating_sub(self.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_atm::{segment_to_burst, Vci};

    fn slice(k: usize, seq: u32, stamp: u64, sent: u64) -> Slice {
        Slice {
            tree: (seq as usize % k) as u8,
            seq,
            stamp,
            sent,
            burst: Arc::new(segment_to_burst(Vci(9), &[0xAB; 96], seq * 8)),
        }
    }

    #[test]
    fn in_order_slices_deliver_on_time() {
        let mut rx = StripeReceiver::new(2, 10_000_000);
        for seq in 0..6u32 {
            let s = slice(2, seq, 1_000, 2_000);
            assert_eq!(rx.accept(&s, 5_000), Accept::Delivered { on_time: true });
        }
        assert_eq!(rx.delivered(), 6);
        assert_eq!(rx.lost(6), 0);
        assert_eq!(rx.late(), 0);
        assert_eq!(rx.next_expected(), &[6, 7]);
    }

    #[test]
    fn replay_overlap_is_deduplicated() {
        let mut rx = StripeReceiver::new(2, 10_000_000);
        let s0 = slice(2, 0, 0, 0);
        let _ = rx.accept(&s0, 100);
        assert_eq!(rx.accept(&s0, 200), Accept::Duplicate);
        assert_eq!(rx.dupes(), 1);
        assert_eq!(rx.delivered(), 1);
    }

    #[test]
    fn skipped_sequences_count_as_gaps_and_lateness_uses_stamp() {
        let mut rx = StripeReceiver::new(2, 1_000);
        let _ = rx.accept(&slice(2, 0, 0, 0), 100);
        // seq 2 never arrives; seq 4 lands late (stamp 0, now beyond
        // playout).
        match rx.accept(&slice(2, 4, 0, 0), 5_000) {
            Accept::DeliveredAfterGap {
                gap: 1,
                on_time: false,
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.gap_skips(), 1);
        assert_eq!(rx.late(), 1);
        assert_eq!(rx.lost(6), 4, "only 0 and 4 of the 6 segments arrived");
    }

    #[test]
    fn gap_max_tracks_the_longest_delivery_silence() {
        let mut rx = StripeReceiver::new(1, u64::MAX);
        let _ = rx.accept(&slice(1, 0, 0, 0), 1_000);
        let _ = rx.accept(&slice(1, 1, 0, 0), 2_000);
        let _ = rx.accept(&slice(1, 2, 0, 0), 50_000);
        let _ = rx.accept(&slice(1, 3, 0, 0), 51_000);
        assert_eq!(rx.gap_max_nanos(), 48_000);
    }

    #[test]
    fn stripe_gap_tracks_single_tree_silence() {
        // Tree 1 goes silent between 2ms and 60ms while tree 0 keeps
        // delivering: the overall gap stays small but the stripe gap
        // shows the outage the repair had to bridge.
        let mut rx = StripeReceiver::new(2, u64::MAX);
        let _ = rx.accept(&slice(2, 0, 0, 0), 1_000_000);
        let _ = rx.accept(&slice(2, 1, 0, 0), 2_000_000);
        for (seq, at) in [(2u32, 5), (4, 9), (6, 13), (8, 17)] {
            let _ = rx.accept(&slice(2, seq, 0, 0), at * 1_000_000);
        }
        let _ = rx.accept(&slice(2, 3, 0, 0), 60_000_000);
        assert_eq!(rx.stripe_gap_max_nanos(), 58_000_000);
        assert!(rx.gap_max_nanos() < 58_000_000);
    }

    #[test]
    fn ring_replays_from_a_resume_point() {
        let mut ring = RepairRing::new(4);
        for seq in [1u32, 3, 5, 7, 9] {
            ring.push(slice(2, seq, 0, 0));
        }
        assert_eq!(ring.len(), 4, "capacity evicts the oldest");
        let replay = ring.replay_from(5);
        let seqs: Vec<u32> = replay.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![5, 7, 9]);
        assert!(ring.replay_from(100).is_empty());
    }

    #[test]
    fn relay_adds_no_payload_copies() {
        // One gather at the source; a thousand forwards share it.
        let burst = Arc::new(segment_to_burst(Vci(5), &[7u8; 1408], 0));
        let original = Arc::as_ptr(&burst);
        let s = Slice {
            tree: 0,
            seq: 0,
            stamp: 0,
            sent: 0,
            burst,
        };
        let mut hops = Vec::new();
        for i in 0..1_000u64 {
            hops.push(s.retimed(i));
        }
        for h in &hops {
            assert!(std::ptr::eq(Arc::as_ptr(&h.burst), original));
        }
        assert_eq!(Arc::strong_count(&s.burst), 1_001);
    }

    #[test]
    fn hop_histogram_buckets_by_power_of_two_micros() {
        let mut rx = StripeReceiver::new(1, u64::MAX);
        // 3 µs hop → bucket 1; 1000 µs hop → bucket 9.
        let _ = rx.accept(&slice(1, 0, 0, 0), 3_000);
        let _ = rx.accept(&slice(1, 1, 0, 1_000_000), 2_000_000);
        assert_eq!(rx.hop_buckets()[1], 1);
        assert_eq!(rx.hop_buckets()[9], 1);
        assert_eq!(rx.hop_max_nanos(), 1_000_000);
    }
}
