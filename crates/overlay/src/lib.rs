//! # pandora-overlay — striped multi-tree broadcast
//!
//! One-to-thousands fan-out over viewer uplinks, after the paper's
//! observation that a continuous-media server's scarce resource is the
//! sender's outbound link: a single box cannot serialize a thousand
//! copies, but a thousand boxes each forwarding a few can.
//!
//! The crate splits the problem into four parts:
//!
//! * [`plan`] — the deterministic planner. Given the membership and
//!   per-box uplink budgets it computes `k` striped trees where every
//!   relay-capable member is interior in **exactly one** tree (a crash
//!   interrupts only `1/k` of the stream for its subtree), depth stays
//!   within `⌈log_d N⌉`, and equal seeds replay byte-identically.
//! * [`stripe`] — the data plane's bookkeeping: slices (an
//!   [`Arc`](std::sync::Arc)'d cell burst plus stripe/stamp metadata,
//!   so relaying never copies payload), the clawback [`RepairRing`],
//!   and the per-viewer [`StripeReceiver`] with its gap, lateness,
//!   per-hop histogram and per-stripe repair-gap statistics.
//! * [`repair`] — the hub engine: `pandora-recover` leases over member
//!   heartbeats, and graft orders that move a dead relay's orphans to
//!   their precomputed backup parents with a replay resume point.
//! * [`broadcast`] — the topology builder
//!   ([`build_overlay_broadcast`]): ports, bandwidth-limited uplinks
//!   with P3 drop-oldest queues and P8 local divisors, the session
//!   admission charge for every relay's fan-out, and the merged-report
//!   parser ([`OverlaySummary`]).

pub mod broadcast;
pub mod plan;
pub mod repair;
pub mod stripe;

pub use broadcast::{
    build_overlay_broadcast, cells_per_segment, plan_for, stripe_class, stripe_cps, BuildError,
    CrashPlan, Hello, Msg, OverlayBuild, OverlayConfig, OverlaySummary, UplinkCapPlan,
    OVERLAY_VCI_BASE,
};
pub use plan::{depth_bound, Member, PlanConfig, PlanError, TreePlan};
pub use repair::{Graft, RepairEngine};
pub use stripe::{Accept, RepairRing, Slice, StripeReceiver, HOP_BUCKETS};
