//! The hub-side repair engine: leases over relays, grafts on death.
//!
//! Every member heartbeats the hub with a `Hello` carrying its per-tree
//! next-expected sequences. The engine feeds those hellos into a
//! [`PassiveBeat`] (the pandora-recover lease machine, fed passively)
//! and sweeps once per interval. When an interior relay's lease dies,
//! each of its children in the dead relay's interior tree is orphaned —
//! but only in that one tree; the other `k - 1` stripes never touched
//! the victim. For each orphan the engine emits a [`Graft`]: the
//! orphan's precomputed backup parent (its grandparent, necessarily an
//! interior of the same tree or the source, and therefore holding a
//! repair ring for that stripe) starts forwarding to the orphan and
//! first replays its ring from the orphan's last reported next-expected
//! sequence — the clawback-buffered catch-up that closes the gap before
//! the viewer's playout delay runs out.
//!
//! The engine is a pure state machine: hellos and sweeps in, grafts and
//! log lines out, so a run's repair history replays byte-identically.

use pandora_recover::{LeaseConfig, LeaseEvent, PassiveBeat};

use crate::plan::TreePlan;

/// One graft order: `backup` adopts `orphan` on `tree`, replaying its
/// repair ring from `resume_from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graft {
    /// The stripe tree being repaired.
    pub tree: usize,
    /// The member that lost its parent.
    pub orphan: usize,
    /// The surviving grandparent that adopts it.
    pub backup: usize,
    /// Global sequence replay resumes from (the orphan's last reported
    /// next-expected on that tree).
    pub resume_from: u32,
}

/// Lease-driven graft planner the broadcast hub drives.
pub struct RepairEngine {
    plan: TreePlan,
    beat: PassiveBeat,
    /// Last reported next-expected per member per tree.
    last: Vec<Vec<u32>>,
    deaths: u64,
    grafts: u64,
    unrepairable: u64,
    log: Vec<String>,
}

impl RepairEngine {
    /// An engine over `plan`, with every member (except the source,
    /// which the hub itself hosts) enrolled under `lease`.
    pub fn new(plan: TreePlan, lease: LeaseConfig) -> RepairEngine {
        let k = plan.trees();
        let n = plan.members();
        let mut beat = PassiveBeat::new();
        for m in 1..n {
            beat.enroll(m as u32, lease);
        }
        RepairEngine {
            plan,
            beat,
            last: vec![(0..k as u32).collect(); n],
            deaths: 0,
            grafts: 0,
            unrepairable: 0,
            log: Vec::new(),
        }
    }

    /// A member's heartbeat: renews its lease and refreshes the resume
    /// points a future graft would use.
    pub fn hello(&mut self, member: usize, next_expected: &[u32]) {
        let _ = self.beat.hello(member as u32);
        if member < self.last.len() && next_expected.len() == self.plan.trees() {
            self.last[member].copy_from_slice(next_expected);
        }
    }

    /// One lease sweep at virtual time `now_nanos`: silent members take
    /// a miss; deaths of interior relays produce the grafts that reroute
    /// their orphans.
    pub fn sweep(&mut self, now_nanos: u64) -> Vec<Graft> {
        let mut grafts = Vec::new();
        for (peer, event) in self.beat.sweep() {
            if event != LeaseEvent::Died {
                continue;
            }
            let dead = peer as usize;
            self.deaths += 1;
            let Some(tree) = self.plan.interior_tree(dead) else {
                self.log
                    .push(format!("t={now_nanos:012} death leaf={dead} (no orphans)"));
                continue;
            };
            self.log
                .push(format!("t={now_nanos:012} death relay={dead} tree={tree}"));
            for &orphan in self.plan.children(tree, dead) {
                match self.plan.backup(tree, orphan) {
                    Some(backup) => {
                        let graft = Graft {
                            tree,
                            orphan,
                            backup,
                            resume_from: self.last[orphan][tree],
                        };
                        self.grafts += 1;
                        self.log.push(format!(
                            "t={now_nanos:012} graft tree={tree} orphan={orphan} backup={backup} from={}",
                            graft.resume_from
                        ));
                        grafts.push(graft);
                    }
                    None => {
                        // Parent was the source: the source cannot die in
                        // this model, so a missing backup here means the
                        // dead node itself was a source child — its
                        // children's backup is the source, handled above.
                        self.unrepairable += 1;
                        self.log.push(format!(
                            "t={now_nanos:012} unrepairable tree={tree} orphan={orphan}"
                        ));
                    }
                }
            }
        }
        grafts
    }

    /// Member deaths observed (interior or leaf).
    pub fn deaths(&self) -> u64 {
        self.deaths
    }

    /// Grafts issued.
    pub fn grafts(&self) -> u64 {
        self.grafts
    }

    /// Orphans that had no backup parent.
    pub fn unrepairable(&self) -> u64 {
        self.unrepairable
    }

    /// The plan being repaired.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Deterministic repair history, one line per death/graft, in
    /// execution order.
    pub fn log(&self) -> &[String] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Member, PlanConfig};
    use pandora_sim::SimDuration;

    fn engine(n: usize) -> RepairEngine {
        let members: Vec<Member> = (0..n)
            .map(|i| Member {
                name: format!("m{i}"),
                uplink_cps: 8_000,
            })
            .collect();
        let plan = TreePlan::compute(
            &members,
            &PlanConfig {
                trees: 2,
                degree: 4,
                seed: 3,
                stripe_cps: 1_000,
            },
        )
        .unwrap();
        RepairEngine::new(
            plan,
            LeaseConfig {
                interval: SimDuration::from_millis(10),
                suspect_after: 2,
                dead_after: 3,
                backoff_cap: SimDuration::from_millis(80),
            },
        )
    }

    /// A deep interior (one with both children and a non-source parent)
    /// to kill, or any interior with children.
    fn victim(e: &RepairEngine) -> (usize, usize) {
        let plan = e.plan();
        for v in 1..plan.members() {
            if let Some(t) = plan.interior_tree(v) {
                if !plan.children(t, v).is_empty() {
                    return (v, t);
                }
            }
        }
        panic!("no interior with children");
    }

    #[test]
    fn silent_interior_dies_and_every_orphan_gets_a_graft() {
        let mut e = engine(40);
        let (dead, tree) = victim(&e);
        let orphans: Vec<usize> = e.plan().children(tree, dead).to_vec();
        // Resume points come from the orphans' last hellos.
        let mut sweeps = 0;
        let grafts = loop {
            for m in 1..40 {
                if m != dead {
                    let next: Vec<u32> = (0..2u32).map(|t| t + 2 * 7).collect();
                    e.hello(m, &next);
                }
            }
            let g = e.sweep(1_000 * sweeps);
            sweeps += 1;
            if !g.is_empty() {
                break g;
            }
            assert!(sweeps < 10, "death never detected");
        };
        assert_eq!(grafts.len(), orphans.len());
        for g in &grafts {
            assert_eq!(g.tree, tree);
            assert!(orphans.contains(&g.orphan));
            assert_eq!(e.plan().backup(tree, g.orphan), Some(g.backup));
            assert_eq!(g.resume_from, g.tree as u32 + 14);
        }
        assert_eq!(e.deaths(), 1);
        assert_eq!(e.grafts() as usize, orphans.len());
        // Only the victim's interior tree is repaired: the other stripe
        // never routed through it.
        assert!(grafts.iter().all(|g| g.tree == tree));
    }

    #[test]
    fn repair_log_replays_byte_identically() {
        let run = || {
            let mut e = engine(40);
            let (dead, _) = victim(&e);
            for sweep in 0..6u64 {
                for m in 1..40 {
                    if m != dead {
                        e.hello(m, &[4, 5]);
                    }
                }
                let _ = e.sweep(sweep * 10_000_000);
            }
            e.log().join("\n")
        };
        let a = run();
        assert!(a.contains("graft"), "{a}");
        assert_eq!(a, run());
    }

    #[test]
    fn leaf_death_produces_no_grafts() {
        // Members with zero uplink are leaf-only; kill one.
        let members: Vec<Member> = (0..20)
            .map(|i| Member {
                name: format!("m{i}"),
                uplink_cps: if i == 0 || i % 2 == 1 { 8_000 } else { 0 },
            })
            .collect();
        let plan = TreePlan::compute(
            &members,
            &PlanConfig {
                trees: 2,
                degree: 4,
                seed: 1,
                stripe_cps: 1_000,
            },
        )
        .unwrap();
        let leaf = (1..20).find(|&v| plan.interior_tree(v).is_none()).unwrap();
        let mut e = RepairEngine::new(
            plan,
            LeaseConfig {
                interval: SimDuration::from_millis(10),
                suspect_after: 1,
                dead_after: 1,
                backoff_cap: SimDuration::from_millis(10),
            },
        );
        for sweep in 0..4u64 {
            for m in 1..20 {
                if m != leaf {
                    e.hello(m, &[0, 1]);
                }
            }
            assert!(e.sweep(sweep).is_empty());
        }
        assert_eq!(e.deaths(), 1);
        assert_eq!(e.grafts(), 0);
    }
}
