//! Time-series traces for figure-style output.

/// An append-only `(time, value)` trace.
///
/// Used to regenerate figure-shaped results (the muting function of figure
/// 4.1, clawback delay decay curves, ...). Times must be non-decreasing.
///
/// # Examples
///
/// ```
/// let mut s = pandora_metrics::TimeSeries::new("mute_factor");
/// s.push(0, 1.0);
/// s.push(2_000_000, 0.2);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.value_at(1_000_000), Some(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series called `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Out-of-order times are clamped to the last time so
    /// the series stays monotonic (callers in the simulator always append in
    /// virtual-time order).
    pub fn push(&mut self, t: u64, v: f64) {
        let t = match self.points.last() {
            Some(&(last, _)) if t < last => last,
            _ => t,
        };
        self.points.push((t, v));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Step-interpolated value at time `t`: the value of the latest point at
    /// or before `t`, or `None` if `t` precedes the first point.
    pub fn value_at(&self, t: u64) -> Option<f64> {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// First time at which the value satisfies `pred`, if any.
    pub fn first_time_where<F: Fn(f64) -> bool>(&self, pred: F) -> Option<u64> {
        self.points.iter().find(|&&(_, v)| pred(v)).map(|&(t, _)| t)
    }

    /// Last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Downsamples to at most `n` evenly spaced points (keeping endpoints);
    /// used when printing long traces as figure data.
    pub fn downsample(&self, n: usize) -> Vec<(u64, f64)> {
        if n == 0 || self.points.len() <= n {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        for i in 0..n {
            out.push(self.points[(i as f64 * step).round() as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        s.push(10, 1.0);
        s.push(20, 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(5), None);
        assert_eq!(s.value_at(10), Some(1.0));
        assert_eq!(s.value_at(15), Some(1.0));
        assert_eq!(s.value_at(25), Some(2.0));
        assert_eq!(s.last_value(), Some(2.0));
    }

    #[test]
    fn out_of_order_clamped() {
        let mut s = TimeSeries::new("x");
        s.push(10, 1.0);
        s.push(5, 2.0);
        assert_eq!(s.points(), &[(10, 1.0), (10, 2.0)]);
    }

    #[test]
    fn first_time_where_finds_threshold() {
        let mut s = TimeSeries::new("x");
        s.push(0, 1.0);
        s.push(10, 0.5);
        s.push(20, 0.2);
        assert_eq!(s.first_time_where(|v| v < 0.4), Some(20));
        assert_eq!(s.first_time_where(|v| v < 0.1), None);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TimeSeries::new("x");
        for i in 0..100u64 {
            s.push(i, i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], (0, 0.0));
        assert_eq!(d[4], (99, 99.0));
    }

    #[test]
    fn downsample_noop_when_short() {
        let mut s = TimeSeries::new("x");
        s.push(1, 1.0);
        assert_eq!(s.downsample(5).len(), 1);
    }
}
