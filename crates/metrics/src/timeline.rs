//! State timelines: ordered (time, state) transition traces.
//!
//! Failure-recovery experiments need to assert *when* an entity changed
//! state (a lease turning suspect, dead, live again), not just how often.
//! A [`StateTimeline`] records the transitions as they happen and renders
//! them as a deterministic text block for replay-equality assertions.

/// An append-only trace of state transitions for one or more entities.
///
/// Times are plain `u64` in whatever unit the caller uses consistently
/// (the simulator uses nanoseconds). Consecutive duplicate states for
/// the same entity are collapsed: recording `dead` twice in a row keeps
/// only the first entry, so the timeline is a minimal transition list.
#[derive(Debug, Default, Clone)]
pub struct StateTimeline {
    entries: Vec<(u64, String, String)>,
}

impl StateTimeline {
    /// An empty timeline.
    pub fn new() -> StateTimeline {
        StateTimeline::default()
    }

    /// Records `entity` entering `state` at `at`. A no-op if the
    /// entity's most recent recorded state is already `state`.
    pub fn record(&mut self, at: u64, entity: &str, state: &str) {
        let last = self
            .entries
            .iter()
            .rev()
            .find(|(_, e, _)| e == entity)
            .map(|(_, _, s)| s.as_str());
        if last == Some(state) {
            return;
        }
        self.entries
            .push((at, entity.to_string(), state.to_string()));
    }

    /// Number of recorded transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recent state recorded for `entity`, if any.
    pub fn current(&self, entity: &str) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(_, e, _)| e == entity)
            .map(|(_, _, s)| s.as_str())
    }

    /// Renders the timeline as one `t=<time> <entity> -> <state>` line
    /// per transition, in recording order — byte-identical across
    /// replays of a deterministic run.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (at, entity, state) in &self.entries {
            out.push_str(&format!("t={at:012} {entity} -> {state}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_transitions_and_collapses_repeats() {
        let mut t = StateTimeline::new();
        t.record(10, "node3", "live");
        t.record(20, "node3", "suspect");
        t.record(25, "node3", "suspect"); // collapsed
        t.record(30, "node3", "dead");
        t.record(35, "node4", "live");
        t.record(40, "node3", "live");
        assert_eq!(t.len(), 5);
        assert_eq!(t.current("node3"), Some("live"));
        assert_eq!(t.current("node4"), Some("live"));
        assert_eq!(t.current("node5"), None);
    }

    #[test]
    fn text_is_ordered_and_stable() {
        let mut t = StateTimeline::new();
        assert!(t.is_empty());
        t.record(1_000, "a", "up");
        t.record(2_000, "a", "down");
        assert_eq!(
            t.to_text(),
            "t=000000001000 a -> up\nt=000000002000 a -> down\n"
        );
        assert_eq!(t.to_text(), t.clone().to_text());
    }
}
