//! Sample-recording histogram with exact quantiles.

/// A distribution of `f64` samples with exact quantile queries.
///
/// Samples are stored; quantiles are computed by sorting on demand with the
/// sorted order cached until the next insertion. This is appropriate for the
/// simulation workloads in this workspace (up to a few million samples) and
/// keeps quantiles exact, which matters when asserting paper figures in
/// tests.
///
/// # Examples
///
/// ```
/// let mut h = pandora_metrics::Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.percentile(50.0), 2.0);
/// assert_eq!(h.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.samples.push(v);
        self.sorted = false;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or 0.0 when empty.
    pub fn stddev(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_finite()
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_finite()
    }

    /// Exact percentile by nearest-rank (`p` in 0..=100), or 0.0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1)]
    }

    /// Merges all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }

    /// One-line summary: `n=.. mean=.. p50=.. p99=.. max=..`.
    pub fn summary(&mut self) -> String {
        format!(
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

trait Finite {
    fn min_finite(self) -> f64;
    fn max_finite(self) -> f64;
}

impl Finite for f64 {
    fn min_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(99.0), 99.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(1.0), 1.0);
        assert_eq!(h.percentile(0.0), 1.0);
    }

    #[test]
    fn record_after_percentile_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.percentile(50.0), 10.0);
        h.record(1.0);
        assert_eq!(h.percentile(50.0), 1.0);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(4.0);
        }
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn summary_contains_count() {
        let mut h = Histogram::new();
        h.record(1.0);
        assert!(h.summary().contains("n=1"));
    }
}
