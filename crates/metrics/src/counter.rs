//! Event counters and the report rate limiter.

use std::collections::BTreeMap;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// let mut c = pandora_metrics::Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// A set of named counters, ordered by name for stable output.
///
/// Used by Pandora processes to keep "local counts of how many segments have
/// been thrown away" per error class (§3.8).
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: BTreeMap<String, Counter>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter called `name`, creating it if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Adds one to the counter called `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name`, zero if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Sum over all counters.
    pub fn total(&self) -> u64 {
        self.counters.values().map(|c| c.get()).sum()
    }
}

/// Gate enforcing "a minimum period between reports for any particular sort
/// of error" (§3.8).
///
/// Call [`RateLimiter::allow`] with the current time; it returns `true` (and
/// arms the gate) only if at least the configured period has elapsed since
/// the last allowed event for that key.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    period: u64,
    last: BTreeMap<String, u64>,
    suppressed: CounterSet,
}

impl RateLimiter {
    /// Creates a limiter allowing one event per `period` time units per key.
    pub fn new(period: u64) -> Self {
        Self {
            period,
            last: BTreeMap::new(),
            suppressed: CounterSet::new(),
        }
    }

    /// Returns `true` if an event with class `key` may fire at time `now`.
    ///
    /// The first event for a key is always allowed.
    pub fn allow(&mut self, key: &str, now: u64) -> bool {
        match self.last.get(key) {
            Some(&t) if now.saturating_sub(t) < self.period => {
                self.suppressed.incr(key);
                false
            }
            _ => {
                self.last.insert(key.to_string(), now);
                true
            }
        }
    }

    /// How many events were suppressed for `key` so far.
    pub fn suppressed(&self, key: &str) -> u64 {
        self.suppressed.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.take(), 3);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_set_accumulates_by_name() {
        let mut s = CounterSet::new();
        s.incr("drops.video");
        s.incr("drops.video");
        s.incr("drops.audio");
        assert_eq!(s.get("drops.video"), 2);
        assert_eq!(s.get("drops.audio"), 1);
        assert_eq!(s.get("missing"), 0);
        assert_eq!(s.total(), 3);
        let names: Vec<_> = s.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, ["drops.audio", "drops.video"]);
    }

    #[test]
    fn rate_limiter_enforces_period() {
        let mut r = RateLimiter::new(100);
        assert!(r.allow("overflow", 0));
        assert!(!r.allow("overflow", 50));
        assert!(!r.allow("overflow", 99));
        assert!(r.allow("overflow", 100));
        assert_eq!(r.suppressed("overflow"), 2);
    }

    #[test]
    fn rate_limiter_keys_are_independent() {
        let mut r = RateLimiter::new(100);
        assert!(r.allow("a", 0));
        assert!(r.allow("b", 10));
        assert!(!r.allow("a", 10));
    }
}
