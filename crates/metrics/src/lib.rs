//! Measurement utilities for the Pandora reproduction.
//!
//! Every experiment in the paper reports latency, jitter, loss or rate
//! figures. This crate provides the small, dependency-free instruments the
//! rest of the workspace uses to collect them:
//!
//! * [`Histogram`] — sample-recording distribution with quantiles.
//! * [`JitterTracker`] — inter-arrival jitter relative to a nominal period.
//! * [`Counter`] and [`CounterSet`] — named event counters.
//! * [`RateLimiter`] — minimum-period gating used by report channels.
//! * [`TimeSeries`] — (time, value) traces for figure-style output.
//! * [`StateTimeline`] — (time, entity, state) transition traces for
//!   failure-recovery assertions.
//! * [`Table`] — aligned ASCII table output for the `repro` binary.
//!
//! All values are plain `f64`/`u64`; time units are whatever the caller
//! uses consistently (the simulator uses nanoseconds).

mod counter;
mod histogram;
mod jitter;
mod series;
mod table;
mod timeline;

pub use counter::{Counter, CounterSet, RateLimiter};
pub use histogram::Histogram;
pub use jitter::JitterTracker;
pub use series::TimeSeries;
pub use table::Table;
pub use timeline::StateTimeline;
