//! Aligned ASCII tables for the `repro` binary's output.

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// let mut t = pandora_metrics::Table::new("T0: demo", &["streams", "misses"]);
/// t.row(&["1", "0"]);
/// t.row(&["5", "12"]);
/// let s = t.render();
/// assert!(s.contains("streams"));
/// assert!(s.contains("12"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut r: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| s.to_string())
            .collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut r = cells;
        r.truncate(self.headers.len());
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a histogram summary row: label, sample count, p50, p95 and
    /// max, each value divided by `scale` (e.g. `1e6` to render
    /// nanosecond samples in milliseconds) and printed with two decimals.
    /// The table's headers should provide five columns to match.
    pub fn histogram_row(&mut self, label: &str, h: &mut crate::Histogram, scale: f64) {
        let count = h.count();
        let cells = if count == 0 {
            ["-".to_string(), "-".to_string(), "-".to_string()]
        } else {
            [h.percentile(50.0), h.percentile(95.0), h.max()].map(|v| format!("{:.2}", v / scale))
        };
        let mut row = vec![label.to_string(), count.to_string()];
        row.extend(cells);
        self.row_owned(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_row_summarizes_scaled() {
        let mut h = crate::Histogram::new();
        for v in [1_000_000.0, 2_000_000.0, 3_000_000.0, 4_000_000.0] {
            h.record(v);
        }
        let mut t = Table::new("t", &["metric", "n", "p50 ms", "p95 ms", "max ms"]);
        t.histogram_row("setup", &mut h, 1e6);
        let s = t.render();
        assert!(s.contains("setup"), "{s}");
        assert!(s.contains('4'), "{s}");
        assert!(s.contains("4.00"), "{s}");
        // Empty histograms render dashes rather than NaNs.
        let mut empty = crate::Histogram::new();
        let mut t2 = Table::new("t", &["metric", "n", "p50", "p95", "max"]);
        t2.histogram_row("gap", &mut empty, 1e6);
        assert!(t2.render().contains('-'));
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", &["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "title");
        assert!(lines[1].starts_with("a     bbbb"));
        assert!(lines[3].starts_with("xxxx  y"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
