//! Inter-arrival jitter measurement.

use crate::Histogram;

/// Tracks the jitter of a nominally periodic arrival process.
///
/// The paper (§3.7.2, §4.2) quotes jitter as the deviation of audio block
/// arrival times from their nominal cadence: "the jitter is usually around
/// 2ms, sometimes rising to 20ms if there are large blocks of video being
/// transmitted through the same network interface". This tracker reproduces
/// that notion: each arrival is compared against an ideal arrival clock that
/// starts at the first observation and advances by the nominal period, and
/// the *deviation* (actual − ideal, in the caller's time unit) is recorded.
///
/// It also keeps the classic RFC 3550 smoothed inter-arrival jitter
/// estimate, which is useful for comparing against modern systems.
///
/// # Examples
///
/// ```
/// // A 2ms (2_000_000ns) cadence with one late block.
/// let mut j = pandora_metrics::JitterTracker::new(2_000_000);
/// j.arrival(0);
/// j.arrival(2_000_000);
/// j.arrival(4_500_000); // 500us late
/// assert_eq!(j.max_deviation(), 500_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct JitterTracker {
    period: u64,
    first: Option<u64>,
    count: u64,
    last_arrival: Option<u64>,
    last_transit: f64,
    rfc3550: f64,
    deviations: Histogram,
}

impl JitterTracker {
    /// Creates a tracker for arrivals nominally `period` time units apart.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "jitter period must be non-zero");
        Self {
            period,
            first: None,
            count: 0,
            last_arrival: None,
            last_transit: 0.0,
            rfc3550: 0.0,
            deviations: Histogram::new(),
        }
    }

    /// Records an arrival at absolute time `t`.
    pub fn arrival(&mut self, t: u64) {
        let first = *self.first.get_or_insert(t);
        let ideal = first as f64 + self.count as f64 * self.period as f64;
        self.deviations.record(t as f64 - ideal);
        if let Some(last) = self.last_arrival {
            // RFC 3550: J += (|D| - J) / 16 where D is the difference of
            // consecutive transit-time deltas; with a fixed send cadence the
            // transit delta is (gap - period).
            let transit = (t - last) as f64 - self.period as f64;
            let d = (transit - self.last_transit).abs();
            self.rfc3550 += (d - self.rfc3550) / 16.0;
            self.last_transit = transit;
        }
        self.last_arrival = Some(t);
        self.count += 1;
    }

    /// Number of arrivals recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest positive deviation from the ideal cadence (lateness).
    pub fn max_deviation(&self) -> f64 {
        self.deviations.max()
    }

    /// Peak-to-peak deviation (max − min), the "jitter" of §3.7.2.
    pub fn peak_to_peak(&self) -> f64 {
        if self.deviations.is_empty() {
            0.0
        } else {
            self.deviations.max() - self.deviations.min()
        }
    }

    /// Standard deviation of the cadence error.
    pub fn stddev(&self) -> f64 {
        self.deviations.stddev()
    }

    /// RFC 3550 smoothed inter-arrival jitter estimate.
    pub fn rfc3550(&self) -> f64 {
        self.rfc3550
    }

    /// The deviation distribution (actual − ideal arrival time).
    pub fn deviations(&mut self) -> &mut Histogram {
        &mut self.deviations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_cadence_has_zero_jitter() {
        let mut j = JitterTracker::new(2_000);
        for i in 0..100u64 {
            j.arrival(1_000 + i * 2_000);
        }
        assert_eq!(j.count(), 100);
        assert_eq!(j.max_deviation(), 0.0);
        assert_eq!(j.peak_to_peak(), 0.0);
        assert_eq!(j.rfc3550(), 0.0);
    }

    #[test]
    fn single_late_arrival_measured() {
        let mut j = JitterTracker::new(2_000);
        j.arrival(0);
        j.arrival(2_500);
        assert_eq!(j.max_deviation(), 500.0);
        assert_eq!(j.peak_to_peak(), 500.0);
    }

    #[test]
    fn early_and_late_peak_to_peak() {
        let mut j = JitterTracker::new(1_000);
        j.arrival(0);
        j.arrival(900); // 100 early
        j.arrival(2_300); // 300 late
        assert_eq!(j.peak_to_peak(), 400.0);
    }

    #[test]
    fn rfc3550_converges_toward_constant_jitter() {
        let mut j = JitterTracker::new(1_000);
        // Alternate 200 early / 200 late: |D| is 400 every step.
        let mut t = 0u64;
        for i in 0..2_000u64 {
            j.arrival(t + if i % 2 == 0 { 0 } else { 200 });
            t += 1_000;
        }
        assert!((j.rfc3550() - 400.0).abs() < 40.0, "got {}", j.rfc3550());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = JitterTracker::new(0);
    }
}
