//! Malformed-input behaviour of the AAL layer (§3.8: "if an error
//! occurs … the general rule is that the current segment is thrown
//! away"). Reassembly must translate every corruption into discard
//! counters and keep running — never panic, never wedge a circuit.

use pandora_atm::{segment_to_cells, Cell, Reassembler, Vci};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn feed(r: &mut Reassembler, cells: impl IntoIterator<Item = Cell>) -> Vec<(Vci, Vec<u8>)> {
    cells.into_iter().filter_map(|c| r.push(c)).collect()
}

#[test]
fn truncated_burst_discards_both_frames_once() {
    // The tail of a burst — including the marked last cell — never
    // arrives; the next burst's cells run straight on. The sequence gap
    // poisons the merged frame, which is discarded at the next last-cell
    // marker, and the circuit then recovers.
    let f1 = vec![1u8; 150];
    let f2 = vec![2u8; 96];
    let mut c1 = segment_to_cells(Vci(5), &f1, 0);
    let n1 = c1.len() as u32;
    c1.truncate(c1.len() - 2); // lose the tail, with its `last` marker
    let c2 = segment_to_cells(Vci(5), &f2, n1);
    let mut r = Reassembler::new();
    let done = feed(&mut r, c1.into_iter().chain(c2));
    assert!(done.is_empty(), "truncated frame delivered: {done:?}");
    assert_eq!(r.frames_ok(), 0);
    assert_eq!(r.frames_discarded(), 1);
    let f3 = vec![3u8; 48];
    let c3 = segment_to_cells(Vci(5), &f3, n1 + 2);
    let done = feed(&mut r, c3);
    assert_eq!(done, vec![(Vci(5), f3)], "circuit did not recover");
}

#[test]
fn reordered_cells_discard_frame_and_recover() {
    let frame = vec![9u8; 200];
    let mut cells = segment_to_cells(Vci(7), &frame, 40);
    cells.swap(1, 2);
    let mut r = Reassembler::new();
    let done = feed(&mut r, cells);
    assert!(done.is_empty(), "reordered frame delivered");
    assert_eq!(r.frames_discarded(), 1);
    let next = segment_to_cells(Vci(7), &[4u8; 30], 45);
    assert_eq!(feed(&mut r, next).len(), 1, "circuit did not recover");
}

#[test]
fn duplicated_cell_discards_frame() {
    let frame = vec![6u8; 150];
    let mut cells = segment_to_cells(Vci(3), &frame, 0);
    cells.insert(1, cells[1].clone()); // the same cell delivered twice
    let mut r = Reassembler::new();
    let done = feed(&mut r, cells);
    assert!(done.is_empty(), "duplicated cell slipped a frame through");
    assert_eq!(r.frames_discarded(), 1);
}

#[test]
fn colliding_vci_interleave_never_panics() {
    // Two senders erroneously share one VCI with independent counters —
    // a misconfigured switch table. Reassembly sees constant sequence
    // breaks; everything is discarded, nothing explodes, and the
    // receiver still tracks a single circuit.
    let fa = vec![1u8; 150];
    let fb = vec![2u8; 150];
    let ca = segment_to_cells(Vci(11), &fa, 0);
    let cb = segment_to_cells(Vci(11), &fb, 1_000);
    let mut r = Reassembler::new();
    let mut done = Vec::new();
    for (a, b) in ca.into_iter().zip(cb) {
        done.extend(r.push(a));
        done.extend(r.push(b));
    }
    assert!(done.is_empty(), "interleaved collision delivered: {done:?}");
    assert!(r.frames_discarded() >= 2);
    assert_eq!(r.circuits(), 1);
}

#[test]
fn seeded_mutation_fuzz_never_panics() {
    // Drop, duplicate, swap and truncate cells at random across a long
    // cell stream; every outcome must land in a counter. Same seed,
    // same verdicts — rerun twice and compare.
    fn run(seed: u64) -> (u64, u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cells: Vec<Cell> = Vec::new();
        let mut seq = 0u32;
        for i in 0..60u8 {
            let len = rng.gen_range(1..200usize);
            let frame = vec![i; len];
            let burst = segment_to_cells(Vci(u32::from(i % 4)), &frame, seq);
            seq = seq.wrapping_add(burst.len() as u32);
            cells.extend(burst);
        }
        for _ in 0..30 {
            if cells.len() < 4 {
                break;
            }
            let k = rng.gen_range(0..cells.len());
            match rng.gen_range(0..4u32) {
                0 => {
                    cells.remove(k);
                }
                1 => {
                    let c = cells[k].clone();
                    cells.insert(k, c);
                }
                2 => {
                    let j = rng.gen_range(0..cells.len());
                    cells.swap(k, j);
                }
                _ => {
                    cells.truncate(cells.len() - 1);
                }
            }
        }
        let mut r = Reassembler::new();
        for c in cells {
            let _ = r.push(c);
        }
        let counts = (r.frames_ok(), r.frames_discarded());
        // The reassembler must still work after the assault.
        let clean = segment_to_cells(Vci(99), &[5u8; 100], 0);
        assert_eq!(feed(&mut r, clean).len(), 1, "reassembler wedged");
        counts
    }
    for seed in 0..10u64 {
        let (ok_1, bad_1) = run(seed);
        let (ok_2, bad_2) = run(seed);
        assert_eq!((ok_1, bad_1), (ok_2, bad_2), "seed {seed} diverged");
        assert!(bad_1 > 0, "seed {seed} mutated nothing");
    }
}
