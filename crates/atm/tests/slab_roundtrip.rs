//! Seeded equivalence: the zero-copy slab transport must deliver
//! byte-identical segments to the legacy owned path for every segment
//! shape — audio of one, two and twelve blocks, and sliced video frames
//! with randomized geometry. Both paths run the same segment through
//! their full encode → cells → reassemble → decode chain and must agree
//! with each other and with the original.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pandora_atm::{cells_gather, segment_to_cells, Reassembler, SlabReassembler, Vci};
use pandora_segment::{
    wire, AudioSegment, PixelFormat, Segment, SequenceNumber, SlabSegment, Timestamp,
    VideoCompression, VideoHeader, VideoSegment, BLOCK_BYTES,
};
use pandora_slab::ByteSlab;

/// Drives `seg` through the legacy owned path: encode to one `Vec`,
/// segment into cells, reassemble into a fresh `Vec`, decode.
fn legacy_round_trip(seg: &Segment, vci: Vci, seq: u32) -> Segment {
    let bytes = wire::encode(seg);
    let cells = segment_to_cells(vci, &bytes, seq);
    let mut r = Reassembler::new();
    let mut out = None;
    for cell in cells {
        out = r.push(cell).or(out);
    }
    let (got_vci, frame) = out.expect("legacy frame completes");
    assert_eq!(got_vci, vci);
    wire::decode(&frame).expect("legacy frame decodes")
}

/// Drives `seg` through the slab path: payload into the arena, header
/// into a scratch region, cells gathered straight from the slab,
/// reassembled into one slab region and decoded in place.
fn slab_round_trip(seg: &Segment, vci: Vci, seq: u32) -> Segment {
    // `slab` outlives every region reference below (drop order is
    // reverse declaration order).
    let slab = ByteSlab::new(8, 64 * 1024);
    let sseg = SlabSegment::from_segment(seg, &slab).expect("payload fits");
    let mut scratch = vec![0u8; sseg.header.header_wire_bytes()];
    wire::encode_header_into(&sseg.header, &mut scratch);
    let cells = sseg
        .payload
        .copy_out_with(|p| cells_gather(vci, &scratch, p, seq));
    let mut r = SlabReassembler::new(slab.clone());
    let mut out = None;
    for cell in cells {
        out = r.push(cell).or(out);
    }
    let (got_vci, frame) = out.expect("slab frame completes");
    assert_eq!(got_vci, vci);
    wire::decode_slab(&frame)
        .expect("slab frame decodes")
        .to_segment()
}

/// Both paths must reproduce the original exactly.
fn assert_paths_agree(seg: &Segment, vci: Vci, seq: u32) {
    let legacy = legacy_round_trip(seg, vci, seq);
    let slab = slab_round_trip(seg, vci, seq);
    assert_eq!(&legacy, seg, "legacy path altered the segment");
    assert_eq!(slab, legacy, "slab path diverged from the legacy path");
}

fn random_audio(rng: &mut SmallRng, blocks: usize) -> Segment {
    let data: Vec<u8> = (0..blocks * BLOCK_BYTES)
        .map(|_| rng.gen_range(0u32..256) as u8)
        .collect();
    Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(rng.gen_range(0u32..1 << 30)),
        Timestamp(rng.gen_range(0u32..1 << 30)),
        data,
    ))
}

#[test]
fn audio_segments_round_trip_identically() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_a11d);
    // One block fits a single cell; two blocks is the standard 68-byte
    // shout segment; twelve blocks spans several cells.
    for blocks in [1usize, 2, 12] {
        for case in 0..20u32 {
            let seg = random_audio(&mut rng, blocks);
            let vci = Vci(rng.gen_range(1u32..1024));
            assert_paths_agree(&seg, vci, case.wrapping_mul(977));
        }
    }
}

fn random_video_slice(rng: &mut SmallRng) -> Segment {
    let width = rng.gen_range(2u32..16) * 16;
    let lines = rng.gen_range(1u32..48);
    let segments_in_frame = rng.gen_range(1u32..8);
    let args: Vec<u32> = (0..rng.gen_range(0u32..4))
        .map(|_| rng.gen_range(0u32..1 << 16))
        .collect();
    let data: Vec<u8> = (0..(width * lines) as usize)
        .map(|_| rng.gen_range(0u32..256) as u8)
        .collect();
    let header = VideoHeader {
        frame_number: rng.gen_range(0u32..1 << 20),
        segments_in_frame,
        segment_number: rng.gen_range(0..segments_in_frame),
        x_offset: rng.gen_range(0u32..512),
        y_offset: rng.gen_range(0u32..512),
        pixel_format: PixelFormat::Mono8,
        compression: VideoCompression::Dpcm,
        compression_args: args,
        width,
        start_line: rng.gen_range(0u32..512),
        lines,
        data_length: 0,
    };
    Segment::Video(VideoSegment::new(
        SequenceNumber(rng.gen_range(0u32..1 << 30)),
        Timestamp(rng.gen_range(0u32..1 << 30)),
        header,
        data,
    ))
}

#[test]
fn sliced_video_frames_round_trip_identically() {
    let mut rng = SmallRng::seed_from_u64(0x51de0);
    for case in 0..40u32 {
        let seg = random_video_slice(&mut rng);
        let vci = Vci(rng.gen_range(1u32..1024));
        assert_paths_agree(&seg, vci, case.wrapping_mul(131));
    }
}
