//! Segmentation and reassembly of Pandora segments into cells.
//!
//! Pandora used the protocols of [McAuley90] over its ATM network; the
//! behavioural essentials reproduced here are: frames travel as cell
//! bursts on a VCI, the final cell is marked, and a lost cell discards the
//! whole frame at reassembly (detected by the per-VCI cell counter) —
//! Pandora's §3.8 rule "if an error occurs … the general rule is that the
//! current segment is thrown away" then applies, with recovery by segment
//! sequence number.

use std::collections::HashMap;

use crate::cell::{Cell, Vci, CELL_PAYLOAD};

/// Splits a frame (an encoded Pandora segment) into cells on `vci`,
/// continuing the per-VCI counter from `first_seq`.
pub fn segment_to_cells(vci: Vci, frame: &[u8], first_seq: u32) -> Vec<Cell> {
    if frame.is_empty() {
        return vec![Cell::new(vci, first_seq, true, &[])];
    }
    let n = frame.len().div_ceil(CELL_PAYLOAD);
    let mut out = Vec::with_capacity(n);
    for (i, chunk) in frame.chunks(CELL_PAYLOAD).enumerate() {
        out.push(Cell::new(
            vci,
            first_seq.wrapping_add(i as u32),
            i == n - 1,
            chunk,
        ));
    }
    out
}

/// Per-VCI reassembly state.
#[derive(Debug, Default)]
struct VciState {
    buf: Vec<u8>,
    next_seq: Option<u32>,
    corrupt: bool,
}

/// Reassembles cell streams back into frames, discarding any frame with a
/// missing cell.
#[derive(Debug, Default)]
pub struct Reassembler {
    circuits: HashMap<Vci, VciState>,
    frames_ok: u64,
    frames_discarded: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one arriving cell; returns a completed frame when the marked
    /// last cell of an intact frame arrives.
    pub fn push(&mut self, cell: Cell) -> Option<(Vci, Vec<u8>)> {
        let st = self.circuits.entry(cell.vci).or_default();
        if let Some(expected) = st.next_seq {
            if cell.seq != expected {
                // A cell went missing: poison the in-progress frame.
                st.corrupt = true;
            }
        }
        st.next_seq = Some(cell.seq.wrapping_add(1));
        st.buf.extend_from_slice(cell.data());
        if cell.last {
            let frame = std::mem::take(&mut st.buf);
            let corrupt = std::mem::take(&mut st.corrupt);
            if corrupt {
                self.frames_discarded += 1;
                None
            } else {
                self.frames_ok += 1;
                Some((cell.vci, frame))
            }
        } else {
            None
        }
    }

    /// Frames delivered intact.
    pub fn frames_ok(&self) -> u64 {
        self.frames_ok
    }

    /// Frames discarded due to cell loss.
    pub fn frames_discarded(&self) -> u64 {
        self.frames_discarded
    }

    /// Circuits currently known.
    pub fn circuits(&self) -> usize {
        self.circuits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_frame() {
        let cells = segment_to_cells(Vci(1), &[1, 2, 3], 0);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].last);
        let mut r = Reassembler::new();
        assert_eq!(r.push(cells[0].clone()), Some((Vci(1), vec![1, 2, 3])));
    }

    #[test]
    fn multi_cell_round_trip() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let cells = segment_to_cells(Vci(9), &frame, 100);
        assert_eq!(cells.len(), 5); // ceil(200/48).
        assert!(cells[4].last);
        assert!(!cells[3].last);
        let mut r = Reassembler::new();
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        assert_eq!(out, Some((Vci(9), frame)));
        assert_eq!(r.frames_ok(), 1);
    }

    #[test]
    fn empty_frame_is_one_empty_cell() {
        let cells = segment_to_cells(Vci(2), &[], 0);
        assert_eq!(cells.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.push(cells[0].clone()), Some((Vci(2), vec![])));
    }

    #[test]
    fn lost_cell_discards_frame() {
        let frame = vec![7u8; 150];
        let mut cells = segment_to_cells(Vci(3), &frame, 0);
        cells.remove(1); // Lose the middle cell.
        let mut r = Reassembler::new();
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        assert_eq!(out, None);
        assert_eq!(r.frames_discarded(), 1);
        // The next intact frame still gets through (the counter resumed).
        let next = segment_to_cells(Vci(3), &[1, 2], 4);
        let mut got = None;
        for c in next {
            got = got.or(r.push(c));
        }
        assert_eq!(got, Some((Vci(3), vec![1, 2])));
    }

    #[test]
    fn interleaved_vcis_reassemble_independently() {
        let fa = vec![1u8; 100];
        let fb = vec![2u8; 100];
        let ca = segment_to_cells(Vci(1), &fa, 0);
        let cb = segment_to_cells(Vci(2), &fb, 0);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        // Interleave cell by cell.
        for (a, b) in ca.into_iter().zip(cb) {
            if let Some(f) = r.push(a) {
                done.push(f);
            }
            if let Some(f) = r.push(b) {
                done.push(f);
            }
        }
        assert_eq!(done, vec![(Vci(1), fa), (Vci(2), fb)]);
        assert_eq!(r.circuits(), 2);
    }

    #[test]
    fn seq_wraps_across_frames() {
        let mut r = Reassembler::new();
        let c1 = segment_to_cells(Vci(1), &[1u8; 96], u32::MAX - 1);
        for c in c1 {
            r.push(c);
        }
        // Continues at 0 after wrap; next frame must still be accepted.
        let c2 = segment_to_cells(Vci(1), &[2u8; 48], 0);
        let mut got = None;
        for c in c2 {
            got = got.or(r.push(c));
        }
        assert!(got.is_some());
        assert_eq!(r.frames_ok(), 2);
    }
}
