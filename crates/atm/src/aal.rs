//! Segmentation and reassembly of Pandora segments into cells.
//!
//! Pandora used the protocols of [McAuley90] over its ATM network; the
//! behavioural essentials reproduced here are: frames travel as cell
//! bursts on a VCI, the final cell is marked, and a lost cell discards the
//! whole frame at reassembly (detected by the per-VCI cell counter) —
//! Pandora's §3.8 rule "if an error occurs … the general rule is that the
//! current segment is thrown away" then applies, with recovery by segment
//! sequence number.

// check:hot-path: every payload byte on the network passes through here.

use std::collections::HashMap;

use pandora_slab::{ByteSlab, SlabRef, SlabWriter};

use crate::burst::CellBurst;
use crate::cell::{Cell, Vci, CELL_PAYLOAD};

/// Splits a frame (an encoded Pandora segment) into cells on `vci`,
/// continuing the per-VCI counter from `first_seq`.
pub fn segment_to_cells(vci: Vci, frame: &[u8], first_seq: u32) -> Vec<Cell> {
    cells_gather(vci, frame, &[], first_seq)
}

/// Splits a logically contiguous frame given as `header ++ payload` into
/// cells on `vci` — the scatter-gather TX path.
///
/// The two regions never need to be joined in memory: each cell is
/// filled from whichever region(s) its 48-byte window covers, so a
/// segment goes from its slab straight into cells with no intermediate
/// wire image. `segment_to_cells(vci, frame, s)` is exactly
/// `cells_gather(vci, frame, &[], s)`, and the produced cell sequence is
/// byte-identical either way.
pub fn cells_gather(vci: Vci, header: &[u8], payload: &[u8], first_seq: u32) -> Vec<Cell> {
    let total = header.len() + payload.len();
    if total == 0 {
        return vec![Cell::new(vci, first_seq, true, &[])];
    }
    let n = total.div_ceil(CELL_PAYLOAD);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let start = i * CELL_PAYLOAD;
        let take = CELL_PAYLOAD.min(total - start);
        let mut buf = [0u8; CELL_PAYLOAD];
        let mut filled = 0;
        if start < header.len() {
            let h = &header[start..header.len().min(start + take)];
            buf[..h.len()].copy_from_slice(h);
            filled = h.len();
        }
        if filled < take {
            let poff = (start + filled) - header.len();
            buf[filled..take].copy_from_slice(&payload[poff..poff + (take - filled)]);
        }
        out.push(Cell {
            vci,
            seq: first_seq.wrapping_add(i as u32),
            last: i == n - 1,
            payload: buf,
            payload_len: take as u8,
        });
    }
    out
}

/// Per-VCI reassembly state.
#[derive(Debug, Default)]
struct VciState {
    buf: Vec<u8>,
    next_seq: Option<u32>,
    corrupt: bool,
}

/// Reassembles cell streams back into frames, discarding any frame with a
/// missing cell.
#[derive(Debug, Default)]
pub struct Reassembler {
    circuits: HashMap<Vci, VciState>,
    frames_ok: u64,
    frames_discarded: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one arriving cell; returns a completed frame when the marked
    /// last cell of an intact frame arrives.
    pub fn push(&mut self, cell: Cell) -> Option<(Vci, Vec<u8>)> {
        let st = self.circuits.entry(cell.vci).or_default();
        if let Some(expected) = st.next_seq {
            if cell.seq != expected {
                // A cell went missing: poison the in-progress frame.
                st.corrupt = true;
            }
        }
        st.next_seq = Some(cell.seq.wrapping_add(1));
        st.buf.extend_from_slice(cell.data());
        if cell.last {
            let frame = std::mem::take(&mut st.buf);
            let corrupt = std::mem::take(&mut st.corrupt);
            if corrupt {
                self.frames_discarded += 1;
                None
            } else {
                self.frames_ok += 1;
                Some((cell.vci, frame))
            }
        } else {
            None
        }
    }

    /// Feeds a whole burst with one dispatch: the circuit is resolved
    /// once and the sequence check runs once against the burst's first
    /// cell (the rest are contiguous by the [`CellBurst`] invariant),
    /// then the payload is appended in bulk. Equivalent to pushing the
    /// burst's cells one by one — same frames, same counters.
    pub fn push_burst(&mut self, burst: CellBurst) -> Option<(Vci, Vec<u8>)> {
        let st = self.circuits.entry(burst.vci()).or_default();
        if let Some(expected) = st.next_seq {
            if burst.first_seq() != expected {
                st.corrupt = true;
            }
        }
        st.next_seq = Some(burst.first_seq().wrapping_add(burst.len() as u32));
        let total: usize = burst.cells().iter().map(|c| c.payload_len as usize).sum();
        st.buf.reserve(total);
        for cell in burst.cells() {
            st.buf.extend_from_slice(cell.data());
        }
        if burst.ends_frame() {
            let frame = std::mem::take(&mut st.buf);
            let corrupt = std::mem::take(&mut st.corrupt);
            if corrupt {
                self.frames_discarded += 1;
                None
            } else {
                self.frames_ok += 1;
                Some((burst.vci(), frame))
            }
        } else {
            None
        }
    }

    /// Frames delivered intact.
    pub fn frames_ok(&self) -> u64 {
        self.frames_ok
    }

    /// Frames discarded due to cell loss.
    pub fn frames_discarded(&self) -> u64 {
        self.frames_discarded
    }

    /// Circuits currently known.
    pub fn circuits(&self) -> usize {
        self.circuits.len()
    }
}

/// Per-VCI slab reassembly state.
#[derive(Debug, Default)]
struct SlabVciState {
    writer: Option<SlabWriter>,
    next_seq: Option<u32>,
    corrupt: bool,
}

/// Reassembles cell streams directly into slab regions — the zero-copy
/// RX path.
///
/// Where [`Reassembler`] accumulates into a per-VCI `Vec<u8>` that the
/// caller then copies again, this variant appends each arriving cell
/// straight into a [`SlabWriter`] region (the frame's *one* input copy)
/// and hands the completed frame back as a refcounted [`SlabRef`].
/// Frames with a missing cell, frames larger than one slab region, and
/// frames that arrive while the slab is exhausted are discarded whole,
/// per the §3.8 rule.
#[derive(Debug)]
pub struct SlabReassembler {
    slab: ByteSlab,
    circuits: HashMap<Vci, SlabVciState>,
    frames_ok: u64,
    frames_discarded: u64,
    alloc_failures: u64,
}

impl SlabReassembler {
    /// Creates a reassembler that allocates frame regions from `slab`.
    pub fn new(slab: ByteSlab) -> Self {
        SlabReassembler {
            slab,
            circuits: HashMap::new(),
            frames_ok: 0,
            frames_discarded: 0,
            alloc_failures: 0,
        }
    }

    /// Feeds one arriving cell; returns the completed frame, in place in
    /// its slab region, when the marked last cell of an intact frame
    /// arrives.
    pub fn push(&mut self, cell: Cell) -> Option<(Vci, SlabRef)> {
        let st = self.circuits.entry(cell.vci).or_default();
        if let Some(expected) = st.next_seq {
            if cell.seq != expected {
                // A cell went missing: poison the in-progress frame and
                // free its half-built region immediately.
                st.corrupt = true;
                st.writer = None;
            }
        }
        st.next_seq = Some(cell.seq.wrapping_add(1));
        if !st.corrupt {
            if st.writer.is_none() {
                match self.slab.try_writer() {
                    Ok(w) => st.writer = Some(w),
                    Err(_) => {
                        self.alloc_failures += 1;
                        st.corrupt = true;
                    }
                }
            }
            if let Some(w) = st.writer.as_mut() {
                if w.append(cell.data()).is_err() {
                    // Frame larger than one slab region: discard whole.
                    st.corrupt = true;
                    st.writer = None;
                }
            }
        }
        if cell.last {
            let writer = st.writer.take();
            let corrupt = std::mem::take(&mut st.corrupt);
            match (corrupt, writer) {
                (false, Some(w)) => {
                    self.frames_ok += 1;
                    Some((cell.vci, w.freeze()))
                }
                _ => {
                    self.frames_discarded += 1;
                    None
                }
            }
        } else {
            None
        }
    }

    /// Feeds a whole burst with one dispatch: circuit resolved once, one
    /// sequence check, at most one region allocation, and the payload
    /// appended straight into the slab region in bulk. Equivalent to
    /// pushing the burst's cells one by one — same frames, same
    /// `frames_ok`/`frames_discarded`/`alloc_failures` accounting.
    pub fn push_burst(&mut self, burst: CellBurst) -> Option<(Vci, SlabRef)> {
        let st = self.circuits.entry(burst.vci()).or_default();
        if let Some(expected) = st.next_seq {
            if burst.first_seq() != expected {
                st.corrupt = true;
                st.writer = None;
            }
        }
        st.next_seq = Some(burst.first_seq().wrapping_add(burst.len() as u32));
        if !st.corrupt {
            if st.writer.is_none() {
                match self.slab.try_writer() {
                    Ok(w) => st.writer = Some(w),
                    Err(_) => {
                        self.alloc_failures += 1;
                        st.corrupt = true;
                    }
                }
            }
            if let Some(w) = st.writer.as_mut() {
                // `all` short-circuits on the first failed append, like
                // the per-cell path stopping once the frame is poisoned.
                let fits = burst.cells().iter().all(|c| w.append(c.data()).is_ok());
                if !fits {
                    st.corrupt = true;
                    st.writer = None;
                }
            }
        }
        if burst.ends_frame() {
            let writer = st.writer.take();
            let corrupt = std::mem::take(&mut st.corrupt);
            match (corrupt, writer) {
                (false, Some(w)) => {
                    self.frames_ok += 1;
                    Some((burst.vci(), w.freeze()))
                }
                _ => {
                    self.frames_discarded += 1;
                    None
                }
            }
        } else {
            None
        }
    }

    /// Frames delivered intact.
    pub fn frames_ok(&self) -> u64 {
        self.frames_ok
    }

    /// Frames discarded due to cell loss or slab pressure.
    pub fn frames_discarded(&self) -> u64 {
        self.frames_discarded
    }

    /// Frames lost because no slab region was free (or one overflowed).
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Circuits currently known.
    pub fn circuits(&self) -> usize {
        self.circuits.len()
    }

    /// The slab frames are reassembled into.
    pub fn slab(&self) -> &ByteSlab {
        &self.slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_frame() {
        let cells = segment_to_cells(Vci(1), &[1, 2, 3], 0);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].last);
        let mut r = Reassembler::new();
        assert_eq!(r.push(cells[0].clone()), Some((Vci(1), vec![1, 2, 3])));
    }

    #[test]
    fn multi_cell_round_trip() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let cells = segment_to_cells(Vci(9), &frame, 100);
        assert_eq!(cells.len(), 5); // ceil(200/48).
        assert!(cells[4].last);
        assert!(!cells[3].last);
        let mut r = Reassembler::new();
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        assert_eq!(out, Some((Vci(9), frame)));
        assert_eq!(r.frames_ok(), 1);
    }

    #[test]
    fn empty_frame_is_one_empty_cell() {
        let cells = segment_to_cells(Vci(2), &[], 0);
        assert_eq!(cells.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.push(cells[0].clone()), Some((Vci(2), vec![])));
    }

    #[test]
    fn lost_cell_discards_frame() {
        let frame = vec![7u8; 150];
        let mut cells = segment_to_cells(Vci(3), &frame, 0);
        cells.remove(1); // Lose the middle cell.
        let mut r = Reassembler::new();
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        assert_eq!(out, None);
        assert_eq!(r.frames_discarded(), 1);
        // The next intact frame still gets through (the counter resumed).
        let next = segment_to_cells(Vci(3), &[1, 2], 4);
        let mut got = None;
        for c in next {
            got = got.or(r.push(c));
        }
        assert_eq!(got, Some((Vci(3), vec![1, 2])));
    }

    #[test]
    fn interleaved_vcis_reassemble_independently() {
        let fa = vec![1u8; 100];
        let fb = vec![2u8; 100];
        let ca = segment_to_cells(Vci(1), &fa, 0);
        let cb = segment_to_cells(Vci(2), &fb, 0);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        // Interleave cell by cell.
        for (a, b) in ca.into_iter().zip(cb) {
            if let Some(f) = r.push(a) {
                done.push(f);
            }
            if let Some(f) = r.push(b) {
                done.push(f);
            }
        }
        assert_eq!(done, vec![(Vci(1), fa), (Vci(2), fb)]);
        assert_eq!(r.circuits(), 2);
    }

    #[test]
    fn gather_matches_contiguous_split() {
        let header: Vec<u8> = (0u8..36).collect();
        let payload: Vec<u8> = (0u8..200).map(|i| i.wrapping_mul(3)).collect();
        let mut joined = header.clone();
        joined.extend_from_slice(&payload);
        for split in [0, 1, 36, 47, 48, 49, joined.len()] {
            let gathered = cells_gather(Vci(5), &joined[..split], &joined[split..], 7);
            assert_eq!(
                gathered,
                segment_to_cells(Vci(5), &joined, 7),
                "split {split}"
            );
        }
    }

    #[test]
    fn gather_of_empty_frame_is_one_empty_cell() {
        let cells = cells_gather(Vci(1), &[], &[], 3);
        assert_eq!(cells, segment_to_cells(Vci(1), &[], 3));
    }

    #[test]
    fn slab_reassembler_round_trip() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let cells = segment_to_cells(Vci(9), &frame, 100);
        let mut r = SlabReassembler::new(ByteSlab::new(2, 1024));
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        let (vci, got) = out.unwrap();
        assert_eq!(vci, Vci(9));
        got.with(|b| assert_eq!(b, &frame[..]));
        assert_eq!(r.frames_ok(), 1);
        // Exactly one input copy: the frame's bytes, once.
        assert_eq!(r.slab().copied_in_bytes(), frame.len() as u64);
        assert_eq!(r.slab().copied_out_bytes(), 0);
        drop(got);
        assert_eq!(r.slab().free_count(), 2);
    }

    #[test]
    fn slab_reassembler_discards_on_lost_cell_and_frees_region() {
        let mut cells = segment_to_cells(Vci(3), &[7u8; 150], 0);
        cells.remove(1);
        let mut r = SlabReassembler::new(ByteSlab::new(1, 1024));
        let mut out = None;
        for c in cells {
            out = out.or(r.push(c));
        }
        assert_eq!(out, None);
        assert_eq!(r.frames_discarded(), 1);
        // The poisoned frame's region was freed, so the single slab is
        // available for the next intact frame.
        let next = segment_to_cells(Vci(3), &[1, 2], 4);
        let mut got = None;
        for c in next {
            got = got.or(r.push(c));
        }
        let (_, frame) = got.unwrap();
        frame.with(|b| assert_eq!(b, &[1, 2]));
    }

    #[test]
    fn slab_reassembler_exhaustion_discards_whole_frame() {
        let slab = ByteSlab::new(1, 1024);
        let held = slab.try_alloc_copy(&[0]).unwrap();
        let mut r = SlabReassembler::new(slab);
        let mut out = None;
        for c in segment_to_cells(Vci(1), &[9u8; 100], 0) {
            out = out.or(r.push(c));
        }
        assert_eq!(out, None);
        assert_eq!(r.alloc_failures(), 1);
        assert_eq!(r.frames_discarded(), 1);
        drop(held);
        // With a region free again, the circuit recovers.
        let mut got = None;
        for c in segment_to_cells(Vci(1), &[5u8; 100], 3) {
            got = got.or(r.push(c));
        }
        assert!(got.is_some());
    }

    #[test]
    fn slab_reassembler_discards_oversized_frame() {
        let mut r = SlabReassembler::new(ByteSlab::new(2, 64));
        let mut out = None;
        for c in segment_to_cells(Vci(1), &[9u8; 100], 0) {
            out = out.or(r.push(c));
        }
        assert_eq!(out, None);
        assert_eq!(r.frames_discarded(), 1);
        assert_eq!(r.slab().free_count(), 2);
    }

    #[test]
    fn push_burst_matches_per_cell_push() {
        let frames: Vec<Vec<u8>> = vec![vec![1u8; 200], vec![2u8; 96], vec![3u8; 10]];
        let mut seq = 0u32;
        let mut scalar = Reassembler::new();
        let mut batched = Reassembler::new();
        for f in &frames {
            let cells = segment_to_cells(Vci(4), f, seq);
            seq = seq.wrapping_add(cells.len() as u32);
            let burst = CellBurst::from_cells(cells.clone()).expect("intact frame");
            let mut s_out = None;
            for c in cells {
                s_out = s_out.or(scalar.push(c));
            }
            assert_eq!(s_out, batched.push_burst(burst));
        }
        assert_eq!(scalar.frames_ok(), batched.frames_ok());
        assert_eq!(scalar.frames_ok(), 3);
    }

    #[test]
    fn push_burst_discards_on_gap_between_bursts() {
        let mut r = Reassembler::new();
        let mut cells = segment_to_cells(Vci(1), &[9u8; 200], 0);
        cells.remove(2); // Mid-frame loss: two runs with a gap between.
        let mut out = None;
        for b in CellBurst::split_runs(cells) {
            out = out.or(r.push_burst(b));
        }
        assert_eq!(out, None);
        assert_eq!(r.frames_discarded(), 1);
        // The circuit recovers on the next intact frame.
        let next = CellBurst::from_cells(segment_to_cells(Vci(1), &[1, 2], 5)).expect("intact");
        assert_eq!(r.push_burst(next), Some((Vci(1), vec![1, 2])));
    }

    #[test]
    fn slab_push_burst_matches_per_cell_push() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let cells = segment_to_cells(Vci(9), &frame, 100);
        let mut r = SlabReassembler::new(ByteSlab::new(2, 1024));
        let burst = CellBurst::from_cells(cells).expect("intact frame");
        let (vci, got) = r.push_burst(burst).expect("frame completes");
        assert_eq!(vci, Vci(9));
        got.with(|b| assert_eq!(b, &frame[..]));
        assert_eq!(r.frames_ok(), 1);
        assert_eq!(r.slab().copied_in_bytes(), frame.len() as u64);
    }

    #[test]
    fn slab_push_burst_exhaustion_counts_one_alloc_failure() {
        let slab = ByteSlab::new(1, 1024);
        let held = slab.try_alloc_copy(&[0]).expect("first region");
        let mut r = SlabReassembler::new(slab);
        let burst =
            CellBurst::from_cells(segment_to_cells(Vci(1), &[9u8; 100], 0)).expect("intact");
        assert_eq!(r.push_burst(burst), None);
        assert_eq!(r.alloc_failures(), 1);
        assert_eq!(r.frames_discarded(), 1);
        drop(held);
        let next = CellBurst::from_cells(segment_to_cells(Vci(1), &[5u8; 100], 3)).expect("intact");
        assert!(r.push_burst(next).is_some());
    }

    #[test]
    fn slab_push_burst_discards_oversized_frame() {
        let mut r = SlabReassembler::new(ByteSlab::new(2, 64));
        let burst =
            CellBurst::from_cells(segment_to_cells(Vci(1), &[9u8; 100], 0)).expect("intact");
        assert_eq!(r.push_burst(burst), None);
        assert_eq!(r.frames_discarded(), 1);
        assert_eq!(r.slab().free_count(), 2);
    }

    #[test]
    fn seq_wraps_across_frames() {
        let mut r = Reassembler::new();
        let c1 = segment_to_cells(Vci(1), &[1u8; 96], u32::MAX - 1);
        for c in c1 {
            r.push(c);
        }
        // Continues at 0 after wrap; next frame must still be accepted.
        let c2 = segment_to_cells(Vci(1), &[2u8; 48], 0);
        let mut got = None;
        for c in c2 {
            got = got.or(r.push(c));
        }
        assert!(got.is_some());
        assert_eq!(r.frames_ok(), 2);
    }
}
