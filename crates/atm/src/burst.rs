//! Burst transport: a segment's cells carried and dispatched as one unit.
//!
//! The per-cell pipeline pays its fixed costs — route lookup, VCI state
//! resolution, queue borrow, counter update — once per 53-byte cell. A
//! [`CellBurst`] is the cells of (at most) one frame on one VCI with
//! consecutive sequence numbers, so every one of those costs can be paid
//! once per *segment* instead: the switch resolves the route once and
//! appends each output port's copies in bulk, and the reassembler
//! resolves the circuit once and appends the payload in bulk. The cells
//! inside a burst are byte-identical to what the per-cell path carries —
//! batched and scalar paths are interchangeable and pinned to each other
//! by the equivalence suite (`tests/batched_equivalence.rs`).
//!
//! Wire timing note: a burst on a store-and-forward link finishes
//! serializing exactly when its last cell would have — frame-completion
//! times are invariant — but intermediate cells no longer appear
//! individually. Paths whose per-cell timing is semantic (the box TX
//! scheduler's interleaving modes, jitter models) keep the per-cell path;
//! bursts serve fabric hops and the CPU-level dispatch itself.

// check:hot-path: every payload byte of a burst crosses the fabric here.

use std::collections::HashMap;
use std::rc::Rc;

use pandora_sim::{buffered, Receiver, Sender, WireSize};

use crate::aal::cells_gather;
use crate::cell::{Cell, Vci, CELL_BYTES};
use crate::network::{FabricCounters, RouteTable};

/// The cells of (at most) one frame on one VCI, dispatched as a unit.
///
/// Invariants (enforced by every constructor):
/// * non-empty;
/// * all cells share one VCI;
/// * sequence numbers are consecutive (wrapping);
/// * only the final cell may carry the last-cell mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellBurst {
    cells: Vec<Cell>,
}

impl CellBurst {
    /// Wraps a cell run, validating the burst invariants. Returns `None`
    /// if `cells` is empty, mixes VCIs, has a sequence gap, or marks a
    /// non-final cell as last.
    pub fn from_cells(cells: Vec<Cell>) -> Option<CellBurst> {
        let first = cells.first()?;
        let (vci, mut seq) = (first.vci, first.seq);
        for (i, c) in cells.iter().enumerate() {
            if c.vci != vci || c.seq != seq || (c.last && i + 1 != cells.len()) {
                return None;
            }
            seq = seq.wrapping_add(1);
        }
        Some(CellBurst { cells })
    }

    /// Groups an arbitrary cell stream into maximal bursts: a new burst
    /// starts at every VCI change, sequence discontinuity, or after a
    /// last-marked cell. Feeding the resulting bursts through a burst
    /// path reproduces the per-cell path byte-for-byte — this is how a
    /// lossy stream (gaps from dropped cells) enters burst reassembly.
    pub fn split_runs(cells: impl IntoIterator<Item = Cell>) -> Vec<CellBurst> {
        let mut out: Vec<CellBurst> = Vec::with_capacity(4);
        let mut run: Vec<Cell> = Vec::with_capacity(4);
        for cell in cells {
            let breaks = match run.last() {
                Some(prev) => {
                    prev.last || cell.vci != prev.vci || cell.seq != prev.seq.wrapping_add(1)
                }
                None => false,
            };
            if breaks {
                out.push(CellBurst {
                    cells: std::mem::take(&mut run),
                });
            }
            run.push(cell);
        }
        if !run.is_empty() {
            out.push(CellBurst { cells: run });
        }
        out
    }

    /// The burst's virtual circuit.
    pub fn vci(&self) -> Vci {
        self.cells[0].vci
    }

    /// Sequence number of the first cell.
    pub fn first_seq(&self) -> u32 {
        self.cells[0].seq
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false` (a burst is never empty); present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether the final cell carries the last-cell mark (i.e. the burst
    /// completes a frame).
    pub fn ends_frame(&self) -> bool {
        self.cells[self.cells.len() - 1].last
    }

    /// The cells, in sequence order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Unwraps into the cell run (for feeding per-cell consumers).
    pub fn into_cells(self) -> Vec<Cell> {
        self.cells
    }

    /// A copy of the burst rewritten onto `vci` — the switch fan-out
    /// operation, one pass over the run.
    fn copy_onto(&self, vci: Vci) -> impl Iterator<Item = Cell> + '_ {
        self.cells.iter().map(move |c| {
            let mut copy = c.clone();
            copy.vci = vci;
            copy
        })
    }
}

impl WireSize for CellBurst {
    fn wire_bytes(&self) -> usize {
        self.cells.len() * CELL_BYTES
    }
}

/// Splits a frame into one burst on `vci` — the batched counterpart of
/// [`crate::segment_to_cells`]; the contained cells are byte-identical.
pub fn segment_to_burst(vci: Vci, frame: &[u8], first_seq: u32) -> CellBurst {
    CellBurst {
        cells: cells_gather(vci, frame, &[], first_seq),
    }
}

/// Splits a logically contiguous `header ++ payload` frame into one burst
/// on `vci` — the slab scatter-gather TX feeding the burst path directly;
/// the contained cells are byte-identical to [`crate::cells_gather`].
pub fn burst_gather(vci: Vci, header: &[u8], payload: &[u8], first_seq: u32) -> CellBurst {
    CellBurst {
        cells: cells_gather(vci, header, payload, first_seq),
    }
}

/// The synchronous dispatch core of the switch: route table, unified
/// counters and the bounded per-port output queues.
///
/// [`crate::Switch`] wraps this in a simulation task; benchmarks and the
/// equivalence suite drive it directly. Cloning shares the same table,
/// counters and ports.
#[derive(Clone)]
pub struct SwitchCore {
    table: RouteTable,
    counters: FabricCounters,
    port_txs: Vec<Sender<Cell>>,
}

impl SwitchCore {
    /// Builds a core with `output_ports` ports whose queues hold
    /// `port_queue` cells each; returns one receiver per output port.
    pub fn new(output_ports: usize, port_queue: usize) -> (SwitchCore, Vec<Receiver<Cell>>) {
        let mut port_txs = Vec::with_capacity(output_ports);
        let mut port_rxs = Vec::with_capacity(output_ports);
        for _ in 0..output_ports {
            let (tx, rx) = buffered::<Cell>(port_queue.max(1));
            port_txs.push(tx);
            port_rxs.push(rx);
        }
        let core = SwitchCore {
            table: Rc::new(std::cell::RefCell::new(HashMap::new())),
            counters: FabricCounters::default(),
            port_txs,
        };
        (core, port_rxs)
    }

    pub(crate) fn table(&self) -> &RouteTable {
        &self.table
    }

    /// The unified forwarding counters.
    pub fn counters(&self) -> &FabricCounters {
        &self.counters
    }

    /// Installs (or replaces) a unicast route: cells on `vci` go to
    /// `port` with their VCI rewritten to `out_vci`.
    pub fn route(&self, vci: Vci, port: usize, out_vci: Vci) {
        self.table.borrow_mut().insert(vci, vec![(port, out_vci)]);
    }

    /// Adds one more copy destination for `vci`; duplicates are ignored.
    pub fn route_add(&self, vci: Vci, port: usize, out_vci: Vci) {
        let mut table = self.table.borrow_mut();
        let routes = table.entry(vci).or_default();
        if !routes.contains(&(port, out_vci)) {
            routes.push((port, out_vci));
        }
    }

    /// Forwards one cell: route lookup, per-route copy, per-port
    /// `try_send` — the scalar path the per-cell switch task runs.
    pub fn dispatch_cell(&self, cell: Cell) {
        let table = self.table.borrow();
        match table.get(&cell.vci) {
            Some(routes) if !routes.is_empty() => {
                for &(out, new_vci) in routes {
                    if out >= self.port_txs.len() {
                        self.counters.count_unroutable(1);
                        continue;
                    }
                    let mut copy = cell.clone();
                    copy.vci = new_vci;
                    match self.port_txs[out].try_send(copy) {
                        Ok(()) => self.counters.count_forwarded(1),
                        Err(_) => self.counters.count_overflow(1),
                    }
                }
            }
            _ => self.counters.count_unroutable(1),
        }
    }

    /// Forwards a whole burst with one dispatch: the route is resolved
    /// once, each output port's copies are appended in one bulk queue
    /// pass, and the counters are updated once per (route, burst) instead
    /// of once per cell. Port-by-port output is byte-identical to
    /// [`SwitchCore::dispatch_cell`] over the burst's cells, including
    /// the overflow prefix a full port accepts.
    pub fn dispatch_burst(&self, burst: &CellBurst) {
        let n = burst.len() as u64;
        let table = self.table.borrow();
        match table.get(&burst.vci()) {
            Some(routes) if !routes.is_empty() => {
                for &(out, new_vci) in routes {
                    if out >= self.port_txs.len() {
                        self.counters.count_unroutable(n);
                        continue;
                    }
                    let accepted = self.port_txs[out].try_send_many(burst.copy_onto(new_vci));
                    self.counters.count_forwarded(accepted as u64);
                    self.counters.count_overflow(n - accepted as u64);
                }
            }
            _ => self.counters.count_unroutable(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aal::segment_to_cells;

    fn frame(len: usize, fill: u8) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn segment_to_burst_matches_per_cell_split() {
        let f: Vec<u8> = (0..200u8).collect();
        let burst = segment_to_burst(Vci(9), &f, 100);
        assert_eq!(burst.cells(), &segment_to_cells(Vci(9), &f, 100)[..]);
        assert_eq!(burst.vci(), Vci(9));
        assert_eq!(burst.first_seq(), 100);
        assert_eq!(burst.len(), 5);
        assert!(burst.ends_frame());
        assert_eq!(burst.wire_bytes(), 5 * CELL_BYTES);
    }

    #[test]
    fn burst_gather_matches_cells_gather() {
        let header: Vec<u8> = (0u8..36).collect();
        let payload: Vec<u8> = (0u8..100).map(|i| i.wrapping_mul(7)).collect();
        let burst = burst_gather(Vci(3), &header, &payload, 5);
        assert_eq!(
            burst.cells(),
            &cells_gather(Vci(3), &header, &payload, 5)[..]
        );
    }

    #[test]
    fn from_cells_validates_invariants() {
        let cells = segment_to_cells(Vci(1), &frame(150, 7), 0);
        assert!(CellBurst::from_cells(cells.clone()).is_some());
        assert!(CellBurst::from_cells(vec![]).is_none(), "empty");
        let mut gap = cells.clone();
        gap.remove(1);
        assert!(CellBurst::from_cells(gap).is_none(), "seq gap");
        let mut mixed = cells.clone();
        mixed[1].vci = Vci(2);
        assert!(CellBurst::from_cells(mixed).is_none(), "mixed vci");
        let mut early_last = cells;
        early_last[0].last = true;
        assert!(CellBurst::from_cells(early_last).is_none(), "interior last");
    }

    #[test]
    fn split_runs_breaks_at_gaps_vci_changes_and_frame_ends() {
        let mut stream = segment_to_cells(Vci(1), &frame(100, 1), 0);
        stream.extend(segment_to_cells(Vci(1), &frame(100, 2), 3)); // Continues seq.
        stream.extend(segment_to_cells(Vci(2), &frame(48, 3), 0));
        let mut lossy = segment_to_cells(Vci(1), &frame(150, 4), 6);
        lossy.remove(1); // A gap mid-frame.
        stream.extend(lossy);
        let runs = CellBurst::split_runs(stream.clone());
        // Frame end splits the seq-contiguous VCI-1 frames; the gap splits
        // the lossy frame in two.
        assert_eq!(runs.len(), 5);
        assert!(runs[0].ends_frame() && runs[1].ends_frame());
        assert_eq!(runs[2].vci(), Vci(2));
        assert!(!runs[3].ends_frame() && runs[4].ends_frame());
        // Flattening the runs reproduces the stream exactly.
        let flat: Vec<Cell> = runs.into_iter().flat_map(CellBurst::into_cells).collect();
        assert_eq!(flat, stream);
    }

    #[test]
    fn dispatch_burst_matches_dispatch_cell_per_port() {
        let build = || {
            let (core, rxs) = SwitchCore::new(3, 64);
            core.route(Vci(7), 0, Vci(100));
            core.route_add(Vci(7), 1, Vci(101));
            core.route(Vci(8), 2, Vci(102));
            (core, rxs)
        };
        let bursts = vec![
            segment_to_burst(Vci(7), &frame(200, 1), 0),
            segment_to_burst(Vci(8), &frame(100, 2), 0),
            segment_to_burst(Vci(9), &frame(48, 3), 0), // Unroutable.
        ];
        let (scalar, scalar_rx) = build();
        for b in &bursts {
            for c in b.cells() {
                scalar.dispatch_cell(c.clone());
            }
        }
        let (batched, batched_rx) = build();
        for b in &bursts {
            batched.dispatch_burst(b);
        }
        for (s, b) in scalar_rx.iter().zip(batched_rx.iter()) {
            let sv: Vec<Cell> = std::iter::from_fn(|| s.try_recv()).collect();
            let bv: Vec<Cell> = std::iter::from_fn(|| b.try_recv()).collect();
            assert_eq!(sv, bv);
        }
        assert_eq!(
            scalar.counters().forwarded(),
            batched.counters().forwarded()
        );
        assert_eq!(
            scalar.counters().unroutable(),
            batched.counters().unroutable()
        );
        assert_eq!(scalar.counters().overflow(), batched.counters().overflow());
    }

    #[test]
    fn dispatch_burst_overflow_prefix_matches_scalar() {
        let burst = segment_to_burst(Vci(1), &frame(480, 9), 0); // 10 cells.
        let (scalar, s_rx) = SwitchCore::new(1, 4);
        scalar.route(Vci(1), 0, Vci(1));
        for c in burst.cells() {
            scalar.dispatch_cell(c.clone());
        }
        let (batched, b_rx) = SwitchCore::new(1, 4);
        batched.route(Vci(1), 0, Vci(1));
        batched.dispatch_burst(&burst);
        assert_eq!(scalar.counters().forwarded(), 4);
        assert_eq!(batched.counters().forwarded(), 4);
        assert_eq!(scalar.counters().overflow(), 6);
        assert_eq!(batched.counters().overflow(), 6);
        let sv: Vec<Cell> = std::iter::from_fn(|| s_rx[0].try_recv()).collect();
        let bv: Vec<Cell> = std::iter::from_fn(|| b_rx[0].try_recv()).collect();
        assert_eq!(sv, bv);
    }

    #[test]
    fn dispatch_burst_out_of_range_port_counts_whole_burst() {
        let (core, _rx) = SwitchCore::new(1, 8);
        core.route(Vci(1), 5, Vci(1)); // No such port.
        let burst = segment_to_burst(Vci(1), &frame(100, 1), 0);
        core.dispatch_burst(&burst);
        assert_eq!(core.counters().unroutable(), burst.len() as u64);
    }
}
