//! # pandora-atm — the simulated ATM network
//!
//! The substrate substitution for Pandora's dedicated ATM ring network
//! (§1.0; \[Hopper88\], \[McAuley90\] — see DESIGN.md §2):
//!
//! * [`Cell`] / [`Vci`] — 53-byte cells on virtual circuits; Pandora
//!   carries the destination's stream number in the VCI;
//! * [`segment_to_cells`] / [`Reassembler`] — frame segmentation and
//!   reassembly with whole-frame discard on cell loss;
//! * [`cells_gather`] / [`SlabReassembler`] — the zero-copy variants:
//!   scatter-gather segmentation straight from a header region plus a
//!   slab payload, and reassembly directly into slab regions;
//! * [`build_path`] / [`HopConfig`] — multi-hop paths with bandwidth,
//!   latency, seeded [`JitterModel`]s (including the paper's
//!   "2 ms usually, 20 ms under video load" bursty shape) and Bernoulli
//!   loss;
//! * [`Switch`] — a VCI-routed switch whose full output ports drop rather
//!   than stall other ports (Principle 5 at the fabric level);
//! * [`CellBurst`] / [`SwitchCore`] — the batched hot path: a segment's
//!   cells cross route lookup, fan-out and reassembly with one dispatch
//!   per burst, byte-identical to the per-cell path.

mod aal;
mod burst;
mod cell;
mod network;

pub use aal::{cells_gather, segment_to_cells, Reassembler, SlabReassembler};
pub use burst::{burst_gather, segment_to_burst, CellBurst, SwitchCore};
pub use cell::{Cell, Vci, CELL_BYTES, CELL_PAYLOAD};
pub use network::{
    build_duplex_path, build_path, build_path_controlled, cell_time, jitter_stage, loss_stage,
    DuplexPath, FabricCounters, HopConfig, JitterModel, PathControl, StageStats, Switch,
};
