//! The simulated ATM fabric: links, jitter/loss stages, switches.
//!
//! The clawback experiments need realistic network disturbance processes.
//! The models here reproduce the conditions the paper reports: "with our
//! network, the jitter is usually around 2ms, sometimes rising to 20ms if
//! there are large blocks of video being transmitted through the same
//! network interface" (§3.7.2), and the SuperJanet trial's multi-hop
//! "several networks and protocol conversions" path.

use std::cell::Cell as StdCell;
use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pandora_sim::{
    channel, link, link_controlled, LinkConfig, LinkControl, LinkSender, Receiver, SimDuration,
    Spawner,
};

use crate::cell::{Cell, Vci, CELL_BYTES};

/// A random extra-delay process applied to a FIFO stream.
#[derive(Debug, Clone, Copy)]
pub enum JitterModel {
    /// No jitter.
    None,
    /// Uniform extra delay in `[0, max]`.
    Uniform {
        /// Largest extra delay.
        max: SimDuration,
    },
    /// Mostly `base`-bounded uniform jitter with occasional bursts up to
    /// `burst` (probability `burst_prob` per item) — the "2ms usually,
    /// sometimes 20ms" shape of §3.7.2.
    Bursty {
        /// Usual jitter bound.
        base: SimDuration,
        /// Burst jitter bound.
        burst: SimDuration,
        /// Probability of a burst per item, in 0..=1.
        burst_prob: f64,
    },
}

impl JitterModel {
    fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform { max } => SimDuration(rng.gen_range(0..=max.as_nanos())),
            JitterModel::Bursty {
                base,
                burst,
                burst_prob,
            } => {
                if rng.gen_bool(burst_prob) {
                    SimDuration(
                        rng.gen_range(base.as_nanos()..=burst.as_nanos().max(base.as_nanos() + 1)),
                    )
                } else {
                    SimDuration(rng.gen_range(0..=base.as_nanos()))
                }
            }
        }
    }
}

/// Unified fabric/stage counters: one shared-handle struct counts items
/// through loss stages, switches and burst dispatch alike, so the switch
/// and the per-hop stats no longer carry parallel `forwarded` plumbing.
/// Cloning shares the underlying counters.
#[derive(Clone, Default)]
pub struct FabricCounters {
    forwarded: Rc<StdCell<u64>>,
    dropped: Rc<StdCell<u64>>,
    unroutable: Rc<StdCell<u64>>,
    overflow: Rc<StdCell<u64>>,
}

impl FabricCounters {
    /// Items passed through.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.get()
    }

    /// Items deliberately dropped (loss model).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Items dropped for lack of a route.
    pub fn unroutable(&self) -> u64 {
        self.unroutable.get()
    }

    /// Items dropped on full output queues.
    pub fn overflow(&self) -> u64 {
        self.overflow.get()
    }

    pub(crate) fn count_forwarded(&self, n: u64) {
        self.forwarded.set(self.forwarded.get() + n);
    }

    pub(crate) fn count_dropped(&self, n: u64) {
        self.dropped.set(self.dropped.get() + n);
    }

    pub(crate) fn count_unroutable(&self, n: u64) {
        self.unroutable.set(self.unroutable.get() + n);
    }

    pub(crate) fn count_overflow(&self, n: u64) {
        self.overflow.set(self.overflow.get() + n);
    }
}

/// Statistics of a network stage (the loss-relevant view of
/// [`FabricCounters`]).
pub type StageStats = FabricCounters;

/// Spawns a FIFO-preserving jitter stage: each item is delayed by a fresh
/// sample, but never reordered (delivery time is clamped to be monotonic,
/// like queueing behind cross-traffic).
pub fn jitter_stage<T: 'static>(
    spawner: &Spawner,
    name: &str,
    model: JitterModel,
    seed: u64,
    input: Receiver<T>,
) -> Receiver<T> {
    let (tx, rx) = channel::<T>();
    // Two subprocesses: a stamper that records every item's true arrival
    // time immediately (so jitter is measured from arrival, not from when
    // the delayer got around to it — otherwise jitter would accumulate
    // into unbounded delay), and a delayer that releases items at
    // max(arrival + sample, previous release) to stay FIFO.
    let (stamped_tx, stamped_rx) = pandora_sim::unbounded::<(pandora_sim::SimTime, T)>();
    spawner.spawn(&format!("jitter:{name}:stamp"), async move {
        while let Ok(item) = input.recv().await {
            if stamped_tx.send((pandora_sim::now(), item)).await.is_err() {
                return;
            }
        }
    });
    spawner.spawn(&format!("jitter:{name}"), async move {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut last_delivery = pandora_sim::SimTime::ZERO;
        while let Ok((arrival, item)) = stamped_rx.recv().await {
            let due = (arrival + model.sample(&mut rng)).max(last_delivery);
            pandora_sim::delay_until(due).await;
            last_delivery = due;
            if tx.send(item).await.is_err() {
                return;
            }
        }
    });
    rx
}

/// Spawns a Bernoulli loss stage dropping each item with probability `p`.
pub fn loss_stage<T: 'static>(
    spawner: &Spawner,
    name: &str,
    p: f64,
    seed: u64,
    input: Receiver<T>,
) -> (Receiver<T>, StageStats) {
    assert!((0.0..=1.0).contains(&p), "loss probability out of range");
    let (tx, rx) = channel::<T>();
    let stats = StageStats::default();
    let s = stats.clone();
    let name = format!("loss:{name}");
    spawner.spawn(&name, async move {
        let mut rng = SmallRng::seed_from_u64(seed);
        while let Ok(item) = input.recv().await {
            if rng.gen_bool(p) {
                s.count_dropped(1);
                continue;
            }
            s.count_forwarded(1);
            if tx.send(item).await.is_err() {
                return;
            }
        }
    });
    (rx, stats)
}

/// One hop of an ATM path: a bandwidth-limited cell link followed by
/// optional jitter and loss.
#[derive(Debug, Clone, Copy)]
pub struct HopConfig {
    /// Link rate in bits per second.
    pub bits_per_sec: u64,
    /// Propagation/processing latency of the hop.
    pub latency: SimDuration,
    /// Jitter process of the hop.
    pub jitter: JitterModel,
    /// Per-cell loss probability.
    pub loss: f64,
}

impl HopConfig {
    /// A clean hop at `bits_per_sec` with no latency, jitter or loss.
    pub fn clean(bits_per_sec: u64) -> Self {
        HopConfig {
            bits_per_sec,
            latency: SimDuration::ZERO,
            jitter: JitterModel::None,
            loss: 0.0,
        }
    }
}

/// Builds a multi-hop ATM path; returns the ingress sender, the egress
/// receiver and per-hop loss stats.
///
/// This is the E15 "SuperJanet" substrate: chain several hops with bursty
/// jitter to model a Cambridge-to-London path crossing "several networks
/// and protocol conversions".
pub fn build_path(
    spawner: &Spawner,
    name: &str,
    hops: &[HopConfig],
    seed: u64,
) -> (LinkSender<Cell>, Receiver<Cell>, Vec<StageStats>) {
    assert!(!hops.is_empty(), "a path needs at least one hop");
    let mut stats = Vec::new();
    let first = LinkConfig::new(leak_name(format!("{name}.0")), hops[0].bits_per_sec)
        .with_latency(hops[0].latency);
    let (ingress, mut rx) = link::<Cell>(spawner, first);
    rx = apply_disturbance(spawner, name, 0, &hops[0], seed, rx, &mut stats);
    for (i, hop) in hops.iter().enumerate().skip(1) {
        let cfg = LinkConfig::new(leak_name(format!("{name}.{i}")), hop.bits_per_sec)
            .with_latency(hop.latency);
        let (tx, next_rx) = link::<Cell>(spawner, cfg);
        // Pump between hops.
        let pump_in = rx;
        spawner.spawn(&format!("hop:{name}.{i}"), async move {
            while let Ok(cell) = pump_in.recv().await {
                if tx.send(cell).await.is_err() {
                    return;
                }
            }
        });
        rx = apply_disturbance(
            spawner,
            name,
            i,
            hop,
            seed.wrapping_add(i as u64),
            next_rx,
            &mut stats,
        );
    }
    (ingress, rx, stats)
}

struct PathCtlState {
    loss: StdCell<f64>,
    corrupt: StdCell<f64>,
    extra_delay_ns: StdCell<u64>,
    injected_drops: StdCell<u64>,
    injected_corruptions: StdCell<u64>,
}

/// Runtime fault-injection handle for a [`build_path_controlled`] path.
///
/// A fault plan can superimpose cell loss, payload corruption and a
/// latency step on the path's egress, and reach the per-hop
/// [`LinkControl`]s to flap links or collapse their bandwidth. All
/// randomness comes from the path's seeded generator, so a given plan
/// replays bit-identically.
#[derive(Clone)]
pub struct PathControl {
    state: Rc<PathCtlState>,
    links: Rc<Vec<LinkControl>>,
}

impl PathControl {
    /// Wraps already-built hop links in a control handle, for topologies
    /// that assemble their own links (the overlay's relay uplinks) but
    /// still want to register with `pandora-faults` as a named path. The
    /// egress disturbance knobs start at zero, exactly as
    /// [`build_path_controlled`] leaves them.
    pub fn from_links(links: Vec<LinkControl>) -> Self {
        PathControl::new(links)
    }

    fn new(links: Vec<LinkControl>) -> Self {
        PathControl {
            state: Rc::new(PathCtlState {
                loss: StdCell::new(0.0),
                corrupt: StdCell::new(0.0),
                extra_delay_ns: StdCell::new(0),
                injected_drops: StdCell::new(0),
                injected_corruptions: StdCell::new(0),
            }),
            links: Rc::new(links),
        }
    }

    /// Sets the superimposed Bernoulli cell-loss probability (0 disables).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0..=1`.
    pub fn set_loss(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.state.loss.set(p);
    }

    /// Sets the per-cell payload-corruption probability (0 disables).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0..=1`.
    pub fn set_corruption(&self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "corruption probability out of range"
        );
        self.state.corrupt.set(p);
    }

    /// Sets a constant extra delay at the path egress. Stepping this up
    /// then back down reproduces the §3.7.2 jitter step: a gap opens when
    /// the delay appears, and a burst drains when it is removed.
    pub fn set_extra_delay(&self, d: SimDuration) {
        self.state.extra_delay_ns.set(d.as_nanos());
    }

    /// Cells dropped by injected loss so far.
    pub fn injected_drops(&self) -> u64 {
        self.state.injected_drops.get()
    }

    /// Cells whose payload was corrupted so far.
    pub fn injected_corruptions(&self) -> u64 {
        self.state.injected_corruptions.get()
    }

    /// Control handle of hop `i`'s link, if the path has that many hops.
    pub fn link(&self, i: usize) -> Option<&LinkControl> {
        self.links.get(i)
    }

    /// Control handles of every hop link, in hop order.
    pub fn links(&self) -> &[LinkControl] {
        &self.links
    }
}

/// Like [`build_path`], but every hop link gets a [`LinkControl`] and the
/// egress carries a seeded fault stage, all reachable through the returned
/// [`PathControl`]. With the control untouched the path behaves identically
/// to [`build_path`] with the same seed.
pub fn build_path_controlled(
    spawner: &Spawner,
    name: &str,
    hops: &[HopConfig],
    seed: u64,
) -> (
    LinkSender<Cell>,
    Receiver<Cell>,
    Vec<StageStats>,
    PathControl,
) {
    assert!(!hops.is_empty(), "a path needs at least one hop");
    let mut stats = Vec::new();
    let mut link_ctls = Vec::new();
    let first = LinkConfig::new(leak_name(format!("{name}.0")), hops[0].bits_per_sec)
        .with_latency(hops[0].latency);
    let (ingress, mut rx, lc) = link_controlled::<Cell>(spawner, first);
    link_ctls.push(lc);
    rx = apply_disturbance(spawner, name, 0, &hops[0], seed, rx, &mut stats);
    for (i, hop) in hops.iter().enumerate().skip(1) {
        let cfg = LinkConfig::new(leak_name(format!("{name}.{i}")), hop.bits_per_sec)
            .with_latency(hop.latency);
        let (tx, next_rx, lc) = link_controlled::<Cell>(spawner, cfg);
        link_ctls.push(lc);
        let pump_in = rx;
        spawner.spawn(&format!("hop:{name}.{i}"), async move {
            while let Ok(cell) = pump_in.recv().await {
                if tx.send(cell).await.is_err() {
                    return;
                }
            }
        });
        rx = apply_disturbance(
            spawner,
            name,
            i,
            hop,
            seed.wrapping_add(i as u64),
            next_rx,
            &mut stats,
        );
    }
    let ctrl = PathControl::new(link_ctls);
    let rx = fault_stage(spawner, name, seed ^ 0xFA17, ctrl.clone(), rx);
    (ingress, rx, stats, ctrl)
}

/// The two directions of a [`build_duplex_path`] connection, from the
/// perspective of one endpoint: `a` holds the A-side ingress/egress,
/// `b` the B-side, with per-direction hop stats and fault controls.
pub struct DuplexPath {
    /// A-side sender (into the a→b direction).
    pub a_tx: LinkSender<Cell>,
    /// A-side receiver (egress of the b→a direction).
    pub a_rx: Receiver<Cell>,
    /// B-side sender (into the b→a direction).
    pub b_tx: LinkSender<Cell>,
    /// B-side receiver (egress of the a→b direction).
    pub b_rx: Receiver<Cell>,
    /// Per-hop loss stats of the a→b direction.
    pub a_to_b: Vec<StageStats>,
    /// Per-hop loss stats of the b→a direction.
    pub b_to_a: Vec<StageStats>,
    /// Fault-injection control of the a→b direction.
    pub a_to_b_ctrl: PathControl,
    /// Fault-injection control of the b→a direction.
    pub b_to_a_ctrl: PathControl,
}

/// Builds a full-duplex connection: two independent controlled paths with
/// the same hop profile, one per direction. The b→a direction derives its
/// seed from `seed` so a single seed reproduces the whole connection, yet
/// the two directions see independent disturbance processes.
pub fn build_duplex_path(
    spawner: &Spawner,
    name: &str,
    hops: &[HopConfig],
    seed: u64,
) -> DuplexPath {
    let (a_tx, b_rx, a_to_b, a_to_b_ctrl) =
        build_path_controlled(spawner, &format!("{name}.ab"), hops, seed);
    let (b_tx, a_rx, b_to_a, b_to_a_ctrl) =
        build_path_controlled(spawner, &format!("{name}.ba"), hops, seed ^ 0xDEAD);
    DuplexPath {
        a_tx,
        a_rx,
        b_tx,
        b_rx,
        a_to_b,
        b_to_a,
        a_to_b_ctrl,
        b_to_a_ctrl,
    }
}

/// The controllable egress disturbance of [`build_path_controlled`]:
/// seeded Bernoulli loss, payload corruption (one byte XORed, so the frame
/// fails to decode downstream rather than vanishing) and a constant extra
/// delay with FIFO-monotone release.
fn fault_stage(
    spawner: &Spawner,
    name: &str,
    seed: u64,
    ctrl: PathControl,
    input: Receiver<Cell>,
) -> Receiver<Cell> {
    let (tx, rx) = channel::<Cell>();
    // Same stamper/delayer split as `jitter_stage`: arrival times are
    // recorded immediately so a standing extra delay shifts cells by a
    // constant instead of compounding through the rendezvous chain.
    let (stamped_tx, stamped_rx) = pandora_sim::unbounded::<(pandora_sim::SimTime, Cell)>();
    spawner.spawn(&format!("faults:path:{name}:stamp"), async move {
        while let Ok(cell) = input.recv().await {
            if stamped_tx.send((pandora_sim::now(), cell)).await.is_err() {
                return;
            }
        }
    });
    spawner.spawn(&format!("faults:path:{name}"), async move {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut last_due = pandora_sim::SimTime::ZERO;
        while let Ok((arrival, mut cell)) = stamped_rx.recv().await {
            let loss = ctrl.state.loss.get();
            if loss > 0.0 && rng.gen_bool(loss) {
                ctrl.state
                    .injected_drops
                    .set(ctrl.state.injected_drops.get() + 1);
                continue;
            }
            let corrupt = ctrl.state.corrupt.get();
            if corrupt > 0.0 && rng.gen_bool(corrupt) && cell.payload_len > 0 {
                let i = rng.gen_range(0..cell.payload_len as usize);
                cell.payload[i] ^= 0xFF;
                ctrl.state
                    .injected_corruptions
                    .set(ctrl.state.injected_corruptions.get() + 1);
            }
            let extra = ctrl.state.extra_delay_ns.get();
            let due = (arrival + SimDuration(extra)).max(last_due);
            if due > pandora_sim::now() {
                pandora_sim::delay_until(due).await;
            }
            last_due = due;
            if tx.send(cell).await.is_err() {
                return;
            }
        }
    });
    rx
}

fn apply_disturbance(
    spawner: &Spawner,
    name: &str,
    index: usize,
    hop: &HopConfig,
    seed: u64,
    mut rx: Receiver<Cell>,
    stats: &mut Vec<StageStats>,
) -> Receiver<Cell> {
    if !matches!(hop.jitter, JitterModel::None) {
        rx = jitter_stage(
            spawner,
            &format!("{name}.{index}"),
            hop.jitter,
            seed ^ 0xA5A5,
            rx,
        );
    }
    if hop.loss > 0.0 {
        let (lrx, s) = loss_stage(
            spawner,
            &format!("{name}.{index}"),
            hop.loss,
            seed ^ 0x5A5A,
            rx,
        );
        stats.push(s);
        lrx
    } else {
        stats.push(StageStats::default());
        rx
    }
}

// LinkConfig wants a &'static str name; paths are built once per
// simulation, so leaking the handful of hop names is fine.
fn leak_name(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

// Each routed VCI carries a list of copy destinations: (output port,
// rewritten VCI).
pub(crate) type RouteTable = Rc<RefCell<std::collections::HashMap<Vci, Vec<(usize, Vci)>>>>;

/// A VCI-routed cell switch (the ATM ring / switch fabric stand-in).
///
/// Cells arriving on any input port are forwarded to the ports given by the
/// routing table, optionally rewriting the VCI. A VCI may carry several
/// copy destinations (fabric-level tannoy splitting): each installed copy
/// is forwarded independently. Unroutable cells are dropped and counted.
/// Output ports have bounded queues: a full port drops cells (counting
/// them) rather than stalling other ports — Principle 5 at the fabric
/// level, and Principle 5 again between the copies of a multicast VCI.
pub struct Switch {
    core: crate::burst::SwitchCore,
}

impl Switch {
    /// Spawns a switch over the given input ports; returns the handle and
    /// one receiver per output port.
    ///
    /// `port_queue` bounds each output port's queue in cells.
    pub fn spawn(
        spawner: &Spawner,
        name: &str,
        inputs: Vec<Receiver<Cell>>,
        output_ports: usize,
        port_queue: usize,
    ) -> (Switch, Vec<Receiver<Cell>>) {
        let (core, port_rxs) = crate::burst::SwitchCore::new(output_ports, port_queue);
        let task_core = core.clone();
        spawner.spawn(&format!("switch:{name}"), async move {
            loop {
                let guards: Vec<&Receiver<Cell>> = inputs.iter().collect();
                let Some(Ok((_port, cell))) = pandora_sim::alt_many(&guards).await else {
                    return;
                };
                task_core.dispatch_cell(cell);
            }
        });
        (Switch { core }, port_rxs)
    }

    /// Spawns a burst-mode switch: inputs carry whole [`CellBurst`]s and
    /// each one crosses the fabric with a single dispatch (one route
    /// lookup, bulk per-port appends, bulk counter updates). Outputs stay
    /// per-cell so downstream consumers are unchanged; port-by-port the
    /// cell stream is byte-identical to [`Switch::spawn`] fed the bursts'
    /// cells in the same arrival order.
    pub fn spawn_bursts(
        spawner: &Spawner,
        name: &str,
        inputs: Vec<Receiver<crate::burst::CellBurst>>,
        output_ports: usize,
        port_queue: usize,
    ) -> (Switch, Vec<Receiver<Cell>>) {
        let (core, port_rxs) = crate::burst::SwitchCore::new(output_ports, port_queue);
        let task_core = core.clone();
        spawner.spawn(&format!("switch:{name}"), async move {
            loop {
                let guards: Vec<&Receiver<crate::burst::CellBurst>> = inputs.iter().collect();
                let Some(Ok((_port, burst))) = pandora_sim::alt_many(&guards).await else {
                    return;
                };
                task_core.dispatch_burst(&burst);
            }
        });
        (Switch { core }, port_rxs)
    }

    /// Installs (or replaces) a unicast route: cells on `vci` go to `port`
    /// with their VCI rewritten to `out_vci`. Any previously installed
    /// copies of the VCI are dropped.
    pub fn route(&self, vci: Vci, port: usize, out_vci: Vci) {
        self.core.route(vci, port, out_vci);
    }

    /// Adds one more copy destination for `vci` (fabric-level splitting:
    /// the tannoy grows without touching the VCI's existing copies, so
    /// ongoing listeners never glitch — Principle 6). Duplicate copies are
    /// ignored.
    pub fn route_add(&self, vci: Vci, port: usize, out_vci: Vci) {
        self.core.route_add(vci, port, out_vci);
    }

    /// Removes the copies of `vci` going to `port`; copies toward other
    /// ports keep flowing undisturbed.
    pub fn route_remove(&self, vci: Vci, port: usize) {
        let table = self.core.table();
        let mut table = table.borrow_mut();
        if let Some(routes) = table.get_mut(&vci) {
            routes.retain(|&(p, _)| p != port);
            if routes.is_empty() {
                table.remove(&vci);
            }
        }
    }

    /// Removes a VCI's routes entirely.
    pub fn unroute(&self, vci: Vci) {
        self.core.table().borrow_mut().remove(&vci);
    }

    /// Removes every leg toward `port` — the dead-attachment teardown:
    /// when an endpoint crashes, all fan-out copies aimed at it come out
    /// of the table in one pass while every other port's legs keep
    /// flowing (Principle 6). Returns the VCIs that lost legs, in
    /// ascending order so callers act on them deterministically.
    pub fn unroute_port(&self, port: usize) -> Vec<Vci> {
        let table = self.core.table();
        let mut table = table.borrow_mut();
        let mut touched: Vec<Vci> = Vec::new();
        for (&vci, routes) in table.iter_mut() {
            let before = routes.len();
            routes.retain(|&(p, _)| p != port);
            if routes.len() != before {
                touched.push(vci);
            }
        }
        for vci in &touched {
            if table.get(vci).is_some_and(|r| r.is_empty()) {
                table.remove(vci);
            }
        }
        touched.sort_by_key(|v| v.0);
        touched
    }

    /// Number of installed legs toward `port` — the recovery suite's
    /// "no routes left toward the dead box" assertion.
    pub fn port_route_count(&self, port: usize) -> usize {
        self.core
            .table()
            .borrow()
            .values()
            .map(|routes| routes.iter().filter(|&&(p, _)| p == port).count())
            .sum()
    }

    /// The switch's unified counters.
    pub fn counters(&self) -> &FabricCounters {
        self.core.counters()
    }

    /// Cells forwarded.
    pub fn forwarded(&self) -> u64 {
        self.core.counters().forwarded()
    }

    /// Cells dropped for lack of a route.
    pub fn unroutable(&self) -> u64 {
        self.core.counters().unroutable()
    }

    /// Cells dropped on full output ports.
    pub fn overflow(&self) -> u64 {
        self.core.counters().overflow()
    }
}

/// Time to transmit one cell at `bits_per_sec`.
pub fn cell_time(bits_per_sec: u64) -> SimDuration {
    SimDuration(((CELL_BYTES as u128 * 8 * 1_000_000_000) / bits_per_sec as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{SimTime, Simulation};
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn cell_time_math() {
        // 53 bytes at 100Mbit/s = 4.24us.
        assert_eq!(cell_time(100_000_000), SimDuration::from_nanos(4_240));
    }

    #[test]
    fn clean_path_delivers_in_order() {
        let mut sim = Simulation::new();
        let (tx, rx, _stats) = build_path(&sim.spawner(), "p", &[HopConfig::clean(100_000_000)], 1);
        sim.spawn("send", async move {
            for i in 0..10 {
                tx.send(Cell::new(Vci(1), i, false, &[i as u8]))
                    .await
                    .unwrap();
            }
        });
        let got = Rc::new(StdRefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn("recv", async move {
            for _ in 0..10 {
                let cell = rx.recv().await.unwrap();
                g.borrow_mut().push(cell.seq);
            }
        });
        sim.run_until_idle();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_delays_but_preserves_order() {
        let mut sim = Simulation::new();
        let (tx, rx0, _stats) = build_path(
            &sim.spawner(),
            "p",
            &[HopConfig {
                bits_per_sec: 100_000_000,
                latency: SimDuration::ZERO,
                jitter: JitterModel::Uniform {
                    max: SimDuration::from_millis(5),
                },
                loss: 0.0,
            }],
            42,
        );
        sim.spawn("send", async move {
            for i in 0..50 {
                tx.send(Cell::new(Vci(1), i, false, &[])).await.unwrap();
                pandora_sim::delay(SimDuration::from_millis(2)).await;
            }
        });
        let seqs = Rc::new(StdRefCell::new(Vec::new()));
        let times = Rc::new(StdRefCell::new(Vec::new()));
        let (s, t) = (seqs.clone(), times.clone());
        sim.spawn("recv", async move {
            while let Ok(c) = rx0.recv().await {
                s.borrow_mut().push(c.seq);
                t.borrow_mut().push(pandora_sim::now());
            }
        });
        sim.run_until_idle();
        let seqs = seqs.borrow();
        assert_eq!(seqs.len(), 50);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "order violated");
        // Some jitter must actually have occurred.
        let times = times.borrow();
        let deviations: Vec<i64> = times
            .iter()
            .enumerate()
            .map(|(i, t)| t.as_nanos() as i64 - (i as i64) * 2_000_000)
            .collect();
        let min = deviations.iter().min().unwrap();
        let max = deviations.iter().max().unwrap();
        assert!(max - min > 1_000_000, "jitter spread {}ns", max - min);
    }

    #[test]
    fn loss_stage_drops_expected_fraction() {
        let mut sim = Simulation::new();
        let (tx, rx0, stats) = build_path(
            &sim.spawner(),
            "p",
            &[HopConfig {
                bits_per_sec: 1_000_000_000,
                latency: SimDuration::ZERO,
                jitter: JitterModel::None,
                loss: 0.1,
            }],
            7,
        );
        sim.spawn("send", async move {
            for i in 0..2_000 {
                tx.send(Cell::new(Vci(1), i, false, &[])).await.unwrap();
            }
        });
        let n = Rc::new(StdCell::new(0u64));
        let nn = n.clone();
        sim.spawn("recv", async move {
            while rx0.recv().await.is_ok() {
                nn.set(nn.get() + 1);
            }
        });
        sim.run_until_idle();
        let delivered = n.get();
        assert!(
            (1_700..=1_900).contains(&delivered),
            "delivered {delivered}"
        );
        assert_eq!(stats[0].dropped() + stats[0].forwarded(), 2_000);
    }

    #[test]
    fn switch_routes_by_vci() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<Cell>();
        let (sw, mut outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 2, 64);
        sw.route(Vci(1), 0, Vci(101));
        sw.route(Vci(2), 1, Vci(102));
        sim.spawn("send", async move {
            in_tx.send(Cell::new(Vci(1), 0, true, &[1])).await.unwrap();
            in_tx.send(Cell::new(Vci(2), 0, true, &[2])).await.unwrap();
            in_tx.send(Cell::new(Vci(3), 0, true, &[3])).await.unwrap(); // No route.
        });
        sim.run_until_idle();
        let p1 = outs.remove(1);
        let p0 = outs.remove(0);
        let c0 = p0.try_recv().unwrap();
        assert_eq!(c0.vci, Vci(101));
        assert_eq!(c0.data(), &[1]);
        let c1 = p1.try_recv().unwrap();
        assert_eq!(c1.vci, Vci(102));
        assert_eq!(sw.unroutable(), 1);
        assert_eq!(sw.forwarded(), 2);
    }

    #[test]
    fn unroute_port_tears_down_only_the_dead_legs() {
        let sim = Simulation::new();
        let (_in_tx, in_rx) = channel::<Cell>();
        let (sw, _outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 3, 64);
        sw.route(Vci(10), 0, Vci(10));
        sw.route_add(Vci(10), 2, Vci(10)); // A split: ports 0 and 2.
        sw.route(Vci(11), 2, Vci(11)); // Unicast to the dying port.
        sw.route(Vci(12), 1, Vci(12)); // Unrelated.
        assert_eq!(sw.port_route_count(2), 2);
        let touched = sw.unroute_port(2);
        assert_eq!(touched, vec![Vci(10), Vci(11)], "ascending VCI order");
        assert_eq!(sw.port_route_count(2), 0);
        // The split kept its surviving leg; the unicast is gone whole.
        assert_eq!(sw.port_route_count(0), 1);
        assert_eq!(sw.port_route_count(1), 1);
        assert_eq!(sw.unroute_port(2), Vec::<Vci>::new(), "idempotent");
        let _ = sim; // The table edits need no scheduling.
    }

    #[test]
    fn switch_full_port_drops_without_stalling_others() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<Cell>();
        let (sw, mut outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 2, 2);
        sw.route(Vci(1), 0, Vci(1)); // Nobody drains port 0.
        sw.route(Vci(2), 1, Vci(2));
        sim.spawn("send", async move {
            for i in 0..10 {
                in_tx.send(Cell::new(Vci(1), i, false, &[])).await.unwrap();
                in_tx.send(Cell::new(Vci(2), i, false, &[])).await.unwrap();
            }
        });
        let delivered = Rc::new(StdCell::new(0u32));
        let d = delivered.clone();
        let p1 = outs.remove(1);
        sim.spawn("drain1", async move {
            while p1.recv().await.is_ok() {
                d.set(d.get() + 1);
            }
        });
        sim.run_until_idle();
        // Port 1 saw all its cells despite port 0 being wedged.
        assert_eq!(delivered.get(), 10);
        assert_eq!(sw.overflow(), 10 - 2, "port 0 kept 2, dropped 8");
    }

    #[test]
    fn switch_multicast_copies_to_every_port() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<Cell>();
        let (sw, mut outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 3, 64);
        sw.route(Vci(7), 0, Vci(100));
        sw.route_add(Vci(7), 1, Vci(101));
        sw.route_add(Vci(7), 2, Vci(102));
        sw.route_add(Vci(7), 2, Vci(102)); // Duplicate copy: ignored.
        sim.spawn("send", async move {
            in_tx.send(Cell::new(Vci(7), 0, true, &[9])).await.unwrap();
        });
        sim.run_until_idle();
        let p2 = outs.remove(2);
        let p1 = outs.remove(1);
        let p0 = outs.remove(0);
        assert_eq!(p0.try_recv().unwrap().vci, Vci(100));
        assert_eq!(p1.try_recv().unwrap().vci, Vci(101));
        let c2 = p2.try_recv().unwrap();
        assert_eq!(c2.vci, Vci(102));
        assert!(p2.try_recv().is_none(), "duplicate copy forwarded");
        assert_eq!(sw.forwarded(), 3);
    }

    #[test]
    fn switch_route_remove_leaves_other_copies() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<Cell>();
        let (sw, mut outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 2, 64);
        sw.route(Vci(7), 0, Vci(100));
        sw.route_add(Vci(7), 1, Vci(101));
        sw.route_remove(Vci(7), 0);
        sim.spawn("send", async move {
            in_tx.send(Cell::new(Vci(7), 0, true, &[])).await.unwrap();
        });
        sim.run_until_idle();
        let p1 = outs.remove(1);
        let p0 = outs.remove(0);
        assert!(p0.try_recv().is_none(), "removed copy still forwarded");
        assert_eq!(p1.try_recv().unwrap().vci, Vci(101));
        // Removing the last copy drops the VCI entirely.
        sw.route_remove(Vci(7), 1);
        assert_eq!(sw.forwarded(), 1);
    }

    #[test]
    fn duplex_path_carries_both_directions() {
        let mut sim = Simulation::new();
        let d = build_duplex_path(&sim.spawner(), "d", &[HopConfig::clean(100_000_000)], 3);
        let (a_tx, b_tx) = (d.a_tx, d.b_tx);
        sim.spawn("a-send", async move {
            a_tx.send(Cell::new(Vci(1), 0, true, &[1])).await.unwrap();
        });
        sim.spawn("b-send", async move {
            b_tx.send(Cell::new(Vci(2), 0, true, &[2])).await.unwrap();
        });
        let got = Rc::new(StdRefCell::new(Vec::new()));
        let (g1, g2) = (got.clone(), got.clone());
        let (a_rx, b_rx) = (d.a_rx, d.b_rx);
        sim.spawn("a-recv", async move {
            if let Ok(c) = a_rx.recv().await {
                g1.borrow_mut().push(c.vci);
            }
        });
        sim.spawn("b-recv", async move {
            if let Ok(c) = b_rx.recv().await {
                g2.borrow_mut().push(c.vci);
            }
        });
        sim.run_until_idle();
        let mut got = got.borrow().clone();
        got.sort();
        assert_eq!(got, vec![Vci(1), Vci(2)]);
    }

    #[test]
    fn unroute_stops_forwarding() {
        let mut sim = Simulation::new();
        let (in_tx, in_rx) = channel::<Cell>();
        let (sw, _outs) = Switch::spawn(&sim.spawner(), "s", vec![in_rx], 1, 8);
        sw.route(Vci(1), 0, Vci(1));
        sw.unroute(Vci(1));
        sim.spawn("send", async move {
            in_tx.send(Cell::new(Vci(1), 0, true, &[])).await.unwrap();
        });
        sim.run_until_idle();
        assert_eq!(sw.unroutable(), 1);
    }

    #[test]
    fn bursty_jitter_mostly_small_sometimes_large() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = JitterModel::Bursty {
            base: SimDuration::from_millis(2),
            burst: SimDuration::from_millis(20),
            burst_prob: 0.05,
        };
        let samples: Vec<u64> = (0..10_000)
            .map(|_| model.sample(&mut rng).as_nanos())
            .collect();
        let big = samples.iter().filter(|&&s| s > 2_000_000).count();
        assert!((300..=800).contains(&big), "bursts: {big}");
        assert!(samples.iter().any(|&s| s > 15_000_000));
    }

    #[test]
    fn controlled_path_injects_loss_and_corruption() {
        let mut sim = Simulation::new();
        let (tx, rx, _stats, ctrl) =
            build_path_controlled(&sim.spawner(), "p", &[HopConfig::clean(1_000_000_000)], 11);
        ctrl.set_loss(0.2);
        ctrl.set_corruption(0.1);
        sim.spawn("send", async move {
            for i in 0..2_000 {
                tx.send(Cell::new(Vci(1), i, false, &[0u8; 16]))
                    .await
                    .unwrap();
            }
        });
        let delivered = Rc::new(StdCell::new(0u64));
        let flipped = Rc::new(StdCell::new(0u64));
        let (d, f) = (delivered.clone(), flipped.clone());
        sim.spawn("recv", async move {
            while let Ok(c) = rx.recv().await {
                d.set(d.get() + 1);
                if c.data().iter().any(|&b| b != 0) {
                    f.set(f.get() + 1);
                }
            }
        });
        sim.run_until_idle();
        assert_eq!(delivered.get() + ctrl.injected_drops(), 2_000);
        assert!(
            (300..=500).contains(&ctrl.injected_drops()),
            "drops = {}",
            ctrl.injected_drops()
        );
        assert_eq!(flipped.get(), ctrl.injected_corruptions());
        assert!(ctrl.injected_corruptions() > 100);
    }

    #[test]
    fn controlled_path_untouched_matches_plain_path() {
        let run = |controlled: bool| {
            let mut sim = Simulation::new();
            let hop = HopConfig {
                bits_per_sec: 100_000_000,
                latency: SimDuration::from_millis(1),
                jitter: JitterModel::Uniform {
                    max: SimDuration::from_millis(2),
                },
                loss: 0.05,
            };
            let (tx, rx) = if controlled {
                let (tx, rx, _s, _c) = build_path_controlled(&sim.spawner(), "p", &[hop], 99);
                (tx, rx)
            } else {
                let (tx, rx, _s) = build_path(&sim.spawner(), "p", &[hop], 99);
                (tx, rx)
            };
            sim.spawn("send", async move {
                for i in 0..500 {
                    let _ = tx.send(Cell::new(Vci(1), i, false, &[])).await;
                }
            });
            let log = Rc::new(StdRefCell::new(Vec::new()));
            let l = log.clone();
            sim.spawn("recv", async move {
                while let Ok(c) = rx.recv().await {
                    l.borrow_mut().push((pandora_sim::now(), c.seq));
                }
            });
            sim.run_until_idle();
            Rc::try_unwrap(log).expect("log shared").into_inner()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn extra_delay_step_shifts_then_bursts() {
        let mut sim = Simulation::new();
        let (tx, rx, _stats, ctrl) =
            build_path_controlled(&sim.spawner(), "p", &[HopConfig::clean(1_000_000_000)], 5);
        sim.spawn("send", async move {
            for i in 0..100 {
                let _ = tx.send(Cell::new(Vci(1), i, false, &[])).await;
                pandora_sim::delay(SimDuration::from_millis(1)).await;
            }
        });
        let times = Rc::new(StdRefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("recv", async move {
            while let Ok(c) = rx.recv().await {
                t.borrow_mut().push((c.seq, pandora_sim::now().as_millis()));
            }
        });
        sim.run_until(SimTime::from_millis(20));
        ctrl.set_extra_delay(SimDuration::from_millis(10));
        sim.run_until(SimTime::from_millis(50));
        ctrl.set_extra_delay(SimDuration::ZERO);
        sim.run_until_idle();
        let times = times.borrow();
        assert_eq!(times.len(), 100);
        // Cell 30 sent at 30ms lands ~40ms; after the revert the backlog
        // drains and late cells return to ~send time.
        let at = |seq: u32| times.iter().find(|&&(s, _)| s == seq).map(|&(_, t)| t);
        assert!(
            at(30).is_some_and(|t| (39..=42).contains(&t)),
            "{:?}",
            at(30)
        );
        assert!(
            at(90).is_some_and(|t| (90..=93).contains(&t)),
            "{:?}",
            at(90)
        );
    }

    #[test]
    fn path_link_flap_reachable_through_control() {
        let mut sim = Simulation::new();
        let (tx, rx, _stats, ctrl) =
            build_path_controlled(&sim.spawner(), "p", &[HopConfig::clean(1_000_000_000)], 5);
        sim.spawn("send", async move {
            for i in 0..10 {
                let _ = tx.send(Cell::new(Vci(1), i, false, &[])).await;
                pandora_sim::delay(SimDuration::from_millis(1)).await;
            }
        });
        let n = Rc::new(StdCell::new(0u64));
        let nn = n.clone();
        sim.spawn("recv", async move {
            while rx.recv().await.is_ok() {
                nn.set(nn.get() + 1);
            }
        });
        sim.run_until(SimTime::from_millis(3));
        let got_at_down = n.get();
        ctrl.link(0).expect("hop 0").set_up(false);
        sim.run_until(SimTime::from_millis(8));
        assert_eq!(n.get(), got_at_down, "no delivery while hop is down");
        ctrl.link(0).expect("hop 0").set_up(true);
        sim.run_until_idle();
        assert_eq!(n.get(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        let sim = Simulation::new();
        let _ = build_path(&sim.spawner(), "p", &[], 0);
    }

    #[test]
    fn multihop_latency_accumulates() {
        let mut sim = Simulation::new();
        let hop = HopConfig {
            bits_per_sec: 1_000_000_000,
            latency: SimDuration::from_millis(1),
            jitter: JitterModel::None,
            loss: 0.0,
        };
        let (tx, rx, _) = build_path(&sim.spawner(), "p", &[hop, hop, hop, hop], 1);
        sim.spawn("send", async move {
            tx.send(Cell::new(Vci(1), 0, true, &[])).await.unwrap();
        });
        let at = Rc::new(StdCell::new(SimTime::ZERO));
        let a = at.clone();
        sim.spawn("recv", async move {
            rx.recv().await.unwrap();
            a.set(pandora_sim::now());
        });
        sim.run_until_idle();
        assert!(
            at.get() >= SimTime::from_millis(4),
            "arrived at {}",
            at.get()
        );
    }
}
