//! ATM cells and virtual circuit identifiers.
//!
//! Pandora's boxes communicate over a dedicated ATM network (§1.0, §1.1);
//! "incoming streams from the network carry the stream number allocated by
//! the destination box in their VCIs" (§3.4). Cells are the classic
//! 53-byte format: a 5-byte header and 48 bytes of payload.

use pandora_segment::StreamId;

/// Bytes per ATM cell on the wire.
pub const CELL_BYTES: usize = 53;
/// Payload bytes per cell.
pub const CELL_PAYLOAD: usize = 48;

/// A virtual circuit identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vci(pub u32);

impl Vci {
    /// Pandora's convention: the VCI carries the destination's stream
    /// number.
    pub fn from_stream(stream: StreamId) -> Vci {
        Vci(stream.0)
    }

    /// The stream number this VCI denotes at the destination box.
    pub fn stream(self) -> StreamId {
        StreamId(self.0)
    }
}

impl std::fmt::Display for Vci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vci{}", self.0)
    }
}

/// One ATM cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The circuit this cell belongs to.
    pub vci: Vci,
    /// Per-VCI cell counter, used by reassembly to detect loss.
    pub seq: u32,
    /// Marks the final cell of a higher-level frame (AAL5-style).
    pub last: bool,
    /// Payload bytes (only the first `payload_len` are meaningful).
    pub payload: [u8; CELL_PAYLOAD],
    /// Number of meaningful payload bytes.
    pub payload_len: u8,
}

impl Cell {
    /// Builds a cell from up to 48 payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the cell payload size.
    pub fn new(vci: Vci, seq: u32, last: bool, data: &[u8]) -> Cell {
        assert!(
            data.len() <= CELL_PAYLOAD,
            "cell payload too large: {}",
            data.len()
        );
        let mut payload = [0u8; CELL_PAYLOAD];
        payload[..data.len()].copy_from_slice(data);
        Cell {
            vci,
            seq,
            last,
            payload,
            payload_len: data.len() as u8,
        }
    }

    /// The meaningful payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.payload[..self.payload_len as usize]
    }
}

impl pandora_sim::WireSize for Cell {
    fn wire_bytes(&self) -> usize {
        CELL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::WireSize;

    #[test]
    fn vci_stream_round_trip() {
        let v = Vci::from_stream(StreamId(17));
        assert_eq!(v.stream(), StreamId(17));
        assert_eq!(v.to_string(), "vci17");
    }

    #[test]
    fn cell_holds_payload() {
        let c = Cell::new(Vci(1), 5, true, &[1, 2, 3]);
        assert_eq!(c.data(), &[1, 2, 3]);
        assert!(c.last);
        assert_eq!(c.wire_bytes(), 53);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_payload_panics() {
        let _ = Cell::new(Vci(1), 0, false, &[0u8; 49]);
    }

    #[test]
    fn full_payload_accepted() {
        let c = Cell::new(Vci(1), 0, false, &[7u8; 48]);
        assert_eq!(c.data().len(), 48);
    }
}
