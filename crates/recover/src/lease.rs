//! Controller-held leases renewed by heartbeats on the command path.
//!
//! Each attached box holds a lease the controller's probe task renews by
//! a Ping/Pong exchange (Principle 4: commands travel ahead of data, so
//! a live data path implies a live lease path). The lease itself is a
//! pure counter machine — the probe task owns all timing, asking the
//! lease how long to wait before the next probe ([`Lease::next_probe_in`]
//! backs off exponentially while renewals are missing) and reporting
//! each outcome through [`Lease::renew`] / [`Lease::miss`].
//!
//! State walk: `Live --misses>=suspect_after--> Suspect
//! --misses>=dead_after--> Dead --renewal--> Live` (a revival). The
//! transitions are returned as [`LeaseEvent`]s so the caller can run
//! reconvergence exactly once per death and rejoin exactly once per
//! revival.

use std::collections::BTreeMap;

use pandora_sim::SimDuration;

/// Lease/heartbeat tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Nominal renewal interval — the probe cadence while the lease is
    /// live and every renewal succeeds.
    pub interval: SimDuration,
    /// Consecutive missed renewals before the lease turns `Suspect`.
    pub suspect_after: u32,
    /// Consecutive missed renewals before the lease turns `Dead`.
    /// Must be at least `suspect_after`.
    pub dead_after: u32,
    /// Upper bound on the backed-off probe interval. Probing continues
    /// past death at this capped cadence, watching for a restart.
    pub backoff_cap: SimDuration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            interval: SimDuration::from_millis(100),
            suspect_after: 2,
            dead_after: 4,
            backoff_cap: SimDuration::from_millis(800),
        }
    }
}

/// Where a lease stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Renewals arriving on cadence.
    Live,
    /// Renewals missing, not yet long enough to declare death.
    Suspect,
    /// Renewals missing past `dead_after` — reconvergence has the floor.
    Dead,
}

impl LeaseState {
    /// Canonical lowercase name, for digests and state timelines.
    pub fn name(self) -> &'static str {
        match self {
            LeaseState::Live => "live",
            LeaseState::Suspect => "suspect",
            LeaseState::Dead => "dead",
        }
    }
}

/// A state transition worth acting on, returned by [`Lease::renew`] and
/// [`Lease::miss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseEvent {
    /// `Live → Suspect`: start watching closely (and backing off).
    Suspected,
    /// `Suspect → Dead`: run crash reconvergence.
    Died,
    /// `Suspect|Dead → Live`: the box is back; if it was dead, run the
    /// rejoin path (stale-state cleanup, then normal re-admission).
    Revived {
        /// Whether the lease was `Dead` (a true rejoin) rather than
        /// merely `Suspect` (a blip that never reached reconvergence).
        was_dead: bool,
    },
}

/// One endpoint's lease.
#[derive(Debug, Clone)]
pub struct Lease {
    config: LeaseConfig,
    state: LeaseState,
    misses: u32,
    renewals: u64,
    missed_total: u64,
    deaths: u64,
    revivals: u64,
}

impl Lease {
    /// A fresh, live lease.
    ///
    /// # Panics
    ///
    /// Panics if `dead_after < suspect_after` or either is zero — such a
    /// lease could die before it suspects, or die instantly.
    pub fn new(config: LeaseConfig) -> Lease {
        assert!(
            config.suspect_after > 0 && config.dead_after >= config.suspect_after,
            "lease thresholds must satisfy 0 < suspect_after <= dead_after"
        );
        Lease {
            config,
            state: LeaseState::Live,
            misses: 0,
            renewals: 0,
            missed_total: 0,
            deaths: 0,
            revivals: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> LeaseState {
        self.state
    }

    /// Consecutive misses in the current bad streak (0 while live).
    pub fn misses(&self) -> u32 {
        self.misses
    }

    /// Renewals accepted over the lease's lifetime.
    pub fn renewals(&self) -> u64 {
        self.renewals
    }

    /// Total missed renewals over the lease's lifetime.
    pub fn missed_total(&self) -> u64 {
        self.missed_total
    }

    /// Times the lease died.
    pub fn deaths(&self) -> u64 {
        self.deaths
    }

    /// Times the lease revived from suspect or dead.
    pub fn revivals(&self) -> u64 {
        self.revivals
    }

    /// A successful renewal: resets the miss streak; reports a revival
    /// if the lease was suspect or dead.
    pub fn renew(&mut self) -> Option<LeaseEvent> {
        self.renewals += 1;
        self.misses = 0;
        match self.state {
            LeaseState::Live => None,
            LeaseState::Suspect | LeaseState::Dead => {
                let was_dead = self.state == LeaseState::Dead;
                self.state = LeaseState::Live;
                self.revivals += 1;
                Some(LeaseEvent::Revived { was_dead })
            }
        }
    }

    /// A missed renewal: advances the miss streak and reports the
    /// suspect/death threshold crossings exactly once each.
    pub fn miss(&mut self) -> Option<LeaseEvent> {
        self.missed_total += 1;
        self.misses = self.misses.saturating_add(1);
        match self.state {
            LeaseState::Live if self.misses >= self.config.suspect_after => {
                self.state = LeaseState::Suspect;
                // A degenerate config (suspect_after == dead_after) dies
                // on the same miss; the death event wins.
                if self.misses >= self.config.dead_after {
                    self.state = LeaseState::Dead;
                    self.deaths += 1;
                    return Some(LeaseEvent::Died);
                }
                Some(LeaseEvent::Suspected)
            }
            LeaseState::Suspect if self.misses >= self.config.dead_after => {
                self.state = LeaseState::Dead;
                self.deaths += 1;
                Some(LeaseEvent::Died)
            }
            _ => None,
        }
    }

    /// How long the probe should wait before the next renewal attempt:
    /// the nominal interval while renewals succeed, doubling per
    /// consecutive miss (exponential backoff), capped at
    /// `backoff_cap`. Probing never stops — a dead lease is probed at
    /// the cap so a restarted box is noticed.
    pub fn next_probe_in(&self) -> SimDuration {
        let base = self.config.interval.as_nanos();
        let cap = self.config.backoff_cap.as_nanos().max(base);
        let shift = self.misses.min(20);
        let backed_off = base.saturating_mul(1u64 << shift);
        SimDuration(backed_off.min(cap))
    }

    /// One-line digest of the lease's counters, for replay assertions.
    pub fn digest(&self) -> String {
        format!(
            "state={} renewals={} missed={} deaths={} revivals={}",
            self.state.name(),
            self.renewals,
            self.missed_total,
            self.deaths,
            self.revivals
        )
    }
}

/// The controller's leases, keyed by endpoint id. A `BTreeMap` keeps
/// iteration order deterministic — probe scheduling and digests must not
/// depend on hash order.
#[derive(Debug, Default)]
pub struct LeaseTable {
    leases: BTreeMap<u32, Lease>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    /// Grants (or re-grants) a fresh live lease for `endpoint`.
    pub fn grant(&mut self, endpoint: u32, config: LeaseConfig) -> &mut Lease {
        self.leases.entry(endpoint).or_insert_with(|| {
            // The entry API defers construction so a re-grant of an
            // existing lease keeps its history.
            Lease::new(config)
        })
    }

    /// The lease for `endpoint`, if granted.
    pub fn get(&self, endpoint: u32) -> Option<&Lease> {
        self.leases.get(&endpoint)
    }

    /// Mutable access for renew/miss reporting.
    pub fn get_mut(&mut self, endpoint: u32) -> Option<&mut Lease> {
        self.leases.get_mut(&endpoint)
    }

    /// Endpoints holding leases, in ascending id order.
    pub fn endpoints(&self) -> Vec<u32> {
        self.leases.keys().copied().collect()
    }

    /// Endpoints currently in the given state, in ascending id order.
    pub fn in_state(&self, state: LeaseState) -> Vec<u32> {
        self.leases
            .iter()
            .filter(|(_, l)| l.state() == state)
            .map(|(&e, _)| e)
            .collect()
    }

    /// Multi-line digest (`endpoint: <lease digest>`), deterministic.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for (e, l) in &self.leases {
            out.push_str(&format!("{e}: {}\n", l.digest()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            interval: SimDuration::from_millis(100),
            suspect_after: 2,
            dead_after: 4,
            backoff_cap: SimDuration::from_millis(800),
        }
    }

    #[test]
    fn walks_live_suspect_dead_exactly_once() {
        let mut l = Lease::new(cfg());
        assert_eq!(l.state(), LeaseState::Live);
        assert_eq!(l.miss(), None);
        assert_eq!(l.miss(), Some(LeaseEvent::Suspected));
        assert_eq!(l.state(), LeaseState::Suspect);
        assert_eq!(l.miss(), None);
        assert_eq!(l.miss(), Some(LeaseEvent::Died));
        assert_eq!(l.state(), LeaseState::Dead);
        // Further misses stay dead without re-reporting.
        assert_eq!(l.miss(), None);
        assert_eq!(l.deaths(), 1);
    }

    #[test]
    fn renewal_revives_and_resets_backoff() {
        let mut l = Lease::new(cfg());
        for _ in 0..4 {
            let _ = l.miss();
        }
        assert_eq!(l.state(), LeaseState::Dead);
        assert_eq!(l.renew(), Some(LeaseEvent::Revived { was_dead: true }));
        assert_eq!(l.state(), LeaseState::Live);
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(100));
        // A suspect blip revives with was_dead = false.
        let _ = l.miss();
        let _ = l.miss();
        assert_eq!(l.state(), LeaseState::Suspect);
        assert_eq!(l.renew(), Some(LeaseEvent::Revived { was_dead: false }));
        assert_eq!(l.revivals(), 2);
    }

    #[test]
    fn probe_interval_backs_off_exponentially_to_the_cap() {
        let mut l = Lease::new(cfg());
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(100));
        let _ = l.miss();
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(200));
        let _ = l.miss();
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(400));
        let _ = l.miss();
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(800));
        let _ = l.miss();
        // Capped: misses keep counting but the cadence holds.
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(800));
        for _ in 0..40 {
            let _ = l.miss();
        }
        assert_eq!(l.next_probe_in(), SimDuration::from_millis(800));
    }

    #[test]
    fn table_iterates_in_endpoint_order() {
        let mut t = LeaseTable::new();
        for e in [7u32, 1, 4] {
            t.grant(e, cfg());
        }
        assert_eq!(t.endpoints(), vec![1, 4, 7]);
        for _ in 0..4 {
            let _ = t.get_mut(4).unwrap().miss();
        }
        assert_eq!(t.in_state(LeaseState::Dead), vec![4]);
        assert_eq!(t.in_state(LeaseState::Live), vec![1, 7]);
        let d = t.digest();
        assert!(d.starts_with("1: state=live"), "{d}");
        assert!(d.contains("4: state=dead"), "{d}");
    }

    #[test]
    fn regrant_keeps_history() {
        let mut t = LeaseTable::new();
        t.grant(1, cfg());
        for _ in 0..4 {
            let _ = t.get_mut(1).unwrap().miss();
        }
        t.grant(1, cfg());
        assert_eq!(t.get(1).unwrap().deaths(), 1, "re-grant must not reset");
    }

    #[test]
    #[should_panic(expected = "lease thresholds")]
    fn rejects_inverted_thresholds() {
        let _ = Lease::new(LeaseConfig {
            suspect_after: 5,
            dead_after: 2,
            ..cfg()
        });
    }
}
