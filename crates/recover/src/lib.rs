//! pandora-recover: the failure-recovery state machines.
//!
//! The paper's principles assume endpoints and the command path can fail
//! while the surviving streams stay alive: P6 promises continuity through
//! reconfiguration, and P8 makes quality decisions *locally*, at the box
//! that observes the trouble. This crate supplies the two deterministic
//! state machines those promises rest on — pure data types with no I/O,
//! no clock access and no randomness, so every transition is replayable:
//!
//! * [`Lease`] / [`LeaseTable`] — the controller-held lease a heartbeat
//!   probe renews on the P4 command path. Missed renewals walk the lease
//!   `Live → Suspect → Dead` after a configurable number of misses, with
//!   exponential backoff on the probe side; a successful renewal of a
//!   dead lease is a *revival*, the signal to re-admit a restarted box.
//! * [`PassiveBeat`] — the same lease machine fed passively: peers
//!   volunteer hellos on their own cadence and one sweep per interval
//!   renews or misses every lease at once. The overlay broadcast hub
//!   watches a thousand relays this way without per-peer probe tasks.
//! * [`StreamHealth`] / [`AdaptMachine`] — a sliding-window monitor of
//!   sequence-gap and late-segment rates per stream, driving the P8
//!   local-adaptation policy: sustained video loss steps the rate
//!   divisor down (degrade-to-fit, the P2/P3 ordering — video gives way
//!   first), sustained audio loss engages muting rather than degrading
//!   (audio is never sent at reduced quality, P2), and recovery
//!   hysteresis restores full quality only after the trouble has
//!   demonstrably cleared.
//!
//! The session controller (`pandora-session`) owns the leases and runs
//! crash reconvergence on expiry; the box (`pandora` core) owns the
//! health monitors and applies the adaptation actions. Both sides are
//! exercised by `pandora-faults` crash/pause/flap plans in the
//! conformance suite.

pub mod beat;
pub mod health;
pub mod lease;

pub use beat::PassiveBeat;
pub use health::{
    AdaptAction, AdaptMachine, AdaptState, HealthConfig, MediaClass, StreamHealth, WindowSample,
};
pub use lease::{Lease, LeaseConfig, LeaseEvent, LeaseState, LeaseTable};
