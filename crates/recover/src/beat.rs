//! Passive heartbeat bookkeeping over a [`LeaseTable`].
//!
//! The session controller renews leases *actively*: its probe tasks send
//! Ping and report each Pong through [`Lease::renew`]. A fan-out hub
//! watching a thousand relays cannot afford a probe round-trip per peer,
//! so the overlay flips the direction: every peer volunteers a hello on
//! its own cadence and the hub runs one sweep per interval, renewing
//! every lease that heard a hello since the last sweep and missing every
//! lease that did not. Same lease machine, same `Live → Suspect → Dead`
//! walk, no per-peer tasks.
//!
//! Determinism: peers are swept in ascending id order (the `LeaseTable`
//! contract), and the hello flags are plain counters — a sweep's event
//! list is a pure function of which hellos landed between sweeps.

use std::collections::BTreeMap;

use crate::lease::{Lease, LeaseConfig, LeaseEvent, LeaseTable};

/// A lease table fed by volunteered heartbeats instead of probes.
#[derive(Debug, Default)]
pub struct PassiveBeat {
    table: LeaseTable,
    config: BTreeMap<u32, LeaseConfig>,
    fresh: BTreeMap<u32, bool>,
}

impl PassiveBeat {
    /// An empty book.
    pub fn new() -> PassiveBeat {
        PassiveBeat::default()
    }

    /// Starts watching `peer` under `config`. Re-enrolling keeps lease
    /// history (the [`LeaseTable::grant`] contract).
    pub fn enroll(&mut self, peer: u32, config: LeaseConfig) {
        self.table.grant(peer, config);
        self.config.insert(peer, config);
        self.fresh.entry(peer).or_insert(true);
    }

    /// Records a hello from `peer`. The renewal is applied immediately
    /// so a revival surfaces without waiting for the next sweep; the
    /// peer is also marked fresh for that sweep.
    pub fn hello(&mut self, peer: u32) -> Option<LeaseEvent> {
        let lease = self.table.get_mut(peer)?;
        let event = lease.renew();
        self.fresh.insert(peer, true);
        event
    }

    /// One sweep: every enrolled peer without a hello since the last
    /// sweep takes a miss. Returns the threshold crossings in ascending
    /// peer order.
    pub fn sweep(&mut self) -> Vec<(u32, LeaseEvent)> {
        let mut events = Vec::new();
        for (&peer, fresh) in self.fresh.iter_mut() {
            if *fresh {
                *fresh = false;
                continue;
            }
            if let Some(event) = self.table.get_mut(peer).and_then(Lease::miss) {
                events.push((peer, event));
            }
        }
        events
    }

    /// Read access to the lease a peer holds.
    pub fn lease(&self, peer: u32) -> Option<&Lease> {
        self.table.get(peer)
    }

    /// The underlying table, for state queries and digests.
    pub fn table(&self) -> &LeaseTable {
        &self.table
    }

    /// Deterministic multi-line digest (the table's).
    pub fn digest(&self) -> String {
        self.table.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::LeaseState;
    use pandora_sim::SimDuration;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            interval: SimDuration::from_millis(10),
            suspect_after: 2,
            dead_after: 3,
            backoff_cap: SimDuration::from_millis(80),
        }
    }

    #[test]
    fn silent_peer_walks_to_dead_in_sweep_order() {
        let mut beat = PassiveBeat::new();
        for p in [3u32, 1, 2] {
            beat.enroll(p, cfg());
        }
        // Everyone is fresh at enrolment: first sweep misses nobody.
        assert!(beat.sweep().is_empty());
        // Peers 1 and 3 keep calling; peer 2 goes silent.
        for _ in 0..2 {
            beat.hello(1);
            beat.hello(3);
            assert!(beat.sweep().is_empty());
        }
        beat.hello(1);
        beat.hello(3);
        assert_eq!(beat.sweep(), vec![(2, LeaseEvent::Suspected)]);
        beat.hello(1);
        beat.hello(3);
        assert_eq!(beat.sweep(), vec![(2, LeaseEvent::Died)]);
        assert_eq!(beat.table().in_state(LeaseState::Dead), vec![2]);
    }

    #[test]
    fn hello_revives_immediately() {
        let mut beat = PassiveBeat::new();
        beat.enroll(5, cfg());
        assert!(beat.sweep().is_empty());
        for _ in 0..3 {
            let _ = beat.sweep();
        }
        assert_eq!(beat.lease(5).unwrap().state(), LeaseState::Dead);
        assert_eq!(
            beat.hello(5),
            Some(LeaseEvent::Revived { was_dead: true }),
            "revival must not wait for the sweep"
        );
        assert!(beat.sweep().is_empty());
    }

    #[test]
    fn hello_from_a_stranger_is_ignored() {
        let mut beat = PassiveBeat::new();
        assert_eq!(beat.hello(9), None);
        assert!(beat.sweep().is_empty());
    }
}
