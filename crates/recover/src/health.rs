//! Per-stream health monitoring and the P8 local-adaptation policy.
//!
//! A [`StreamHealth`] accumulates sequence-gap and late-segment counts
//! into fixed tumbling windows of virtual time and feeds each closed
//! window to an [`AdaptMachine`], which turns sustained trouble into
//! [`AdaptAction`]s:
//!
//! * **Video** steps its rate divisor down (divisor ×2 per sustained-loss
//!   period, capped) — degrade-to-fit, the P2/P3 ordering: the cheap,
//!   low-priority traffic gives way first and the *oldest* quality step
//!   is restored last.
//! * **Audio** is never degraded (P2): sustained loss engages muting —
//!   silence is better than garbage — and recovery unmutes.
//!
//! Hysteresis is asymmetric by construction: `sustain_windows` bad
//! windows trigger a step down, but `recover_windows` *consecutive*
//! clean windows are required per step back up, so quality never
//! oscillates across a marginal link. All decisions are pure functions
//! of the observed counts; the caller owns the clock.

use pandora_sim::SimDuration;

/// Which adaptation policy a stream runs (P2: they differ on purpose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaClass {
    /// Mute-or-full policy.
    Audio,
    /// Rate-divisor degrade-to-fit policy.
    Video,
}

/// Health-monitor tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Length of one observation window.
    pub window: SimDuration,
    /// Loss or late rate (permille of segments in the window) at or
    /// above which the window counts as bad.
    pub degrade_permille: u32,
    /// Rate at or below which the window counts as clean. Keeping this
    /// below `degrade_permille` widens the hysteresis band.
    pub recover_permille: u32,
    /// Consecutive bad windows before a degrade step.
    pub sustain_windows: u32,
    /// Consecutive clean windows before a recovery step (larger than
    /// `sustain_windows` for the asymmetric hysteresis).
    pub recover_windows: u32,
    /// Largest video rate divisor the machine will reach.
    pub max_divisor: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: SimDuration::from_millis(250),
            degrade_permille: 50,
            recover_permille: 10,
            sustain_windows: 2,
            recover_windows: 4,
            max_divisor: 8,
        }
    }
}

/// The counts of one closed observation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Segments received in the window.
    pub received: u64,
    /// Segments detected missing by sequence tracking.
    pub gaps: u64,
    /// Deliveries or mix ticks past their deadline.
    pub late: u64,
}

impl WindowSample {
    /// Lost segments as a permille of the segments the window should
    /// have carried (1000 when only gaps were seen).
    pub fn loss_permille(&self) -> u32 {
        let total = self.received + self.gaps;
        (self.gaps * 1000).checked_div(total).unwrap_or_default() as u32
    }

    /// Late events as a permille of received segments (late events in a
    /// silent window count in full).
    pub fn late_permille(&self) -> u32 {
        if self.late == 0 {
            0
        } else {
            (self.late * 1000 / self.received.max(1)).min(1000) as u32
        }
    }
}

/// An adaptation decision the data plane must apply locally (P8 — no
/// controller round-trip involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptAction {
    /// Set the video rate divisor (1 = full rate).
    SetDivisor(u32),
    /// Engage audio muting.
    Mute,
    /// Disengage audio muting.
    Unmute,
}

/// The machine's externally visible quality state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptState {
    /// Current video rate divisor (1 unless degraded).
    pub divisor: u32,
    /// Whether audio is muted.
    pub muted: bool,
}

/// The per-stream adaptation state machine.
#[derive(Debug, Clone)]
pub struct AdaptMachine {
    class: MediaClass,
    config: HealthConfig,
    divisor: u32,
    muted: bool,
    bad_streak: u32,
    good_streak: u32,
    degrades: u64,
    recoveries: u64,
}

impl AdaptMachine {
    /// A machine at full quality.
    pub fn new(class: MediaClass, config: HealthConfig) -> AdaptMachine {
        AdaptMachine {
            class,
            config,
            divisor: 1,
            muted: false,
            bad_streak: 0,
            good_streak: 0,
            degrades: 0,
            recoveries: 0,
        }
    }

    /// The stream's media class.
    pub fn class(&self) -> MediaClass {
        self.class
    }

    /// Current quality state.
    pub fn state(&self) -> AdaptState {
        AdaptState {
            divisor: self.divisor,
            muted: self.muted,
        }
    }

    /// Degrade steps taken.
    pub fn degrades(&self) -> u64 {
        self.degrades
    }

    /// Recovery steps taken.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Feeds one closed window; returns the action to apply, if the
    /// streak thresholds were crossed. Streaks reset after every action
    /// so each further step needs a fresh sustained period.
    pub fn observe(&mut self, sample: &WindowSample) -> Option<AdaptAction> {
        let worst = sample.loss_permille().max(sample.late_permille());
        if worst >= self.config.degrade_permille {
            self.bad_streak += 1;
            self.good_streak = 0;
        } else if worst <= self.config.recover_permille {
            self.good_streak += 1;
            self.bad_streak = 0;
        } else {
            // The hysteresis band: neither streak advances, neither
            // resets — a marginal window freezes the machine.
            return None;
        }
        if self.bad_streak >= self.config.sustain_windows {
            self.bad_streak = 0;
            return self.degrade_step();
        }
        if self.good_streak >= self.config.recover_windows {
            self.good_streak = 0;
            return self.recover_step();
        }
        None
    }

    fn degrade_step(&mut self) -> Option<AdaptAction> {
        match self.class {
            MediaClass::Audio => {
                if self.muted {
                    return None;
                }
                self.muted = true;
                self.degrades += 1;
                Some(AdaptAction::Mute)
            }
            MediaClass::Video => {
                let next = (self.divisor * 2).min(self.config.max_divisor);
                if next == self.divisor {
                    return None;
                }
                self.divisor = next;
                self.degrades += 1;
                Some(AdaptAction::SetDivisor(next))
            }
        }
    }

    fn recover_step(&mut self) -> Option<AdaptAction> {
        match self.class {
            MediaClass::Audio => {
                if !self.muted {
                    return None;
                }
                self.muted = false;
                self.recoveries += 1;
                Some(AdaptAction::Unmute)
            }
            MediaClass::Video => {
                if self.divisor == 1 {
                    return None;
                }
                self.divisor = (self.divisor / 2).max(1);
                self.recoveries += 1;
                Some(AdaptAction::SetDivisor(self.divisor))
            }
        }
    }

    /// One-line digest for replay assertions.
    pub fn digest(&self) -> String {
        format!(
            "divisor={} muted={} degrades={} recoveries={}",
            self.divisor, self.muted, self.degrades, self.recoveries
        )
    }
}

/// Tumbling-window accumulator feeding an [`AdaptMachine`].
///
/// The caller reports raw events ([`StreamHealth::record_received`] and
/// friends) and periodically calls [`StreamHealth::advance`] with the
/// current virtual time; every window boundary crossed closes a window
/// into the machine. Time only moves forward; the caller owns the clock
/// so the whole pipeline replays byte-identically.
#[derive(Debug, Clone)]
pub struct StreamHealth {
    window_nanos: u64,
    window_start: u64,
    cur: WindowSample,
    machine: AdaptMachine,
    windows_closed: u64,
}

impl StreamHealth {
    /// A monitor whose first window opens at `now_nanos`.
    ///
    /// # Panics
    ///
    /// Panics if the configured window is zero.
    pub fn new(class: MediaClass, config: HealthConfig, now_nanos: u64) -> StreamHealth {
        assert!(config.window.as_nanos() > 0, "zero-length health window");
        StreamHealth {
            window_nanos: config.window.as_nanos(),
            window_start: now_nanos,
            cur: WindowSample::default(),
            machine: AdaptMachine::new(class, config),
            windows_closed: 0,
        }
    }

    /// Records `n` received segments in the open window.
    pub fn record_received(&mut self, n: u64) {
        self.cur.received += n;
    }

    /// Records `n` segments detected missing.
    pub fn record_gap(&mut self, n: u64) {
        self.cur.gaps += n;
    }

    /// Records `n` late deliveries or mix ticks.
    pub fn record_late(&mut self, n: u64) {
        self.cur.late += n;
    }

    /// Closes every window boundary crossed by `now_nanos`, feeding each
    /// to the machine; returns the actions to apply, in order. All the
    /// accumulated counts land in the first closed window (the events
    /// happened before the first boundary the caller reported past);
    /// subsequent catch-up windows are idle.
    pub fn advance(&mut self, now_nanos: u64) -> Vec<AdaptAction> {
        let mut actions = Vec::new();
        while now_nanos >= self.window_start + self.window_nanos {
            let sample = std::mem::take(&mut self.cur);
            self.windows_closed += 1;
            self.window_start += self.window_nanos;
            if let Some(a) = self.machine.observe(&sample) {
                actions.push(a);
            }
        }
        actions
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// The adaptation machine (state, counters, digest).
    pub fn machine(&self) -> &AdaptMachine {
        &self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            window: SimDuration::from_millis(100),
            degrade_permille: 50,
            recover_permille: 10,
            sustain_windows: 2,
            recover_windows: 4,
            max_divisor: 8,
        }
    }

    fn bad() -> WindowSample {
        WindowSample {
            received: 90,
            gaps: 10,
            late: 0,
        }
    }

    fn clean() -> WindowSample {
        WindowSample {
            received: 100,
            gaps: 0,
            late: 0,
        }
    }

    #[test]
    fn video_steps_divisor_down_then_recovers_with_hysteresis() {
        let mut m = AdaptMachine::new(MediaClass::Video, cfg());
        assert_eq!(m.observe(&bad()), None, "one bad window is a blip");
        assert_eq!(m.observe(&bad()), Some(AdaptAction::SetDivisor(2)));
        // The next step needs a fresh sustained period.
        assert_eq!(m.observe(&bad()), None);
        assert_eq!(m.observe(&bad()), Some(AdaptAction::SetDivisor(4)));
        // Recovery needs recover_windows consecutive clean windows.
        for _ in 0..3 {
            assert_eq!(m.observe(&clean()), None);
        }
        assert_eq!(m.observe(&clean()), Some(AdaptAction::SetDivisor(2)));
        for _ in 0..3 {
            assert_eq!(m.observe(&clean()), None);
        }
        assert_eq!(m.observe(&clean()), Some(AdaptAction::SetDivisor(1)));
        assert_eq!(m.state().divisor, 1);
        assert_eq!(m.degrades(), 2);
        assert_eq!(m.recoveries(), 2);
    }

    #[test]
    fn video_divisor_caps() {
        let mut m = AdaptMachine::new(MediaClass::Video, cfg());
        for _ in 0..20 {
            let _ = m.observe(&bad());
        }
        assert_eq!(m.state().divisor, 8, "capped at max_divisor");
    }

    #[test]
    fn audio_mutes_never_degrades() {
        let mut m = AdaptMachine::new(MediaClass::Audio, cfg());
        assert_eq!(m.observe(&bad()), None);
        assert_eq!(m.observe(&bad()), Some(AdaptAction::Mute));
        assert!(m.state().muted);
        assert_eq!(m.state().divisor, 1, "audio rate untouched (P2)");
        for _ in 0..3 {
            assert_eq!(m.observe(&clean()), None);
        }
        assert_eq!(m.observe(&clean()), Some(AdaptAction::Unmute));
        assert!(!m.state().muted);
    }

    #[test]
    fn marginal_windows_freeze_the_machine() {
        let mut m = AdaptMachine::new(MediaClass::Audio, cfg());
        let marginal = WindowSample {
            received: 970,
            gaps: 30, // 30‰: between recover (10) and degrade (50).
            late: 0,
        };
        let _ = m.observe(&bad());
        for _ in 0..50 {
            assert_eq!(m.observe(&marginal), None);
        }
        // The earlier bad window still counts: one more completes it.
        assert_eq!(m.observe(&bad()), Some(AdaptAction::Mute));
    }

    #[test]
    fn late_rate_alone_triggers_adaptation() {
        let mut m = AdaptMachine::new(MediaClass::Video, cfg());
        let late = WindowSample {
            received: 100,
            gaps: 0,
            late: 20,
        };
        let _ = m.observe(&late);
        assert_eq!(m.observe(&late), Some(AdaptAction::SetDivisor(2)));
    }

    #[test]
    fn stream_health_closes_windows_on_virtual_time() {
        let mut h = StreamHealth::new(MediaClass::Audio, cfg(), 0);
        h.record_received(90);
        h.record_gap(10);
        assert!(h.advance(99_999_999).is_empty(), "window still open");
        assert!(h.advance(100_000_000).is_empty(), "first bad window");
        h.record_received(90);
        h.record_gap(10);
        let actions = h.advance(200_000_000);
        assert_eq!(actions, vec![AdaptAction::Mute]);
        assert_eq!(h.windows_closed(), 2);
        // A long idle stretch closes clean catch-up windows: recovery.
        let actions = h.advance(700_000_000);
        assert_eq!(actions, vec![AdaptAction::Unmute]);
        assert_eq!(h.windows_closed(), 7);
    }

    #[test]
    fn idle_and_empty_windows_are_clean() {
        let s = WindowSample::default();
        assert_eq!(s.loss_permille(), 0);
        assert_eq!(s.late_permille(), 0);
        let gaps_only = WindowSample {
            received: 0,
            gaps: 5,
            late: 0,
        };
        assert_eq!(gaps_only.loss_permille(), 1000);
    }
}
