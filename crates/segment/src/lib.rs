//! # pandora-segment — Pandora segment formats
//!
//! "Stream implementation is based on self-contained segments of data
//! containing information for delivery, synchronisation and error
//! recovery" (paper abstract). This crate implements the exact segment
//! layouts of figures 3.1 (audio) and 3.2 (video):
//!
//! * [`CommonHeader`] — the five 32-bit fields shared by all segments
//!   (version, sequence number, 64 µs timestamp, type, length);
//! * [`AudioSegment`] — 16-sample / 2 ms µ-law blocks grouped per segment
//!   (2 by default, 1 for low latency, 12 for slow receivers, 20 for the
//!   repository format);
//! * [`VideoSegment`] — rectangular frame pieces with placement geometry
//!   and variable-length compression arguments;
//! * [`wire`] — big-endian wire codec, with the in-box stream-number tag;
//! * [`SlabSegment`] — the zero-copy form: owned headers plus a
//!   refcounted slab slice for the payload (§3.4's two-copy discipline);
//! * [`SeqTracker`] — sequence-number loss detection (§3.8);
//! * [`reseg`] — the repository's 2 ms-block → 40 ms-segment rewriter.

mod format;
mod ids;
pub mod reseg;
mod slabseg;
pub mod wire;

pub use format::{
    AudioFormat, AudioHeader, AudioSegment, CommonHeader, PixelFormat, Segment, SegmentHeader,
    SegmentType, TestSegment, VideoCompression, VideoHeader, VideoSegment, AUDIO_FULL_HEADER_BYTES,
    AUDIO_HEADER_BYTES, AUDIO_SAMPLE_RATE, BLOCK_BYTES, BLOCK_DURATION_NANOS, COMMON_HEADER_BYTES,
    DEFAULT_BLOCKS_PER_SEGMENT, REPOSITORY_BLOCKS_PER_SEGMENT, SAMPLES_PER_BLOCK, VERSION_ID,
    VIDEO_FIXED_HEADER_BYTES,
};
pub use ids::{SeqEvent, SeqTracker, SequenceNumber, StreamId, Timestamp};
pub use slabseg::SlabSegment;
pub use wire::{SegmentView, WireError};
