//! Slab-backed segments: parsed headers plus a refcounted payload slice.
//!
//! [`SlabSegment`] is what actually flows through the box in the
//! zero-copy transport. The headers (tens of bytes) are owned and cheap
//! to clone; the payload stays in the byte slab it was first copied
//! into, shared by reference count. Converting from and to the owned
//! [`Segment`] performs exactly one counted payload copy each way —
//! the paper's input copy and output copy.

use pandora_slab::{ByteSlab, SlabError, SlabRef};

use crate::format::{Segment, SegmentHeader};

/// A segment whose payload bytes live in a [`ByteSlab`] region.
///
/// Cloning bumps the slab reference count; no payload bytes move until
/// [`SlabSegment::to_segment`] (or another counted copy-out) is called.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabSegment {
    /// The parsed, owned headers.
    pub header: SegmentHeader,
    /// The payload, refcounted in its slab.
    pub payload: SlabRef,
}

impl SlabSegment {
    /// Moves a segment's payload into `slab` — the sanctioned *input*
    /// copy, counted against [`ByteSlab::copied_in_bytes`].
    ///
    /// # Errors
    ///
    /// Fails when the slab is exhausted or the payload exceeds one slab
    /// region.
    pub fn from_segment(segment: &Segment, slab: &ByteSlab) -> Result<SlabSegment, SlabError> {
        let payload = slab.try_alloc_copy(segment.payload())?;
        Ok(SlabSegment {
            header: SegmentHeader::of_segment(segment),
            payload,
        })
    }

    /// Rebuilds the owned [`Segment`] — the sanctioned *output* copy,
    /// counted against [`ByteSlab::copied_out_bytes`].
    pub fn to_segment(&self) -> Segment {
        self.header.clone().into_segment(self.payload.copy_to_vec())
    }

    /// Total size on the wire, headers plus payload.
    pub fn wire_bytes(&self) -> usize {
        self.header.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::AudioSegment;
    use crate::ids::{SequenceNumber, Timestamp};

    #[test]
    fn round_trip_is_one_copy_each_way() {
        let slab = ByteSlab::new(4, 1024);
        let seg = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(3),
            Timestamp(64),
            (0u8..32).collect(),
        ));
        let ss = SlabSegment::from_segment(&seg, &slab).unwrap();
        assert_eq!(slab.copied_in_bytes(), 32);
        assert_eq!(slab.copied_out_bytes(), 0);
        assert_eq!(ss.wire_bytes(), seg.wire_bytes());
        // Fan-out shares, it does not copy.
        let fanout = ss.clone();
        assert_eq!(slab.copied_in_bytes(), 32);
        assert_eq!(fanout.payload.ref_count(), 2);
        assert_eq!(ss.to_segment(), seg);
        assert_eq!(slab.copied_out_bytes(), 32);
    }

    #[test]
    fn oversized_payload_is_refused() {
        let slab = ByteSlab::new(1, 16);
        let seg = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(0),
            Timestamp(0),
            vec![0u8; 32],
        ));
        assert!(matches!(
            SlabSegment::from_segment(&seg, &slab),
            Err(SlabError::TooLarge { needed: 32, .. })
        ));
    }
}
