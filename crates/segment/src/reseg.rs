//! Repository re-segmentation (§3.2).
//!
//! "A major use of this facility is when streams are stored on a
//! repository. As they are no longer live, there is no requirement for low
//! latency, and we would like to reduce the disk space taken up by
//! headers. This is done as a separate operation after the stream has been
//! recorded, by splitting out the 2ms blocks, and merging them to form
//! 40ms long segments containing 320 bytes of data plus a new 36 byte
//! header. These can be played back directly to any Pandora box."

use crate::format::{
    AudioSegment, BLOCK_BYTES, BLOCK_DURATION_NANOS, REPOSITORY_BLOCKS_PER_SEGMENT,
};
use crate::ids::{SequenceNumber, Timestamp};

/// A 2 ms audio block with the timestamp of its first sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedBlock {
    /// Timestamp of the first sample in the block.
    pub timestamp: Timestamp,
    /// The 16 µ-law sample bytes.
    pub data: [u8; BLOCK_BYTES],
}

/// Splits recorded segments into their constituent 2 ms blocks.
///
/// Block timestamps are reconstructed from each segment's timestamp plus
/// the block offset, so merging preserves per-block timing even when the
/// original segments had mixed sizes ("incoming segments of any mixture of
/// sizes are accepted", §3.2).
pub fn split_blocks<'a>(segments: impl IntoIterator<Item = &'a AudioSegment>) -> Vec<TimedBlock> {
    let mut out = Vec::new();
    for seg in segments {
        let base = seg.common.timestamp.as_nanos();
        for (i, chunk) in seg.blocks().enumerate() {
            let mut data = [0u8; BLOCK_BYTES];
            data.copy_from_slice(chunk);
            out.push(TimedBlock {
                timestamp: Timestamp::from_nanos(base + i as u64 * BLOCK_DURATION_NANOS),
                data,
            });
        }
    }
    out
}

/// Merges 2 ms blocks into repository-format segments of `blocks_per_segment`
/// blocks (20 = 40 ms for the standard repository format).
///
/// The final segment may be shorter if the block count is not a multiple.
/// Sequence numbers are freshly assigned from `first_seq`; each segment
/// takes the timestamp of its first block.
///
/// # Panics
///
/// Panics if `blocks_per_segment` is zero.
pub fn merge_blocks(
    blocks: &[TimedBlock],
    blocks_per_segment: usize,
    first_seq: SequenceNumber,
) -> Vec<AudioSegment> {
    assert!(
        blocks_per_segment > 0,
        "blocks_per_segment must be non-zero"
    );
    let mut out = Vec::new();
    let mut seq = first_seq;
    for group in blocks.chunks(blocks_per_segment) {
        let mut data = Vec::with_capacity(group.len() * BLOCK_BYTES);
        for b in group {
            data.extend_from_slice(&b.data);
        }
        out.push(AudioSegment::from_blocks(seq, group[0].timestamp, data));
        seq = seq.next();
    }
    out
}

/// Re-segments live-format recordings into the 40 ms repository format.
pub fn to_repository_format(segments: &[AudioSegment]) -> Vec<AudioSegment> {
    let blocks = split_blocks(segments);
    merge_blocks(&blocks, REPOSITORY_BLOCKS_PER_SEGMENT, SequenceNumber(0))
}

/// Total wire bytes of a set of segments (header plus data).
pub fn total_wire_bytes(segments: &[AudioSegment]) -> usize {
    segments.iter().map(|s| s.wire_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_stream(blocks: usize, blocks_per_segment: usize) -> Vec<AudioSegment> {
        // Build a stream whose sample bytes encode their global block index.
        let mut segments = Vec::new();
        let mut block_index = 0u64;
        let mut seq = SequenceNumber(0);
        while block_index < blocks as u64 {
            let n = blocks_per_segment.min(blocks - block_index as usize);
            let mut data = Vec::new();
            for b in 0..n {
                data.extend(std::iter::repeat_n(
                    (block_index as usize + b) as u8,
                    BLOCK_BYTES,
                ));
            }
            segments.push(AudioSegment::from_blocks(
                seq,
                Timestamp::from_nanos(block_index * BLOCK_DURATION_NANOS),
                data,
            ));
            block_index += n as u64;
            seq = seq.next();
        }
        segments
    }

    #[test]
    fn split_preserves_order_and_timestamps() {
        let segs = live_stream(6, 2);
        let blocks = split_blocks(&segs);
        assert_eq!(blocks.len(), 6);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.data[0] as usize, i);
            // Timestamps are quantised to the 64us resolution of the format.
            assert_eq!(
                b.timestamp,
                Timestamp::from_nanos(i as u64 * BLOCK_DURATION_NANOS)
            );
        }
    }

    #[test]
    fn merge_produces_40ms_segments() {
        let segs = live_stream(40, 2);
        let repo = to_repository_format(&segs);
        assert_eq!(repo.len(), 2);
        for seg in &repo {
            assert_eq!(seg.block_count(), 20);
            assert_eq!(seg.wire_bytes(), 356);
        }
        assert_eq!(
            repo[1].common.timestamp.as_nanos(),
            20 * BLOCK_DURATION_NANOS
        );
    }

    #[test]
    fn resegmentation_preserves_every_sample() {
        let segs = live_stream(45, 2); // Not a multiple of 20.
        let repo = to_repository_format(&segs);
        let original: Vec<u8> = segs.iter().flat_map(|s| s.data.clone()).collect();
        let resegmented: Vec<u8> = repo.iter().flat_map(|s| s.data.clone()).collect();
        assert_eq!(original, resegmented);
        assert_eq!(repo.last().unwrap().block_count(), 5);
    }

    #[test]
    fn mixed_segment_sizes_accepted() {
        let mut segs = live_stream(4, 1);
        segs.extend(live_stream(12, 12).into_iter().map(|mut s| {
            // Shift timestamps after the first 4 blocks.
            s.common.timestamp =
                Timestamp::from_nanos(4 * BLOCK_DURATION_NANOS + s.common.timestamp.as_nanos());
            s
        }));
        let blocks = split_blocks(&segs);
        assert_eq!(blocks.len(), 16);
        // Timestamps increase by 2ms up to the 64us quantisation (31 or 32
        // timestamp units).
        for w in blocks.windows(2) {
            let d = w[1].timestamp.0 - w[0].timestamp.0;
            assert!((31..=32).contains(&d), "delta {d} units");
        }
    }

    #[test]
    fn header_overhead_reduction() {
        // E14: live 2-block format has 36/68 = 53% overhead; repository
        // format has 36/356 = 10%.
        let live = live_stream(40, 2);
        let repo = to_repository_format(&live);
        let live_bytes = total_wire_bytes(&live);
        let repo_bytes = total_wire_bytes(&repo);
        assert_eq!(live_bytes, 20 * 68);
        assert_eq!(repo_bytes, 2 * 356);
        let saving = 1.0 - repo_bytes as f64 / live_bytes as f64;
        assert!(saving > 0.45, "saving = {saving}");
    }

    #[test]
    fn merged_sequence_numbers_are_fresh_and_contiguous() {
        let repo = to_repository_format(&live_stream(60, 2));
        let seqs: Vec<u32> = repo.iter().map(|s| s.common.sequence.0).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_blocks_per_segment_panics() {
        let _ = merge_blocks(&[], 0, SequenceNumber(0));
    }
}
