//! Stream numbers, sequence numbers and timestamps.

/// A stream number, "allocated by the interface code" (§3.4).
///
/// Streams within a box pass the stream number in an extra field preceding
/// the segment header; streams arriving from the network carry it in their
/// VCI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A 32-bit wrapping segment sequence number.
///
/// "As all pandora segments carry sequence numbers, the destination can
/// detect that segments are missing as soon as a later one arrives" (§3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SequenceNumber(pub u32);

impl SequenceNumber {
    /// The next sequence number, wrapping at 2^32.
    pub fn next(self) -> SequenceNumber {
        SequenceNumber(self.0.wrapping_add(1))
    }

    /// Signed distance from `self` to `other` with wrap-around, positive if
    /// `other` is ahead.
    pub fn distance_to(self, other: SequenceNumber) -> i32 {
        other.0.wrapping_sub(self.0) as i32
    }
}

/// Result of feeding an arrival into a [`SeqTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqEvent {
    /// The expected next segment.
    InOrder,
    /// `missing` segments were skipped before this one.
    Gap {
        /// How many sequence numbers were never seen.
        missing: u32,
    },
    /// A duplicate or stale segment (at or before the last seen).
    Stale,
}

/// Tracks per-stream sequence numbers and detects losses (§3.8).
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    next: Option<SequenceNumber>,
    lost: u64,
    received: u64,
    stale: u64,
}

impl SeqTracker {
    /// Creates a tracker that accepts any first sequence number.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes an arriving sequence number.
    pub fn observe(&mut self, seq: SequenceNumber) -> SeqEvent {
        let event = match self.next {
            None => SeqEvent::InOrder,
            Some(expected) => {
                let d = expected.distance_to(seq);
                if d == 0 {
                    SeqEvent::InOrder
                } else if d > 0 {
                    self.lost += d as u64;
                    SeqEvent::Gap { missing: d as u32 }
                } else {
                    self.stale += 1;
                    return SeqEvent::Stale;
                }
            }
        };
        self.received += 1;
        self.next = Some(seq.next());
        event
    }

    /// Total segments counted as lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Total segments accepted (in-order plus after-gap).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Total stale/duplicate segments discarded.
    pub fn stale(&self) -> u64 {
        self.stale
    }

    /// Fraction of expected segments that were lost, in 0..=1.
    pub fn loss_fraction(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// A segment timestamp with 64 µs resolution (§3.2).
///
/// "Carries a timestamp with 64µs resolution derived from the Transputer
/// clock as close as possible to the data source. The timestamps are
/// relative to the last time the Pandora's Box was booted, and are not
/// drift corrected."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u32);

impl Timestamp {
    /// Resolution of one timestamp unit in nanoseconds.
    pub const RESOLUTION_NANOS: u64 = 64_000;

    /// Quantises a boot-relative time in nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Timestamp((ns / Self::RESOLUTION_NANOS) as u32)
    }

    /// The boot-relative time in nanoseconds (lower bound of the unit).
    pub fn as_nanos(self) -> u64 {
        self.0 as u64 * Self::RESOLUTION_NANOS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_wraps() {
        let s = SequenceNumber(u32::MAX);
        assert_eq!(s.next(), SequenceNumber(0));
        assert_eq!(s.distance_to(SequenceNumber(0)), 1);
        assert_eq!(SequenceNumber(0).distance_to(s), -1);
    }

    #[test]
    fn tracker_in_order() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(SequenceNumber(5)), SeqEvent::InOrder);
        assert_eq!(t.observe(SequenceNumber(6)), SeqEvent::InOrder);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.received(), 2);
    }

    #[test]
    fn tracker_detects_gap() {
        let mut t = SeqTracker::new();
        t.observe(SequenceNumber(0));
        assert_eq!(t.observe(SequenceNumber(3)), SeqEvent::Gap { missing: 2 });
        assert_eq!(t.lost(), 2);
        assert!((t.loss_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tracker_rejects_stale() {
        let mut t = SeqTracker::new();
        t.observe(SequenceNumber(10));
        assert_eq!(t.observe(SequenceNumber(10)), SeqEvent::Stale);
        assert_eq!(t.observe(SequenceNumber(9)), SeqEvent::Stale);
        assert_eq!(t.stale(), 2);
        // The expectation is unchanged: 11 is still in order.
        assert_eq!(t.observe(SequenceNumber(11)), SeqEvent::InOrder);
    }

    #[test]
    fn tracker_gap_across_wrap() {
        let mut t = SeqTracker::new();
        t.observe(SequenceNumber(u32::MAX));
        assert_eq!(t.observe(SequenceNumber(1)), SeqEvent::Gap { missing: 1 });
    }

    #[test]
    fn timestamp_resolution() {
        assert_eq!(Timestamp::from_nanos(0).0, 0);
        assert_eq!(Timestamp::from_nanos(63_999).0, 0);
        assert_eq!(Timestamp::from_nanos(64_000).0, 1);
        assert_eq!(Timestamp::from_nanos(2_000_000).as_nanos(), 1_984_000);
    }

    #[test]
    fn loss_fraction_empty_is_zero() {
        assert_eq!(SeqTracker::new().loss_fraction(), 0.0);
    }
}
