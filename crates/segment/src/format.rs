//! Segment structures — figures 3.1 and 3.2 of the paper.
//!
//! "Stream implementation is based on self-contained segments of data
//! containing information for delivery, synchronisation and error
//! recovery." Every field in the headers is 32 bits; the first five fields
//! are common to audio and video segments.

use crate::ids::{SequenceNumber, Timestamp};

/// The version identifier carried by every segment ("PAN1").
pub const VERSION_ID: u32 = 0x50414E31;

/// Samples per 2 ms audio block (§3.2: "blocks of 16 samples").
pub const SAMPLES_PER_BLOCK: usize = 16;
/// Bytes per audio block (8-bit µ-law).
pub const BLOCK_BYTES: usize = 16;
/// Duration of one audio block in nanoseconds (2 ms).
pub const BLOCK_DURATION_NANOS: u64 = 2_000_000;
/// Audio sampling rate in Hz (125 µs intervals).
pub const AUDIO_SAMPLE_RATE: u32 = 8_000;
/// Default blocks per live segment ("we usually run with 2 blocks").
pub const DEFAULT_BLOCKS_PER_SEGMENT: usize = 2;
/// Blocks per repository segment (40 ms, §3.2).
pub const REPOSITORY_BLOCKS_PER_SEGMENT: usize = 20;

/// Size in bytes of the common segment header (5 × 32-bit fields).
pub const COMMON_HEADER_BYTES: usize = 20;
/// Size in bytes of the audio-specific header (4 × 32-bit fields).
pub const AUDIO_HEADER_BYTES: usize = 16;
/// Size in bytes of the full audio segment header (36 bytes, §3.2:
/// repository segments carry "320 bytes of data plus a new 36 byte header").
pub const AUDIO_FULL_HEADER_BYTES: usize = COMMON_HEADER_BYTES + AUDIO_HEADER_BYTES;
/// Size in bytes of the fixed part of the video-specific header
/// (12 × 32-bit fields, excluding variable compression arguments).
pub const VIDEO_FIXED_HEADER_BYTES: usize = 48;

/// The segment type discriminator in the common header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentType {
    /// Audio samples (figure 3.1).
    Audio,
    /// Video pixel data (figure 3.2).
    Video,
    /// Opaque test traffic, produced/consumed by the test device handlers
    /// shown in figure 3.3.
    Test,
}

impl SegmentType {
    /// Wire encoding of the type field.
    pub fn code(self) -> u32 {
        match self {
            SegmentType::Audio => 1,
            SegmentType::Video => 2,
            SegmentType::Test => 3,
        }
    }

    /// Decodes the type field.
    pub fn from_code(code: u32) -> Option<SegmentType> {
        match code {
            1 => Some(SegmentType::Audio),
            2 => Some(SegmentType::Video),
            3 => Some(SegmentType::Test),
            _ => None,
        }
    }
}

/// The five 32-bit fields common to all segment formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonHeader {
    /// Format version ("Version ID").
    pub version: u32,
    /// Per-stream sequence number.
    pub sequence: SequenceNumber,
    /// 64 µs-resolution timestamp taken as close to the source as possible.
    pub timestamp: Timestamp,
    /// Segment type (audio/video/test).
    pub segment_type: SegmentType,
    /// Total segment length in bytes including all headers.
    pub length: u32,
}

/// Audio sample format field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AudioFormat {
    /// 8-bit µ-law, the format of the Pandora codec.
    MuLaw8,
    /// 16-bit linear PCM (used by software paths in tests).
    Linear16,
}

impl AudioFormat {
    /// Wire encoding.
    pub fn code(self) -> u32 {
        match self {
            AudioFormat::MuLaw8 => 1,
            AudioFormat::Linear16 => 2,
        }
    }

    /// Decodes the format field.
    pub fn from_code(code: u32) -> Option<AudioFormat> {
        match code {
            1 => Some(AudioFormat::MuLaw8),
            2 => Some(AudioFormat::Linear16),
            _ => None,
        }
    }

    /// Bytes per sample.
    pub fn bytes_per_sample(self) -> usize {
        match self {
            AudioFormat::MuLaw8 => 1,
            AudioFormat::Linear16 => 2,
        }
    }
}

/// The audio-specific header (figure 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AudioHeader {
    /// Sampling rate in Hz (8000 for the Pandora codec).
    pub sampling_rate: u32,
    /// Sample format.
    pub format: AudioFormat,
    /// Compression scheme (0 = none; µ-law is considered a format here).
    pub compression: u32,
    /// Length of the sample data in bytes.
    pub data_length: u32,
}

/// A complete audio segment: header plus µ-law sample blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioSegment {
    /// Common header fields.
    pub common: CommonHeader,
    /// Audio-specific header fields.
    pub audio: AudioHeader,
    /// Sample bytes; a whole number of 16-byte blocks for µ-law.
    pub data: Vec<u8>,
}

impl AudioSegment {
    /// Builds a µ-law audio segment from whole 2 ms blocks.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of blocks.
    pub fn from_blocks(sequence: SequenceNumber, timestamp: Timestamp, data: Vec<u8>) -> Self {
        assert!(
            data.len().is_multiple_of(BLOCK_BYTES),
            "audio data must be whole 16-byte blocks, got {} bytes",
            data.len()
        );
        let length = (AUDIO_FULL_HEADER_BYTES + data.len()) as u32;
        AudioSegment {
            common: CommonHeader {
                version: VERSION_ID,
                sequence,
                timestamp,
                segment_type: SegmentType::Audio,
                length,
            },
            audio: AudioHeader {
                sampling_rate: AUDIO_SAMPLE_RATE,
                format: AudioFormat::MuLaw8,
                compression: 0,
                data_length: data.len() as u32,
            },
            data,
        }
    }

    /// Number of whole 2 ms blocks in this segment.
    pub fn block_count(&self) -> usize {
        self.data.len() / BLOCK_BYTES
    }

    /// Iterates over the 16-byte blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(BLOCK_BYTES)
    }

    /// Audio duration covered by this segment, in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.block_count() as u64 * BLOCK_DURATION_NANOS
    }

    /// Total size on the wire.
    pub fn wire_bytes(&self) -> usize {
        AUDIO_FULL_HEADER_BYTES + self.data.len()
    }

    /// Fraction of the wire bytes spent on headers.
    pub fn header_overhead(&self) -> f64 {
        AUDIO_FULL_HEADER_BYTES as f64 / self.wire_bytes() as f64
    }
}

/// Pixel formats for video segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelFormat {
    /// 8-bit greyscale.
    Mono8,
    /// 16-bit colour (the Pandora framestore format).
    Rgb16,
}

impl PixelFormat {
    /// Wire encoding.
    pub fn code(self) -> u32 {
        match self {
            PixelFormat::Mono8 => 1,
            PixelFormat::Rgb16 => 2,
        }
    }

    /// Decodes the pixel-format field.
    pub fn from_code(code: u32) -> Option<PixelFormat> {
        match code {
            1 => Some(PixelFormat::Mono8),
            2 => Some(PixelFormat::Rgb16),
            _ => None,
        }
    }

    /// Bytes per pixel.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Mono8 => 1,
            PixelFormat::Rgb16 => 2,
        }
    }
}

/// Video compression schemes.
///
/// "We have a variable number of fields after the compression type field so
/// that compression parameters for any scheme can be accommodated.
/// Compression schemes and parameters can be changed from one segment to
/// the next" (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoCompression {
    /// Uncompressed pixels.
    None,
    /// Per-line DPCM with optional horizontal sub-sampling.
    Dpcm,
}

impl VideoCompression {
    /// Wire encoding.
    pub fn code(self) -> u32 {
        match self {
            VideoCompression::None => 0,
            VideoCompression::Dpcm => 1,
        }
    }

    /// Decodes the compression-type field.
    pub fn from_code(code: u32) -> Option<VideoCompression> {
        match code {
            0 => Some(VideoCompression::None),
            1 => Some(VideoCompression::Dpcm),
            _ => None,
        }
    }
}

/// The video-specific header (figure 3.2).
///
/// "Video segments do not have to contain a whole frame. A frame can be
/// broken up into a number of rectangular segments, so the segment header
/// contains a count of the number of segments in the frame, the number of
/// this segment within the frame, and enough information to place this
/// segment in the correct position."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoHeader {
    /// Frame this segment belongs to.
    pub frame_number: u32,
    /// Total segments making up the frame.
    pub segments_in_frame: u32,
    /// This segment's index within the frame (0-based).
    pub segment_number: u32,
    /// Horizontal placement of the rectangle.
    pub x_offset: u32,
    /// Vertical placement of the rectangle.
    pub y_offset: u32,
    /// Pixel format of the data.
    pub pixel_format: PixelFormat,
    /// Compression scheme applied to the data.
    pub compression: VideoCompression,
    /// Variable compression arguments (count is the "Argument length" field).
    pub compression_args: Vec<u32>,
    /// Width of the rectangle in pixels ("x Width").
    pub width: u32,
    /// First line of this segment within the rectangle ("Start Line y").
    pub start_line: u32,
    /// Number of lines in this segment ("# Lines y").
    pub lines: u32,
    /// Length of the (possibly compressed) pixel data in bytes.
    pub data_length: u32,
}

/// A complete video segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoSegment {
    /// Common header fields.
    pub common: CommonHeader,
    /// Video-specific header fields.
    pub video: VideoHeader,
    /// Pixel data (compressed per `video.compression`).
    pub data: Vec<u8>,
}

impl VideoSegment {
    /// Builds a video segment, computing the length fields.
    pub fn new(
        sequence: SequenceNumber,
        timestamp: Timestamp,
        mut video: VideoHeader,
        data: Vec<u8>,
    ) -> Self {
        video.data_length = data.len() as u32;
        let length = (COMMON_HEADER_BYTES
            + VIDEO_FIXED_HEADER_BYTES
            + 4 * video.compression_args.len()
            + data.len()) as u32;
        VideoSegment {
            common: CommonHeader {
                version: VERSION_ID,
                sequence,
                timestamp,
                segment_type: SegmentType::Video,
                length,
            },
            video,
            data,
        }
    }

    /// Total size on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.common.length as usize
    }
}

/// An opaque test segment (the `test in`/`test out` handlers of fig. 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSegment {
    /// Common header fields.
    pub common: CommonHeader,
    /// Arbitrary payload.
    pub data: Vec<u8>,
}

impl TestSegment {
    /// Builds a test segment.
    pub fn new(sequence: SequenceNumber, timestamp: Timestamp, data: Vec<u8>) -> Self {
        TestSegment {
            common: CommonHeader {
                version: VERSION_ID,
                sequence,
                timestamp,
                segment_type: SegmentType::Test,
                length: (COMMON_HEADER_BYTES + data.len()) as u32,
            },
            data,
        }
    }
}

/// Any Pandora segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// An audio segment.
    Audio(AudioSegment),
    /// A video segment.
    Video(VideoSegment),
    /// A test segment.
    Test(TestSegment),
}

impl Segment {
    /// The common header shared by every format.
    pub fn common(&self) -> &CommonHeader {
        match self {
            Segment::Audio(s) => &s.common,
            Segment::Video(s) => &s.common,
            Segment::Test(s) => &s.common,
        }
    }

    /// Mutable access to the common header.
    pub fn common_mut(&mut self) -> &mut CommonHeader {
        match self {
            Segment::Audio(s) => &mut s.common,
            Segment::Video(s) => &mut s.common,
            Segment::Test(s) => &mut s.common,
        }
    }

    /// The segment type.
    pub fn segment_type(&self) -> SegmentType {
        self.common().segment_type
    }

    /// Total size on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Segment::Audio(s) => s.wire_bytes(),
            Segment::Video(s) => s.wire_bytes(),
            Segment::Test(s) => s.common.length as usize,
        }
    }

    /// The payload bytes (sample data, pixel data or opaque test data).
    pub fn payload(&self) -> &[u8] {
        match self {
            Segment::Audio(s) => &s.data,
            Segment::Video(s) => &s.data,
            Segment::Test(s) => &s.data,
        }
    }

    /// Returns the audio segment, if this is one.
    pub fn as_audio(&self) -> Option<&AudioSegment> {
        match self {
            Segment::Audio(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the video segment, if this is one.
    pub fn as_video(&self) -> Option<&VideoSegment> {
        match self {
            Segment::Video(s) => Some(s),
            _ => None,
        }
    }
}

/// The headers of a segment, split from its payload bytes.
///
/// This is the unit the zero-copy transport moves around: headers are
/// small and owned, while the payload stays behind a refcounted
/// `SlabRef` (see [`crate::SlabSegment`]). All length bookkeeping
/// (`common.length`, per-format `data_length`) is carried through
/// verbatim, so converting a [`Segment`] to a header and back is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentHeader {
    /// Headers of an audio segment.
    Audio {
        /// Common header fields.
        common: CommonHeader,
        /// Audio-specific header fields.
        audio: AudioHeader,
    },
    /// Headers of a video segment.
    Video {
        /// Common header fields.
        common: CommonHeader,
        /// Video-specific header fields (including compression args).
        video: VideoHeader,
    },
    /// Header of a test segment (common fields only).
    Test {
        /// Common header fields.
        common: CommonHeader,
    },
}

impl SegmentHeader {
    /// Extracts (clones) the headers of a segment.
    pub fn of_segment(segment: &Segment) -> SegmentHeader {
        match segment {
            Segment::Audio(s) => SegmentHeader::Audio {
                common: s.common,
                audio: s.audio,
            },
            Segment::Video(s) => SegmentHeader::Video {
                common: s.common,
                video: s.video.clone(),
            },
            Segment::Test(s) => SegmentHeader::Test { common: s.common },
        }
    }

    /// The common header fields.
    pub fn common(&self) -> &CommonHeader {
        match self {
            SegmentHeader::Audio { common, .. } => common,
            SegmentHeader::Video { common, .. } => common,
            SegmentHeader::Test { common } => common,
        }
    }

    /// Bytes these headers occupy on the wire (before the payload).
    pub fn header_wire_bytes(&self) -> usize {
        match self {
            SegmentHeader::Audio { .. } => AUDIO_FULL_HEADER_BYTES,
            SegmentHeader::Video { video, .. } => {
                COMMON_HEADER_BYTES + VIDEO_FIXED_HEADER_BYTES + 4 * video.compression_args.len()
            }
            SegmentHeader::Test { .. } => COMMON_HEADER_BYTES,
        }
    }

    /// Payload bytes that follow the headers on the wire.
    pub fn payload_wire_bytes(&self) -> usize {
        self.common().length as usize - self.header_wire_bytes()
    }

    /// Total size on the wire, headers plus payload.
    pub fn wire_bytes(&self) -> usize {
        self.common().length as usize
    }

    /// Reattaches a payload, rebuilding the owned [`Segment`].
    ///
    /// All header fields are preserved verbatim; `data` must be the
    /// payload the headers describe (`payload_wire_bytes` long).
    pub fn into_segment(self, data: Vec<u8>) -> Segment {
        match self {
            SegmentHeader::Audio { common, audio } => Segment::Audio(AudioSegment {
                common,
                audio,
                data,
            }),
            SegmentHeader::Video { common, video } => Segment::Video(VideoSegment {
                common,
                video,
                data,
            }),
            SegmentHeader::Test { common } => Segment::Test(TestSegment { common, data }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_segment_sizes() {
        let seg =
            AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), vec![0u8; 2 * BLOCK_BYTES]);
        assert_eq!(seg.block_count(), 2);
        assert_eq!(seg.duration_nanos(), 4_000_000);
        // 36-byte header + 32 bytes of data.
        assert_eq!(seg.wire_bytes(), 68);
        assert_eq!(seg.common.length, 68);
    }

    #[test]
    fn repository_segment_is_356_bytes() {
        // §3.2: 40ms segments contain 320 bytes of data plus a 36-byte header.
        let seg = AudioSegment::from_blocks(
            SequenceNumber(0),
            Timestamp(0),
            vec![0u8; REPOSITORY_BLOCKS_PER_SEGMENT * BLOCK_BYTES],
        );
        assert_eq!(seg.data.len(), 320);
        assert_eq!(seg.wire_bytes(), 356);
        assert_eq!(seg.duration_nanos(), 40_000_000);
    }

    #[test]
    #[should_panic(expected = "whole 16-byte blocks")]
    fn partial_block_rejected() {
        let _ = AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), vec![0u8; 17]);
    }

    #[test]
    fn block_iteration() {
        let mut data = vec![0u8; 32];
        data[16] = 7;
        let seg = AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), data);
        let blocks: Vec<&[u8]> = seg.blocks().collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1][0], 7);
    }

    #[test]
    fn header_overhead_shrinks_with_batching() {
        let live = AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), vec![0u8; 32]);
        let repo = AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), vec![0u8; 320]);
        assert!(live.header_overhead() > 0.5);
        assert!(repo.header_overhead() < 0.11);
    }

    #[test]
    fn video_segment_length_includes_args() {
        let header = VideoHeader {
            frame_number: 1,
            segments_in_frame: 4,
            segment_number: 2,
            x_offset: 10,
            y_offset: 20,
            pixel_format: PixelFormat::Mono8,
            compression: VideoCompression::Dpcm,
            compression_args: vec![2, 1],
            width: 64,
            start_line: 0,
            lines: 8,
            data_length: 0,
        };
        let seg = VideoSegment::new(SequenceNumber(5), Timestamp(9), header, vec![0u8; 100]);
        assert_eq!(seg.video.data_length, 100);
        assert_eq!(seg.wire_bytes(), 20 + 48 + 8 + 100);
        assert_eq!(seg.common.segment_type, SegmentType::Video);
    }

    #[test]
    fn segment_enum_accessors() {
        let a = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(1),
            Timestamp(2),
            vec![0u8; 16],
        ));
        assert_eq!(a.segment_type(), SegmentType::Audio);
        assert!(a.as_audio().is_some());
        assert!(a.as_video().is_none());
        assert_eq!(a.common().sequence, SequenceNumber(1));
    }

    #[test]
    fn header_split_and_rejoin_is_exact() {
        let header = VideoHeader {
            frame_number: 1,
            segments_in_frame: 4,
            segment_number: 2,
            x_offset: 10,
            y_offset: 20,
            pixel_format: PixelFormat::Mono8,
            compression: VideoCompression::Dpcm,
            compression_args: vec![2, 1],
            width: 64,
            start_line: 0,
            lines: 8,
            data_length: 0,
        };
        let video = Segment::Video(VideoSegment::new(
            SequenceNumber(5),
            Timestamp(9),
            header,
            vec![7u8; 100],
        ));
        let audio = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(1),
            Timestamp(2),
            vec![3u8; 32],
        ));
        let test = Segment::Test(TestSegment::new(
            SequenceNumber(8),
            Timestamp(4),
            vec![1, 2],
        ));
        for seg in [video, audio, test] {
            let split = SegmentHeader::of_segment(&seg);
            assert_eq!(split.wire_bytes(), seg.wire_bytes());
            assert_eq!(
                split.header_wire_bytes() + split.payload_wire_bytes(),
                seg.wire_bytes()
            );
            assert_eq!(split.payload_wire_bytes(), seg.payload().len());
            assert_eq!(split.into_segment(seg.payload().to_vec()), seg);
        }
    }

    #[test]
    fn type_codes_round_trip() {
        for t in [SegmentType::Audio, SegmentType::Video, SegmentType::Test] {
            assert_eq!(SegmentType::from_code(t.code()), Some(t));
        }
        assert_eq!(SegmentType::from_code(99), None);
        for f in [AudioFormat::MuLaw8, AudioFormat::Linear16] {
            assert_eq!(AudioFormat::from_code(f.code()), Some(f));
        }
        for p in [PixelFormat::Mono8, PixelFormat::Rgb16] {
            assert_eq!(PixelFormat::from_code(p.code()), Some(p));
        }
        for c in [VideoCompression::None, VideoCompression::Dpcm] {
            assert_eq!(VideoCompression::from_code(c.code()), Some(c));
        }
    }
}
