//! Wire encoding and decoding of Pandora segments.
//!
//! All header fields are big-endian 32-bit words, matching the paper's
//! "each field in the header is 32 bits in length". Within a box, segments
//! travel with a stream-number word prepended ("streams within pandora
//! pass the stream number in an extra field preceding the segment
//! header", §3.4); [`encode_tagged`] / [`decode_tagged`] handle that
//! framing.
//!
//! The zero-copy entry points are [`encode_header_into`] (headers into a
//! caller-provided region, so the payload can be scatter-gathered from
//! its slab) and [`decode_view`] / [`decode_slab`] (headers parsed out,
//! payload left in place as a borrow or a refcounted [`SlabRef`] slice).
//! [`encode`] and [`decode`] remain as the owned-`Vec` compatibility
//! wrappers over the same code.

// check:hot-path: the per-segment codec runs for every hop.

use bytes::Buf;
use pandora_slab::SlabRef;

use crate::format::{
    AudioFormat, AudioHeader, CommonHeader, PixelFormat, Segment, SegmentHeader, SegmentType,
    VideoCompression, VideoHeader, AUDIO_FULL_HEADER_BYTES, COMMON_HEADER_BYTES, VERSION_ID,
    VIDEO_FIXED_HEADER_BYTES,
};
use crate::ids::{SequenceNumber, StreamId, Timestamp};
use crate::slabseg::SlabSegment;

/// Errors produced while decoding a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the advertised length.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The version field did not match [`VERSION_ID`].
    BadVersion(u32),
    /// Unknown segment type code.
    BadType(u32),
    /// Unknown audio format code.
    BadAudioFormat(u32),
    /// Unknown pixel format code.
    BadPixelFormat(u32),
    /// Unknown video compression code.
    BadCompression(u32),
    /// A length field is inconsistent with the enclosing segment.
    BadLength {
        /// The offending value.
        field: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated segment: need {needed} bytes, have {available}"
                )
            }
            WireError::BadVersion(v) => write!(f, "bad version id {v:#x}"),
            WireError::BadType(t) => write!(f, "unknown segment type {t}"),
            WireError::BadAudioFormat(c) => write!(f, "unknown audio format {c}"),
            WireError::BadPixelFormat(c) => write!(f, "unknown pixel format {c}"),
            WireError::BadCompression(c) => write!(f, "unknown compression {c}"),
            WireError::BadLength { field } => write!(f, "inconsistent length field {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes the segment headers into the front of `buf`, returning the
/// number of bytes written ([`SegmentHeader::header_wire_bytes`]).
///
/// This is the zero-copy encoder: the caller scatter-gathers the payload
/// from its slab after the headers instead of materialising a contiguous
/// wire image.
///
/// # Panics
///
/// Panics if `buf` is shorter than the headers.
pub fn encode_header_into(header: &SegmentHeader, buf: &mut [u8]) -> usize {
    let hdr = header.header_wire_bytes();
    assert!(
        buf.len() >= hdr,
        "header region of {} bytes cannot hold {hdr} header bytes",
        buf.len()
    );
    let mut at = 0;
    put_common(buf, &mut at, header.common());
    match header {
        SegmentHeader::Audio { audio, .. } => put_audio_header(buf, &mut at, audio),
        SegmentHeader::Video { video, .. } => put_video_header(buf, &mut at, video),
        SegmentHeader::Test { .. } => {}
    }
    debug_assert_eq!(at, hdr);
    at
}

/// Encodes a segment to its wire representation (owned-`Vec` wrapper
/// over [`encode_header_into`]; the single copy is the payload move into
/// the output buffer).
pub fn encode(segment: &Segment) -> Vec<u8> {
    let header = SegmentHeader::of_segment(segment);
    let mut out = vec![0u8; segment.wire_bytes()];
    let hdr = encode_header_into(&header, &mut out);
    out[hdr..].copy_from_slice(segment.payload());
    out
}

/// Encodes a segment preceded by its in-box stream number word.
pub fn encode_tagged(stream: StreamId, segment: &Segment) -> Vec<u8> {
    let header = SegmentHeader::of_segment(segment);
    let mut out = vec![0u8; 4 + segment.wire_bytes()];
    out[..4].copy_from_slice(&stream.0.to_be_bytes());
    let hdr = 4 + encode_header_into(&header, &mut out[4..]);
    out[hdr..].copy_from_slice(segment.payload());
    out
}

/// A decoded segment whose payload still lives in the input buffer.
///
/// The headers are parsed and owned; the payload is a borrow, so
/// decoding costs O(header) regardless of payload size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentView<'a> {
    /// The parsed, validated headers.
    pub header: SegmentHeader,
    /// The payload bytes, borrowed from the input.
    pub payload: &'a [u8],
}

/// Decodes one segment from `data` without copying the payload.
///
/// Performs exactly the validation of [`decode`]; the returned
/// [`SegmentView`] borrows its payload from `data`.
pub fn decode_view(data: &[u8]) -> Result<SegmentView<'_>, WireError> {
    let mut buf = data;
    if buf.len() < COMMON_HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: COMMON_HEADER_BYTES,
            available: buf.len(),
        });
    }
    let version = buf.get_u32();
    if version != VERSION_ID {
        return Err(WireError::BadVersion(version));
    }
    let sequence = SequenceNumber(buf.get_u32());
    let timestamp = Timestamp(buf.get_u32());
    let type_code = buf.get_u32();
    let segment_type = SegmentType::from_code(type_code).ok_or(WireError::BadType(type_code))?;
    let length = buf.get_u32();
    if (length as usize) > data.len() {
        return Err(WireError::Truncated {
            needed: length as usize,
            available: data.len(),
        });
    }
    if (length as usize) < COMMON_HEADER_BYTES {
        return Err(WireError::BadLength { field: length });
    }
    let common = CommonHeader {
        version,
        sequence,
        timestamp,
        segment_type,
        length,
    };
    let body_len = length as usize - COMMON_HEADER_BYTES;
    let mut body = &buf[..body_len];
    match segment_type {
        SegmentType::Audio => {
            if body.len() < AUDIO_FULL_HEADER_BYTES - COMMON_HEADER_BYTES {
                return Err(WireError::Truncated {
                    needed: AUDIO_FULL_HEADER_BYTES,
                    available: data.len(),
                });
            }
            let sampling_rate = body.get_u32();
            let format_code = body.get_u32();
            let format = AudioFormat::from_code(format_code)
                .ok_or(WireError::BadAudioFormat(format_code))?;
            let compression = body.get_u32();
            let data_length = body.get_u32();
            if data_length as usize != body.len() {
                return Err(WireError::BadLength { field: data_length });
            }
            Ok(SegmentView {
                header: SegmentHeader::Audio {
                    common,
                    audio: AudioHeader {
                        sampling_rate,
                        format,
                        compression,
                        data_length,
                    },
                },
                payload: body,
            })
        }
        SegmentType::Video => {
            if body.len() < VIDEO_FIXED_HEADER_BYTES {
                return Err(WireError::Truncated {
                    needed: COMMON_HEADER_BYTES + VIDEO_FIXED_HEADER_BYTES,
                    available: data.len(),
                });
            }
            let frame_number = body.get_u32();
            let segments_in_frame = body.get_u32();
            let segment_number = body.get_u32();
            let x_offset = body.get_u32();
            let y_offset = body.get_u32();
            let pf_code = body.get_u32();
            let pixel_format =
                PixelFormat::from_code(pf_code).ok_or(WireError::BadPixelFormat(pf_code))?;
            let comp_code = body.get_u32();
            let compression = VideoCompression::from_code(comp_code)
                .ok_or(WireError::BadCompression(comp_code))?;
            let arg_count = body.get_u32();
            if body.len() < arg_count as usize * 4 + 16 {
                return Err(WireError::BadLength { field: arg_count });
            }
            let mut compression_args = Vec::with_capacity(arg_count as usize);
            for _ in 0..arg_count {
                compression_args.push(body.get_u32());
            }
            let width = body.get_u32();
            let start_line = body.get_u32();
            let lines = body.get_u32();
            let data_length = body.get_u32();
            if data_length as usize != body.len() {
                return Err(WireError::BadLength { field: data_length });
            }
            Ok(SegmentView {
                header: SegmentHeader::Video {
                    common,
                    video: VideoHeader {
                        frame_number,
                        segments_in_frame,
                        segment_number,
                        x_offset,
                        y_offset,
                        pixel_format,
                        compression,
                        compression_args,
                        width,
                        start_line,
                        lines,
                        data_length,
                    },
                },
                payload: body,
            })
        }
        SegmentType::Test => Ok(SegmentView {
            header: SegmentHeader::Test { common },
            payload: body,
        }),
    }
}

/// Decodes one segment from `data`, which must contain the whole segment
/// (owned wrapper over [`decode_view`]; the single copy is the payload
/// move out of `data`).
pub fn decode(data: &[u8]) -> Result<Segment, WireError> {
    let view = decode_view(data)?;
    // check:allow(hot-path-alloc): the legacy owned path copies here by contract.
    Ok(view.header.into_segment(view.payload.to_vec()))
}

/// Decodes a whole received frame that lives in a slab, leaving the
/// payload in place.
///
/// The headers are parsed (and validated exactly as [`decode`] does) via
/// an uncounted read; the payload becomes an O(1) [`SlabRef`] subslice of
/// `frame` — no payload bytes move.
pub fn decode_slab(frame: &SlabRef) -> Result<SlabSegment, WireError> {
    let header = frame.with(|bytes| decode_view(bytes).map(|view| view.header))?;
    let payload = frame.slice(header.header_wire_bytes(), header.payload_wire_bytes());
    Ok(SlabSegment { header, payload })
}

/// Decodes a stream-number-tagged segment.
pub fn decode_tagged(data: &[u8]) -> Result<(StreamId, Segment), WireError> {
    if data.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            available: data.len(),
        });
    }
    let stream = StreamId(u32::from_be_bytes([data[0], data[1], data[2], data[3]]));
    let segment = decode(&data[4..])?;
    Ok((stream, segment))
}

fn put_u32(buf: &mut [u8], at: &mut usize, value: u32) {
    buf[*at..*at + 4].copy_from_slice(&value.to_be_bytes());
    *at += 4;
}

fn put_common(buf: &mut [u8], at: &mut usize, h: &CommonHeader) {
    put_u32(buf, at, h.version);
    put_u32(buf, at, h.sequence.0);
    put_u32(buf, at, h.timestamp.0);
    put_u32(buf, at, h.segment_type.code());
    put_u32(buf, at, h.length);
}

fn put_audio_header(buf: &mut [u8], at: &mut usize, h: &AudioHeader) {
    put_u32(buf, at, h.sampling_rate);
    put_u32(buf, at, h.format.code());
    put_u32(buf, at, h.compression);
    put_u32(buf, at, h.data_length);
}

fn put_video_header(buf: &mut [u8], at: &mut usize, h: &VideoHeader) {
    put_u32(buf, at, h.frame_number);
    put_u32(buf, at, h.segments_in_frame);
    put_u32(buf, at, h.segment_number);
    put_u32(buf, at, h.x_offset);
    put_u32(buf, at, h.y_offset);
    put_u32(buf, at, h.pixel_format.code());
    put_u32(buf, at, h.compression.code());
    put_u32(buf, at, h.compression_args.len() as u32);
    for a in &h.compression_args {
        put_u32(buf, at, *a);
    }
    put_u32(buf, at, h.width);
    put_u32(buf, at, h.start_line);
    put_u32(buf, at, h.lines);
    put_u32(buf, at, h.data_length);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{AudioSegment, TestSegment, VideoSegment};
    use pandora_slab::ByteSlab;

    fn sample_audio() -> Segment {
        Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(42),
            Timestamp(1000),
            (0u8..32).collect(),
        ))
    }

    fn sample_video() -> Segment {
        Segment::Video(VideoSegment::new(
            SequenceNumber(7),
            Timestamp(2000),
            VideoHeader {
                frame_number: 3,
                segments_in_frame: 2,
                segment_number: 1,
                x_offset: 16,
                y_offset: 32,
                pixel_format: PixelFormat::Mono8,
                compression: VideoCompression::Dpcm,
                compression_args: vec![2],
                width: 64,
                start_line: 8,
                lines: 4,
                data_length: 0,
            },
            (0u8..=255).collect(),
        ))
    }

    #[test]
    fn audio_round_trip() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert_eq!(bytes.len(), seg.wire_bytes());
        assert_eq!(decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn video_round_trip() {
        let seg = sample_video();
        let bytes = encode(&seg);
        assert_eq!(bytes.len(), seg.wire_bytes());
        assert_eq!(decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn test_segment_round_trip() {
        let seg = Segment::Test(TestSegment::new(
            SequenceNumber(9),
            Timestamp(1),
            vec![1, 2, 3, 4, 5],
        ));
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
    }

    #[test]
    fn tagged_round_trip() {
        let seg = sample_audio();
        let bytes = encode_tagged(StreamId(17), &seg);
        let (stream, out) = decode_tagged(&bytes).unwrap();
        assert_eq!(stream, StreamId(17));
        assert_eq!(out, seg);
    }

    #[test]
    fn view_decodes_header_and_borrows_payload() {
        for seg in [sample_audio(), sample_video()] {
            let bytes = encode(&seg);
            let view = decode_view(&bytes).unwrap();
            assert_eq!(view.header, SegmentHeader::of_segment(&seg));
            assert_eq!(view.payload, seg.payload());
            // The payload really is a borrow into the wire image.
            let hdr = view.header.header_wire_bytes();
            assert!(std::ptr::eq(view.payload.as_ptr(), bytes[hdr..].as_ptr()));
        }
    }

    #[test]
    fn header_encoder_matches_owned_encoder() {
        for seg in [sample_audio(), sample_video()] {
            let header = SegmentHeader::of_segment(&seg);
            let mut region = vec![0u8; header.header_wire_bytes()];
            let written = encode_header_into(&header, &mut region);
            assert_eq!(written, header.header_wire_bytes());
            assert_eq!(region, encode(&seg)[..written]);
        }
    }

    #[test]
    fn slab_decode_leaves_payload_in_place() {
        let slab = ByteSlab::new(2, 1024);
        let seg = sample_video();
        let frame = slab.try_alloc_copy(&encode(&seg)).unwrap();
        let out = decode_slab(&frame).unwrap();
        assert_eq!(out.header, SegmentHeader::of_segment(&seg));
        out.payload.with(|p| assert_eq!(p, seg.payload()));
        // The subslice shares the frame's slab: decoding copied nothing.
        assert_eq!(out.payload.slab_index(), frame.slab_index());
        assert_eq!(frame.ref_count(), 2);
        assert_eq!(out.to_segment(), seg);
    }

    #[test]
    fn slab_decode_rejects_what_decode_rejects() {
        let slab = ByteSlab::new(2, 1024);
        let mut bytes = encode(&sample_audio());
        bytes[0] ^= 0xFF;
        let frame = slab.try_alloc_copy(&bytes).unwrap();
        assert!(matches!(decode_slab(&frame), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn truncated_header_rejected() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert!(matches!(
            decode(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert!(matches!(
            decode(&bytes[..40]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn bad_type_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        bytes[15] = 99; // Type field low byte.
        assert!(matches!(decode(&bytes), Err(WireError::BadType(99))));
    }

    #[test]
    fn corrupt_data_length_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        // The audio data_length field is at offset 32..36.
        bytes[35] = bytes[35].wrapping_add(1);
        assert!(matches!(decode(&bytes), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn error_display_strings() {
        let e = WireError::Truncated {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("truncated"));
        assert!(WireError::BadVersion(3).to_string().contains("bad version"));
    }
}
