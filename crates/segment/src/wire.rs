//! Wire encoding and decoding of Pandora segments.
//!
//! All header fields are big-endian 32-bit words, matching the paper's
//! "each field in the header is 32 bits in length". Within a box, segments
//! travel with a stream-number word prepended ("streams within pandora
//! pass the stream number in an extra field preceding the segment
//! header", §3.4); [`encode_tagged`] / [`decode_tagged`] handle that
//! framing.

use bytes::{Buf, BufMut, BytesMut};

use crate::format::{
    AudioFormat, AudioHeader, AudioSegment, CommonHeader, PixelFormat, Segment, SegmentType,
    TestSegment, VideoCompression, VideoHeader, VideoSegment, AUDIO_FULL_HEADER_BYTES,
    COMMON_HEADER_BYTES, VERSION_ID, VIDEO_FIXED_HEADER_BYTES,
};
use crate::ids::{SequenceNumber, StreamId, Timestamp};

/// Errors produced while decoding a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the advertised length.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The version field did not match [`VERSION_ID`].
    BadVersion(u32),
    /// Unknown segment type code.
    BadType(u32),
    /// Unknown audio format code.
    BadAudioFormat(u32),
    /// Unknown pixel format code.
    BadPixelFormat(u32),
    /// Unknown video compression code.
    BadCompression(u32),
    /// A length field is inconsistent with the enclosing segment.
    BadLength {
        /// The offending value.
        field: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated segment: need {needed} bytes, have {available}"
                )
            }
            WireError::BadVersion(v) => write!(f, "bad version id {v:#x}"),
            WireError::BadType(t) => write!(f, "unknown segment type {t}"),
            WireError::BadAudioFormat(c) => write!(f, "unknown audio format {c}"),
            WireError::BadPixelFormat(c) => write!(f, "unknown pixel format {c}"),
            WireError::BadCompression(c) => write!(f, "unknown compression {c}"),
            WireError::BadLength { field } => write!(f, "inconsistent length field {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a segment to its wire representation.
pub fn encode(segment: &Segment) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(segment.wire_bytes());
    put_common(&mut buf, segment.common());
    match segment {
        Segment::Audio(s) => {
            put_audio_header(&mut buf, &s.audio);
            buf.put_slice(&s.data);
        }
        Segment::Video(s) => {
            put_video_header(&mut buf, &s.video);
            buf.put_slice(&s.data);
        }
        Segment::Test(s) => {
            buf.put_slice(&s.data);
        }
    }
    buf.to_vec()
}

/// Encodes a segment preceded by its in-box stream number word.
pub fn encode_tagged(stream: StreamId, segment: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + segment.wire_bytes());
    out.extend_from_slice(&stream.0.to_be_bytes());
    out.extend_from_slice(&encode(segment));
    out
}

/// Decodes one segment from `data`, which must contain the whole segment.
pub fn decode(data: &[u8]) -> Result<Segment, WireError> {
    let mut buf = data;
    if buf.len() < COMMON_HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: COMMON_HEADER_BYTES,
            available: buf.len(),
        });
    }
    let version = buf.get_u32();
    if version != VERSION_ID {
        return Err(WireError::BadVersion(version));
    }
    let sequence = SequenceNumber(buf.get_u32());
    let timestamp = Timestamp(buf.get_u32());
    let type_code = buf.get_u32();
    let segment_type = SegmentType::from_code(type_code).ok_or(WireError::BadType(type_code))?;
    let length = buf.get_u32();
    if (length as usize) > data.len() {
        return Err(WireError::Truncated {
            needed: length as usize,
            available: data.len(),
        });
    }
    if (length as usize) < COMMON_HEADER_BYTES {
        return Err(WireError::BadLength { field: length });
    }
    let common = CommonHeader {
        version,
        sequence,
        timestamp,
        segment_type,
        length,
    };
    let body_len = length as usize - COMMON_HEADER_BYTES;
    let mut body = &buf[..body_len];
    match segment_type {
        SegmentType::Audio => {
            if body.len() < AUDIO_FULL_HEADER_BYTES - COMMON_HEADER_BYTES {
                return Err(WireError::Truncated {
                    needed: AUDIO_FULL_HEADER_BYTES,
                    available: data.len(),
                });
            }
            let sampling_rate = body.get_u32();
            let format_code = body.get_u32();
            let format = AudioFormat::from_code(format_code)
                .ok_or(WireError::BadAudioFormat(format_code))?;
            let compression = body.get_u32();
            let data_length = body.get_u32();
            if data_length as usize != body.len() {
                return Err(WireError::BadLength { field: data_length });
            }
            Ok(Segment::Audio(AudioSegment {
                common,
                audio: AudioHeader {
                    sampling_rate,
                    format,
                    compression,
                    data_length,
                },
                data: body.to_vec(),
            }))
        }
        SegmentType::Video => {
            if body.len() < VIDEO_FIXED_HEADER_BYTES {
                return Err(WireError::Truncated {
                    needed: COMMON_HEADER_BYTES + VIDEO_FIXED_HEADER_BYTES,
                    available: data.len(),
                });
            }
            let frame_number = body.get_u32();
            let segments_in_frame = body.get_u32();
            let segment_number = body.get_u32();
            let x_offset = body.get_u32();
            let y_offset = body.get_u32();
            let pf_code = body.get_u32();
            let pixel_format =
                PixelFormat::from_code(pf_code).ok_or(WireError::BadPixelFormat(pf_code))?;
            let comp_code = body.get_u32();
            let compression = VideoCompression::from_code(comp_code)
                .ok_or(WireError::BadCompression(comp_code))?;
            let arg_count = body.get_u32();
            if body.len() < arg_count as usize * 4 + 16 {
                return Err(WireError::BadLength { field: arg_count });
            }
            let mut compression_args = Vec::with_capacity(arg_count as usize);
            for _ in 0..arg_count {
                compression_args.push(body.get_u32());
            }
            let width = body.get_u32();
            let start_line = body.get_u32();
            let lines = body.get_u32();
            let data_length = body.get_u32();
            if data_length as usize != body.len() {
                return Err(WireError::BadLength { field: data_length });
            }
            Ok(Segment::Video(VideoSegment {
                common,
                video: VideoHeader {
                    frame_number,
                    segments_in_frame,
                    segment_number,
                    x_offset,
                    y_offset,
                    pixel_format,
                    compression,
                    compression_args,
                    width,
                    start_line,
                    lines,
                    data_length,
                },
                data: body.to_vec(),
            }))
        }
        SegmentType::Test => Ok(Segment::Test(TestSegment {
            common,
            data: body.to_vec(),
        })),
    }
}

/// Decodes a stream-number-tagged segment.
pub fn decode_tagged(data: &[u8]) -> Result<(StreamId, Segment), WireError> {
    if data.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            available: data.len(),
        });
    }
    let stream = StreamId(u32::from_be_bytes([data[0], data[1], data[2], data[3]]));
    let segment = decode(&data[4..])?;
    Ok((stream, segment))
}

fn put_common(buf: &mut BytesMut, h: &CommonHeader) {
    buf.put_u32(h.version);
    buf.put_u32(h.sequence.0);
    buf.put_u32(h.timestamp.0);
    buf.put_u32(h.segment_type.code());
    buf.put_u32(h.length);
}

fn put_audio_header(buf: &mut BytesMut, h: &AudioHeader) {
    buf.put_u32(h.sampling_rate);
    buf.put_u32(h.format.code());
    buf.put_u32(h.compression);
    buf.put_u32(h.data_length);
}

fn put_video_header(buf: &mut BytesMut, h: &VideoHeader) {
    buf.put_u32(h.frame_number);
    buf.put_u32(h.segments_in_frame);
    buf.put_u32(h.segment_number);
    buf.put_u32(h.x_offset);
    buf.put_u32(h.y_offset);
    buf.put_u32(h.pixel_format.code());
    buf.put_u32(h.compression.code());
    buf.put_u32(h.compression_args.len() as u32);
    for a in &h.compression_args {
        buf.put_u32(*a);
    }
    buf.put_u32(h.width);
    buf.put_u32(h.start_line);
    buf.put_u32(h.lines);
    buf.put_u32(h.data_length);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_audio() -> Segment {
        Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(42),
            Timestamp(1000),
            (0u8..32).collect(),
        ))
    }

    fn sample_video() -> Segment {
        Segment::Video(VideoSegment::new(
            SequenceNumber(7),
            Timestamp(2000),
            VideoHeader {
                frame_number: 3,
                segments_in_frame: 2,
                segment_number: 1,
                x_offset: 16,
                y_offset: 32,
                pixel_format: PixelFormat::Mono8,
                compression: VideoCompression::Dpcm,
                compression_args: vec![2],
                width: 64,
                start_line: 8,
                lines: 4,
                data_length: 0,
            },
            (0u8..=255).collect(),
        ))
    }

    #[test]
    fn audio_round_trip() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert_eq!(bytes.len(), seg.wire_bytes());
        assert_eq!(decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn video_round_trip() {
        let seg = sample_video();
        let bytes = encode(&seg);
        assert_eq!(bytes.len(), seg.wire_bytes());
        assert_eq!(decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn test_segment_round_trip() {
        let seg = Segment::Test(TestSegment::new(
            SequenceNumber(9),
            Timestamp(1),
            vec![1, 2, 3, 4, 5],
        ));
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
    }

    #[test]
    fn tagged_round_trip() {
        let seg = sample_audio();
        let bytes = encode_tagged(StreamId(17), &seg);
        let (stream, out) = decode_tagged(&bytes).unwrap();
        assert_eq!(stream, StreamId(17));
        assert_eq!(out, seg);
    }

    #[test]
    fn truncated_header_rejected() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert!(matches!(
            decode(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let seg = sample_audio();
        let bytes = encode(&seg);
        assert!(matches!(
            decode(&bytes[..40]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn bad_type_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        bytes[15] = 99; // Type field low byte.
        assert!(matches!(decode(&bytes), Err(WireError::BadType(99))));
    }

    #[test]
    fn corrupt_data_length_rejected() {
        let seg = sample_audio();
        let mut bytes = encode(&seg);
        // The audio data_length field is at offset 32..36.
        bytes[35] = bytes[35].wrapping_add(1);
        assert!(matches!(decode(&bytes), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn error_display_strings() {
        let e = WireError::Truncated {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("truncated"));
        assert!(WireError::BadVersion(3).to_string().contains("bad version"));
    }
}
