//! # pandora-slab — slab-backed refcounted byte regions
//!
//! The byte-level half of the §3.4 allocator. Where [`pandora-buffers`]'
//! `Pool` reference-counts *descriptors* (indices of typed values), this
//! crate owns the payload *bytes* themselves: an arena of fixed-capacity
//! slab regions, all allocated once at construction and never resized,
//! handed out as refcounted [`SlabRef`] slices. Cloning a `SlabRef` bumps a counter; subslicing is
//! O(1); nothing is memcpy'd until a device boundary is crossed.
//!
//! The paper's two-copy invariant — segment data is "copied once on input
//! and once on output", everything in between moves buffer indices — is
//! made *checkable* here: every byte that crosses into the arena
//! ([`ByteSlab::try_alloc_copy`], [`SlabWriter::append`]) or out of it
//! ([`SlabRef::copy_to_vec`], [`SlabRef::copy_out_with`]) is counted, so a
//! test can assert the steady-state copies per hop. Reads that do not copy
//! ([`SlabRef::with`]) are free.
//!
//! Like the descriptor pool, the arena audits itself: when the last
//! [`ByteSlab`] handle drops while `SlabRef`s are still outstanding, the
//! leaked slab indices are reported on stderr and recorded for
//! [`take_slab_leak_report`].

// check:hot-path: the transport data path allocates from this arena only.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Errors produced by slab allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// Every slab is in use — the §3.4 "serious fault".
    Exhausted,
    /// The data does not fit one slab region.
    TooLarge {
        /// Bytes the caller needed.
        needed: usize,
        /// Fixed capacity of one slab.
        slab_bytes: usize,
    },
}

impl fmt::Display for SlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlabError::Exhausted => write!(f, "byte slab exhausted"),
            SlabError::TooLarge { needed, slab_bytes } => {
                write!(
                    f,
                    "payload of {needed} bytes exceeds slab size {slab_bytes}"
                )
            }
        }
    }
}

impl std::error::Error for SlabError {}

struct Slot {
    refs: u32,
    len: usize,
    /// The region's bytes, allocated once at arena construction. `None`
    /// only while a [`SlabWriter`] owns the buffer outright — writers
    /// take it out so the append hot path indexes a plain slice with no
    /// per-call borrow of shared state.
    buf: Option<Box<[u8]>>,
}

struct SlabInner {
    slots: RefCell<Vec<Slot>>,
    free: RefCell<Vec<usize>>,
    slab_bytes: usize,
    /// Live `ByteSlab` handles; the leak audit fires when the last drops
    /// (`SlabRef`s keep the `Rc` alive, so `Drop` of the inner cannot be
    /// the trigger as it is for the descriptor pool).
    handles: Cell<usize>,
    allocations: Cell<u64>,
    alloc_failures: Cell<u64>,
    copied_in: Cell<u64>,
    copied_out: Cell<u64>,
}

impl SlabInner {
    #[inline]
    fn incref(&self, index: usize) {
        self.slots.borrow_mut()[index].refs += 1;
    }

    #[inline]
    fn decref(&self, index: usize) {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[index];
        debug_assert!(slot.refs > 0, "decref of a free slab {index}");
        slot.refs -= 1;
        if slot.refs == 0 {
            slot.len = 0;
            drop(slots);
            self.free.borrow_mut().push(index);
        }
    }
}

/// Drop-time audit record: slabs still referenced when the last
/// [`ByteSlab`] handle went away. See [`take_slab_leak_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabLeakReport {
    /// Total slabs in the audited arena.
    pub capacity: usize,
    /// Leaked slabs: index and outstanding reference count.
    pub leaked: Vec<(usize, u32)>,
}

thread_local! {
    static LAST_SLAB_LEAK: RefCell<Option<SlabLeakReport>> = const { RefCell::new(None) };
}

/// Takes (and clears) the leak report from the most recently dropped
/// leaking [`ByteSlab`] on this thread, if any. Dropping a balanced arena
/// leaves it `None`.
pub fn take_slab_leak_report() -> Option<SlabLeakReport> {
    LAST_SLAB_LEAK.with(|l| l.borrow_mut().take())
}

/// A fixed arena of `count` byte slabs of `slab_bytes` each, allocated
/// once at construction. Cloning the handle shares the same arena.
pub struct ByteSlab {
    inner: Rc<SlabInner>,
}

impl Clone for ByteSlab {
    fn clone(&self) -> Self {
        self.inner.handles.set(self.inner.handles.get() + 1);
        ByteSlab {
            inner: self.inner.clone(),
        }
    }
}

impl Drop for ByteSlab {
    /// Audits the arena when the last handle goes away: any slab with a
    /// live reference count is reported on stderr and recorded for
    /// [`take_slab_leak_report`].
    fn drop(&mut self) {
        let handles = self.inner.handles.get() - 1;
        self.inner.handles.set(handles);
        if handles > 0 {
            return;
        }
        let slots = self.inner.slots.borrow();
        let leaked: Vec<(usize, u32)> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.refs > 0)
            .map(|(i, s)| (i, s.refs))
            .collect();
        if leaked.is_empty() {
            return;
        }
        eprintln!(
            "pandora-slab: arena dropped with {} referenced slab(s) of {}:",
            leaked.len(),
            slots.len()
        );
        for (i, refs) in &leaked {
            eprintln!("  slab {i} with {refs} outstanding reference(s)");
        }
        LAST_SLAB_LEAK.with(|l| {
            *l.borrow_mut() = Some(SlabLeakReport {
                capacity: slots.len(),
                leaked,
            });
        });
    }
}

impl fmt::Debug for ByteSlab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByteSlab")
            .field("capacity", &self.capacity())
            .field("slab_bytes", &self.inner.slab_bytes)
            .field("free", &self.free_count())
            .finish()
    }
}

impl ByteSlab {
    /// Creates an arena of `count` slabs of `slab_bytes` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(count: usize, slab_bytes: usize) -> ByteSlab {
        assert!(count > 0, "slab count must be non-zero");
        assert!(slab_bytes > 0, "slab size must be non-zero");
        let mut slots = Vec::with_capacity(count);
        for _ in 0..count {
            slots.push(Slot {
                refs: 0,
                len: 0,
                buf: Some(vec![0u8; slab_bytes].into_boxed_slice()),
            });
        }
        ByteSlab {
            inner: Rc::new(SlabInner {
                slots: RefCell::new(slots),
                free: RefCell::new((0..count).rev().collect()),
                slab_bytes,
                handles: Cell::new(1),
                allocations: Cell::new(0),
                alloc_failures: Cell::new(0),
                copied_in: Cell::new(0),
                copied_out: Cell::new(0),
            }),
        }
    }

    #[inline]
    fn grab_slot(&self) -> Result<usize, SlabError> {
        match self.inner.free.borrow_mut().pop() {
            Some(index) => {
                let mut slots = self.inner.slots.borrow_mut();
                let slot = &mut slots[index];
                slot.refs = 1;
                slot.len = 0;
                self.inner.allocations.set(self.inner.allocations.get() + 1);
                Ok(index)
            }
            None => {
                self.inner
                    .alloc_failures
                    .set(self.inner.alloc_failures.get() + 1);
                Err(SlabError::Exhausted)
            }
        }
    }

    /// Allocates a slab and copies `data` into it — an *input* copy,
    /// counted against [`ByteSlab::copied_in_bytes`].
    pub fn try_alloc_copy(&self, data: &[u8]) -> Result<SlabRef, SlabError> {
        if data.len() > self.inner.slab_bytes {
            self.inner
                .alloc_failures
                .set(self.inner.alloc_failures.get() + 1);
            return Err(SlabError::TooLarge {
                needed: data.len(),
                slab_bytes: self.inner.slab_bytes,
            });
        }
        let index = self.grab_slot()?;
        {
            let mut slots = self.inner.slots.borrow_mut();
            let slot = &mut slots[index];
            // check:allow(no-unwrap): free-listed slots always hold their buffer.
            let buf = slot.buf.as_mut().expect("allocated slab owns its buffer");
            buf[..data.len()].copy_from_slice(data);
            slot.len = data.len();
        }
        self.inner
            .copied_in
            .set(self.inner.copied_in.get() + data.len() as u64);
        Ok(SlabRef {
            inner: self.inner.clone(),
            index,
            offset: 0,
            len: data.len(),
        })
    }

    /// Allocates an empty slab for incremental filling (reassembly).
    ///
    /// The writer takes the region's buffer *out* of the arena for the
    /// duration: appends index an owned slice directly, with no shared
    /// state touched until [`SlabWriter::freeze`] puts it back.
    #[inline]
    pub fn try_writer(&self) -> Result<SlabWriter, SlabError> {
        let index = self.grab_slot()?;
        let buf = self.inner.slots.borrow_mut()[index]
            .buf
            .take()
            // check:allow(no-unwrap): free-listed slots always hold their buffer.
            .expect("allocated slab owns its buffer");
        Ok(SlabWriter {
            inner: self.inner.clone(),
            index,
            buf,
            written: 0,
            frozen: false,
        })
    }

    /// Fixed byte capacity of one slab.
    pub fn slab_bytes(&self) -> usize {
        self.inner.slab_bytes
    }

    /// Total slabs in the arena.
    pub fn capacity(&self) -> usize {
        self.inner.slots.borrow().len()
    }

    /// Slabs currently free.
    pub fn free_count(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Total successful slab allocations.
    pub fn allocations(&self) -> u64 {
        self.inner.allocations.get()
    }

    /// Allocations refused (exhausted or oversized).
    pub fn alloc_failures(&self) -> u64 {
        self.inner.alloc_failures.get()
    }

    /// Bytes copied *into* the arena (the input copies).
    pub fn copied_in_bytes(&self) -> u64 {
        self.inner.copied_in.get()
    }

    /// Bytes copied *out of* the arena (the output copies).
    pub fn copied_out_bytes(&self) -> u64 {
        self.inner.copied_out.get()
    }

    /// Zeroes both copy counters (for scoped measurements in tests).
    pub fn reset_copy_counters(&self) {
        self.inner.copied_in.set(0);
        self.inner.copied_out.set(0);
    }
}

/// A refcounted slice of one slab. Clone bumps the slab's reference
/// count; drop decrements it and frees the slab at zero.
pub struct SlabRef {
    inner: Rc<SlabInner>,
    index: usize,
    offset: usize,
    len: usize,
}

impl Clone for SlabRef {
    fn clone(&self) -> Self {
        self.inner.incref(self.index);
        SlabRef {
            inner: self.inner.clone(),
            index: self.index,
            offset: self.offset,
            len: self.len,
        }
    }
}

impl Drop for SlabRef {
    fn drop(&mut self) {
        self.inner.decref(self.index);
    }
}

impl fmt::Debug for SlabRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabRef")
            .field("slab", &self.index)
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl PartialEq for SlabRef {
    /// Content equality (two refs may alias different slabs).
    fn eq(&self, other: &SlabRef) -> bool {
        self.with(|a| other.with(|b| a == b))
    }
}

impl Eq for SlabRef {}

impl SlabRef {
    /// Bytes in this slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slab index backing this slice (for leak-audit assertions).
    pub fn slab_index(&self) -> usize {
        self.index
    }

    /// Current reference count of the backing slab.
    pub fn ref_count(&self) -> u32 {
        self.inner.slots.borrow()[self.index].refs
    }

    /// An O(1) subslice sharing the same slab (reference count +1).
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds this slice.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> SlabRef {
        assert!(
            offset + len <= self.len,
            "slice {offset}+{len} out of bounds of {}",
            self.len
        );
        self.inner.incref(self.index);
        SlabRef {
            inner: self.inner.clone(),
            index: self.index,
            offset: self.offset + offset,
            len,
        }
    }

    /// Reads the bytes without copying (parsing, checksums, size math).
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let slots = self.inner.slots.borrow();
        // `SlabRef`s are only minted by `try_alloc_copy` and `freeze`,
        // both of which leave the buffer in the slot; a writer (the
        // only taker of a buffer) holds no `SlabRef`.
        let buf = slots[self.index]
            .buf
            .as_ref()
            // check:allow(no-unwrap): refs exist only for buffered slots.
            .expect("referenced slab owns its buffer");
        f(&buf[self.offset..self.offset + self.len])
    }

    /// Reads the bytes for a copy *out* of the arena; counts `len` bytes
    /// against [`ByteSlab::copied_out_bytes`]. Use this (not
    /// [`SlabRef::with`]) wherever the callee duplicates the data.
    #[inline]
    pub fn copy_out_with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        self.inner
            .copied_out
            .set(self.inner.copied_out.get() + self.len as u64);
        self.with(f)
    }

    /// Copies the bytes into a fresh `Vec` — the sanctioned *output* copy.
    pub fn copy_to_vec(&self) -> Vec<u8> {
        // check:allow(hot-path-alloc): this IS the counted output copy.
        self.copy_out_with(|b| b.to_vec())
    }
}

/// Exclusive write access to one freshly allocated slab; bytes are
/// appended (each append is a counted input copy) and the region is then
/// frozen into an immutable [`SlabRef`]. Dropping an unfrozen writer
/// frees the slab.
///
/// The writer owns its region's buffer outright (taken from the arena at
/// [`ByteSlab::try_writer`], returned at freeze or drop), so the
/// per-cell reassembly hot path writes into a plain owned slice.
pub struct SlabWriter {
    inner: Rc<SlabInner>,
    index: usize,
    buf: Box<[u8]>,
    written: usize,
    frozen: bool,
}

impl fmt::Debug for SlabWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabWriter")
            .field("slab", &self.index)
            .field("written", &self.written)
            .finish()
    }
}

impl SlabWriter {
    /// Appends `data`. The bytes count against
    /// [`ByteSlab::copied_in_bytes`] when the region is frozen (abandoned
    /// regions never became a frame, so their bytes are not charged).
    ///
    /// Fails with [`SlabError::TooLarge`] when the slab would overflow;
    /// the bytes written so far stay intact.
    #[inline]
    pub fn append(&mut self, data: &[u8]) -> Result<(), SlabError> {
        if self.written + data.len() > self.buf.len() {
            return Err(SlabError::TooLarge {
                needed: self.written + data.len(),
                slab_bytes: self.buf.len(),
            });
        }
        self.buf[self.written..self.written + data.len()].copy_from_slice(data);
        self.written += data.len();
        Ok(())
    }

    /// Bytes appended so far.
    pub fn len(&self) -> usize {
        self.written
    }

    /// True when nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Bytes still available in the slab.
    pub fn remaining(&self) -> usize {
        self.inner.slab_bytes - self.written
    }

    /// Freezes the written region into an immutable [`SlabRef`],
    /// charging the appended bytes as the region's input copy.
    #[inline]
    pub fn freeze(mut self) -> SlabRef {
        self.frozen = true;
        {
            let mut slots = self.inner.slots.borrow_mut();
            let slot = &mut slots[self.index];
            slot.buf = Some(std::mem::take(&mut self.buf));
            slot.len = self.written;
        }
        self.inner
            .copied_in
            .set(self.inner.copied_in.get() + self.written as u64);
        SlabRef {
            inner: self.inner.clone(),
            index: self.index,
            offset: 0,
            len: self.written,
        }
    }
}

impl Drop for SlabWriter {
    fn drop(&mut self) {
        if !self.frozen {
            // Abandoned region: hand the buffer back before freeing.
            self.inner.slots.borrow_mut()[self.index].buf = Some(std::mem::take(&mut self.buf));
            self.inner.decref(self.index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_copy_and_drop_cycle() {
        let slab = ByteSlab::new(2, 64);
        let r = slab.try_alloc_copy(&[1, 2, 3]).unwrap();
        assert_eq!(slab.free_count(), 1);
        assert_eq!(r.len(), 3);
        r.with(|b| assert_eq!(b, &[1, 2, 3]));
        drop(r);
        assert_eq!(slab.free_count(), 2);
    }

    #[test]
    fn clone_bumps_refcount_and_last_drop_frees() {
        let slab = ByteSlab::new(1, 16);
        let a = slab.try_alloc_copy(&[9]).unwrap();
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        drop(a);
        assert_eq!(slab.free_count(), 0);
        drop(b);
        assert_eq!(slab.free_count(), 1);
    }

    #[test]
    fn subslice_is_a_view_with_its_own_reference() {
        let slab = ByteSlab::new(1, 64);
        let whole = slab.try_alloc_copy(&[0, 1, 2, 3, 4, 5]).unwrap();
        let mid = whole.slice(2, 3);
        mid.with(|b| assert_eq!(b, &[2, 3, 4]));
        assert_eq!(whole.ref_count(), 2);
        drop(whole);
        // The subslice alone keeps the slab alive.
        assert_eq!(slab.free_count(), 0);
        mid.with(|b| assert_eq!(b, &[2, 3, 4]));
        drop(mid);
        assert_eq!(slab.free_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_subslice_panics() {
        let slab = ByteSlab::new(1, 64);
        let r = slab.try_alloc_copy(&[1, 2]).unwrap();
        let _ = r.slice(1, 2);
    }

    #[test]
    fn exhaustion_and_oversize_fail() {
        let slab = ByteSlab::new(1, 4);
        assert_eq!(
            slab.try_alloc_copy(&[0u8; 5]).unwrap_err(),
            SlabError::TooLarge {
                needed: 5,
                slab_bytes: 4
            }
        );
        let _held = slab.try_alloc_copy(&[1]).unwrap();
        assert_eq!(slab.try_alloc_copy(&[2]).unwrap_err(), SlabError::Exhausted);
        assert_eq!(slab.alloc_failures(), 2);
        assert_eq!(slab.allocations(), 1);
    }

    #[test]
    fn writer_appends_and_freezes() {
        let slab = ByteSlab::new(1, 8);
        let mut w = slab.try_writer().unwrap();
        w.append(&[1, 2, 3]).unwrap();
        w.append(&[4]).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w.remaining(), 4);
        let r = w.freeze();
        r.with(|b| assert_eq!(b, &[1, 2, 3, 4]));
        drop(r);
        assert_eq!(slab.free_count(), 1);
    }

    #[test]
    fn writer_overflow_keeps_prefix() {
        let slab = ByteSlab::new(1, 4);
        let mut w = slab.try_writer().unwrap();
        w.append(&[1, 2, 3]).unwrap();
        assert!(matches!(
            w.append(&[4, 5]),
            Err(SlabError::TooLarge { needed: 5, .. })
        ));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn abandoned_writer_frees_its_slab() {
        let slab = ByteSlab::new(1, 8);
        {
            let mut w = slab.try_writer().unwrap();
            w.append(&[1]).unwrap();
        }
        assert_eq!(slab.free_count(), 1);
    }

    #[test]
    fn copy_counters_track_in_and_out() {
        let slab = ByteSlab::new(2, 64);
        let a = slab.try_alloc_copy(&[0u8; 10]).unwrap();
        let mut w = slab.try_writer().unwrap();
        w.append(&[0u8; 7]).unwrap();
        let b = w.freeze();
        assert_eq!(slab.copied_in_bytes(), 17);
        // Uncounted read…
        a.with(|bytes| assert_eq!(bytes.len(), 10));
        assert_eq!(slab.copied_out_bytes(), 0);
        // …counted copy-outs.
        let v = b.copy_to_vec();
        assert_eq!(v.len(), 7);
        a.copy_out_with(|bytes| assert_eq!(bytes.len(), 10));
        assert_eq!(slab.copied_out_bytes(), 17);
        slab.reset_copy_counters();
        assert_eq!(slab.copied_in_bytes(), 0);
        assert_eq!(slab.copied_out_bytes(), 0);
    }

    #[test]
    fn leak_audit_reports_outstanding_slabs_by_index() {
        let _ = take_slab_leak_report();
        let leaked;
        {
            let slab = ByteSlab::new(3, 16);
            let a = slab.try_alloc_copy(&[1]).unwrap();
            let b = slab.try_alloc_copy(&[2]).unwrap();
            let _extra = b.clone();
            leaked = b.slab_index();
            drop(a);
            // `b` (2 refs) deliberately outlives every ByteSlab handle.
            std::mem::forget(b);
            std::mem::forget(_extra);
        }
        let report = take_slab_leak_report().expect("slab leak audit must fire");
        assert_eq!(report.capacity, 3);
        assert_eq!(report.leaked, vec![(leaked, 2)]);
    }

    #[test]
    fn balanced_drop_leaves_no_leak_report() {
        let _ = take_slab_leak_report();
        {
            let slab = ByteSlab::new(2, 16);
            let a = slab.try_alloc_copy(&[1]).unwrap();
            let clone = slab.clone();
            drop(slab);
            drop(a);
            drop(clone);
        }
        assert!(take_slab_leak_report().is_none());
    }

    #[test]
    fn content_equality() {
        let slab = ByteSlab::new(2, 16);
        let a = slab.try_alloc_copy(&[1, 2, 3]).unwrap();
        let b = slab.try_alloc_copy(&[9, 1, 2, 3]).unwrap();
        assert_eq!(a, b.slice(1, 3));
        assert_ne!(a, b);
    }
}
