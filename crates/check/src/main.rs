//! The `pandora-check` binary: analyze the workspace (or `--root <dir>`)
//! and exit nonzero if any invariant is violated.

use std::path::PathBuf;
use std::process::ExitCode;

use pandora_check::{run_checks, workspace_root, Config};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("pandora-check: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "pandora-check: workspace invariant analyzer\n\
                     \n\
                     USAGE: pandora-check [--root <dir>]\n\
                     \n\
                     Walks every .rs file under the workspace root (found by\n\
                     ascending from the current directory) and enforces:\n\
                     \n\
                       safety-comment  unsafe requires a SAFETY: justification\n\
                       wall-clock      no Instant::now/SystemTime outside the allowlist\n\
                       os-thread       no thread::spawn/thread::sleep outside the allowlist\n\
                       no-unwrap       no unwrap/expect outside tests in hot-path crates\n\
                       missing-docs    public items documented in segment/buffers/slab\n\
                       hot-path-alloc  no Vec::new/to_vec in files marked check:hot-path\n\
                     \n\
                     Waive a finding in place with: // check:allow(rule-name): reason\n\
                     Exits 0 when clean, 1 when any rule fires."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pandora-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| workspace_root(&cwd));
    let diagnostics = match run_checks(&root, &Config::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pandora-check: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("pandora-check: workspace clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("pandora-check: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}
