//! The `pandora-check` binary: analyze the workspace (or `--root <dir>`)
//! and exit nonzero if any non-baselined deny-severity invariant is
//! violated (any severity under `--deny-warnings`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pandora_check::baseline::{self, Baseline};
use pandora_check::{render_json, run_checks, workspace_root, Config, Rule, Severity, ALL_RULES};

const USAGE: &str = "\
pandora-check: workspace invariant analyzer

USAGE: pandora-check [OPTIONS]

OPTIONS:
  --root <dir>        analyze <dir> instead of the enclosing workspace
  --format <fmt>      output format: text (default) or json
  --output <file>     write diagnostics to <file> instead of stdout
  --baseline <file>   baseline file (default: <root>/check.baseline)
  --no-baseline       ignore any baseline file
  --write-baseline    rewrite the baseline from this run's findings, then exit
  --deny-warnings     warn-severity findings also fail the run
  --explain <code>    print the rationale for a PCxxx code (or rule name)
  -h, --help          this text

Stage one masks every .rs file and runs the per-file token rules; stage
two parses the masked code into a workspace model and runs the
cross-file protocol rules:

  PC001 safety-comment   unsafe requires a SAFETY: justification
  PC002 wall-clock       no Instant::now/SystemTime outside the allowlist
  PC003 os-thread        no thread::spawn/sleep outside the allowlist
  PC004 no-unwrap        no unwrap/expect outside tests in hot-path crates
  PC005 missing-docs     public items documented in the API crates
  PC006 hot-path-alloc   no Vec::new/to_vec in files marked check:hot-path
  PC101 wire-exhaustive  every wire-enum variant has encode+decode arms
  PC102 channel-cycle    no rendezvous wait-for cycles among sim tasks
  PC103 command-path     only the control plane touches command VCIs
  PC104 pool-order       pools acquired in one global order (warn)

Waive a finding in place with: // check:allow(rule-name): reason
Tolerate a legacy finding by listing `PCxxx path:line` in check.baseline.
Exits 0 when clean, 1 on new findings, 2 on usage or I/O errors.";

struct Options {
    root: Option<PathBuf>,
    json: bool,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    deny_warnings: bool,
}

fn main() -> ExitCode {
    let mut opts = Options {
        root: None,
        json: false,
        output: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = args.next().map(PathBuf::from);
                if opts.root.is_none() {
                    eprintln!("pandora-check: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => {
                    eprintln!("pandora-check: --format requires `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--output" => {
                opts.output = args.next().map(PathBuf::from);
                if opts.output.is_none() {
                    eprintln!("pandora-check: --output requires a file argument");
                    return ExitCode::from(2);
                }
            }
            "--baseline" => {
                opts.baseline = args.next().map(PathBuf::from);
                if opts.baseline.is_none() {
                    eprintln!("pandora-check: --baseline requires a file argument");
                    return ExitCode::from(2);
                }
            }
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("pandora-check: --explain requires a PCxxx code or rule name");
                    return ExitCode::from(2);
                };
                return explain(&code);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pandora-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    run(&opts)
}

fn explain(code: &str) -> ExitCode {
    match Rule::from_code(code) {
        Some(rule) => {
            println!(
                "{} {} ({})\n\n{}",
                rule.code(),
                rule.name(),
                rule.severity().label(),
                rule.explain()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "pandora-check: unknown code `{code}`; known codes: {}",
                ALL_RULES
                    .iter()
                    .map(|r| r.code())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> ExitCode {
    let started = Instant::now();
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = opts.root.clone().unwrap_or_else(|| workspace_root(&cwd));
    let diagnostics = match run_checks(&root, &Config::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pandora-check: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("check.baseline"));
    if opts.write_baseline {
        let text = baseline::render(&diagnostics);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!(
                "pandora-check: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "pandora-check: wrote {} finding(s) to {}",
            diagnostics.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "pandora-check: cannot read {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let failing: Vec<_> = diagnostics
        .iter()
        .filter(|d| {
            (opts.deny_warnings || d.rule.severity() == Severity::Deny) && !baseline.contains(d)
        })
        .collect();

    let rendered = if opts.json {
        render_json(&diagnostics)
    } else {
        let mut text = String::new();
        for d in &diagnostics {
            let suffix = if baseline.contains(d) {
                "  (baselined)"
            } else {
                ""
            };
            text.push_str(&format!("{d}{suffix}\n"));
        }
        text
    };
    if let Some(path) = &opts.output {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("pandora-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{rendered}");
    }

    for stale in baseline.stale(&diagnostics) {
        eprintln!("pandora-check: stale baseline entry `{stale}` — finding fixed, prune it");
    }
    let elapsed = started.elapsed();
    if failing.is_empty() {
        eprintln!(
            "pandora-check: {} finding(s), 0 new ({} baselined) in {:.1?} ({})",
            diagnostics.len(),
            diagnostics.iter().filter(|d| baseline.contains(d)).count(),
            elapsed,
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pandora-check: {} new violation(s) of {} finding(s) in {:.1?}",
            failing.len(),
            diagnostics.len(),
            elapsed
        );
        ExitCode::FAILURE
    }
}
