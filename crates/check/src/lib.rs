//! `pandora-check`: static enforcement of workspace invariants that the
//! compiler cannot see.
//!
//! Pandora's correctness leans on properties rustc has no lint for:
//!
//! * the deterministic crates must never consult the wall clock or OS
//!   scheduler, or the simulation stops being reproducible;
//! * every `unsafe` block must carry a written justification;
//! * the hot-path crates must not panic via `unwrap`/`expect` outside
//!   test code — buffer exhaustion and channel closure are *reported*
//!   conditions in the paper, not crashes;
//! * the public wire-format and allocator APIs must stay documented;
//! * files that declare themselves transport hot paths must not allocate
//!   per segment — payload bytes live in the slab arena (DESIGN.md §9);
//! * every variant of a wire-marked enum must be encodable and decodable
//!   somewhere in the workspace — a kind code without a decode arm is a
//!   silent protocol hole (DESIGN.md §12);
//! * rendezvous channel topologies wired inside one function must not
//!   form wait-for cycles, pools must be acquired in one global order,
//!   and only the control plane may touch the well-known command VCIs.
//!
//! The analyzer runs in two stages (see DESIGN.md §12). Stage one masks
//! each file into lexical channels ([`mask`]) and runs the per-file token
//! rules. Stage two parses the masked code into an item-level model
//! ([`parse`]), aggregates it across files ([`model`]), and runs the
//! cross-file protocol rules. Pure `std`, no registry dependencies.
//!
//! Every diagnostic carries a stable `PCxxx` code and a severity. A
//! violation can be waived in place with a comment
//! `check:allow(rule-name): reason` on or above the offending line, or
//! recorded in the committed `check.baseline` file so CI keeps failing
//! only on *new* findings ([`baseline`]).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod mask;
pub mod model;
pub mod parse;
mod rules;
mod walk;

pub use walk::workspace_root;

/// The rules the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` (or `# Safety` doc) justification.
    SafetyComment,
    /// Wall-clock time (`Instant::now`, `SystemTime`) outside the allowlist.
    WallClock,
    /// OS threading (`thread::spawn`, `thread::sleep`) outside the allowlist.
    OsThread,
    /// `unwrap()`/`expect(` outside `#[cfg(test)]` in a hot-path crate.
    NoUnwrap,
    /// Public item without a doc comment in a documented crate.
    MissingDocs,
    /// `Vec::new`/`to_vec()` outside test code in a file that opted into
    /// the hot-path marker — the transport data path allocates from the
    /// slab arena, never per segment.
    HotPathAlloc,
    /// A variant of a `check:wire-enum` marked enum lacking an encode
    /// match arm, or (for full obligations) a decode arm constructing it
    /// from a literal kind code.
    WireExhaustive,
    /// Tasks wired in one function form a wait-for cycle over rendezvous
    /// channels — a static deadlock candidate.
    ChannelCycle,
    /// A crate outside the control plane references the well-known
    /// command VCIs (`CONTROL_VCI_BASE`, `Vci(0x7F..)`).
    CommandPath,
    /// Two pools acquired in opposite orders in different places.
    PoolOrder,
}

/// How a diagnostic affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but fails the run only under `--deny-warnings`.
    Warn,
    /// Fails the run unless waived or baselined.
    Deny,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Every rule, in code order — the `--help`/`--explain` catalogue.
pub const ALL_RULES: [Rule; 10] = [
    Rule::SafetyComment,
    Rule::WallClock,
    Rule::OsThread,
    Rule::NoUnwrap,
    Rule::MissingDocs,
    Rule::HotPathAlloc,
    Rule::WireExhaustive,
    Rule::ChannelCycle,
    Rule::CommandPath,
    Rule::PoolOrder,
];

impl Rule {
    /// The kebab-case name used in diagnostics and `check:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::WallClock => "wall-clock",
            Rule::OsThread => "os-thread",
            Rule::NoUnwrap => "no-unwrap",
            Rule::MissingDocs => "missing-docs",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::WireExhaustive => "wire-exhaustive",
            Rule::ChannelCycle => "channel-cycle",
            Rule::CommandPath => "command-path",
            Rule::PoolOrder => "pool-order",
        }
    }

    /// The stable diagnostic code. `PC0xx` are the per-file token rules,
    /// `PC1xx` the cross-file protocol rules. Codes never get reused.
    pub fn code(self) -> &'static str {
        match self {
            Rule::SafetyComment => "PC001",
            Rule::WallClock => "PC002",
            Rule::OsThread => "PC003",
            Rule::NoUnwrap => "PC004",
            Rule::MissingDocs => "PC005",
            Rule::HotPathAlloc => "PC006",
            Rule::WireExhaustive => "PC101",
            Rule::ChannelCycle => "PC102",
            Rule::CommandPath => "PC103",
            Rule::PoolOrder => "PC104",
        }
    }

    /// How a finding of this rule affects the exit status.
    ///
    /// `pool-order` warns rather than denies: the analysis is a textual
    /// over-approximation (acquisition order within one function body,
    /// ignoring control flow), so a conflicting order deserves review,
    /// not an unconditional red build.
    pub fn severity(self) -> Severity {
        match self {
            Rule::PoolOrder => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// Resolves a `PCxxx` code (case-insensitive) or a kebab-case name.
    pub fn from_code(code: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(code) || r.name() == code)
    }

    /// The long-form explanation behind `--explain PCxxx`: what the rule
    /// protects, why it exists, and how to satisfy or waive it.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "Every `unsafe` token needs a written justification: a `// SAFETY:` \
                 comment on the same line or in the comment block directly above, or \
                 a `# Safety` doc section. The justification is the reviewable record \
                 of which invariant makes the block sound."
            }
            Rule::WallClock => {
                "Deterministic crates must not read real time (`Instant::now`, \
                 `SystemTime`). The simulation derives every timestamp from the \
                 virtual clock so that a seed replays to byte-identical traces; one \
                 wall-clock read breaks replay silently. Use the sim clock, or add \
                 the file to `wall_clock_allowlist` if it is deliberately live."
            }
            Rule::OsThread => {
                "Deterministic crates must not touch the OS scheduler \
                 (`thread::spawn`, `thread::sleep`). Real threads introduce \
                 scheduling nondeterminism the virtual-time executor cannot replay. \
                 Spawn sim tasks instead."
            }
            Rule::NoUnwrap => {
                "Hot-path crates must not panic via `unwrap`/`expect` outside test \
                 code. Buffer exhaustion and channel closure are *reported* fault \
                 conditions in the paper's model, not crashes; a panic on the data \
                 path takes down the whole node instead of degrading one stream."
            }
            Rule::MissingDocs => {
                "Public items in the documented crates are the workspace's stable \
                 API surface (wire formats, allocator contracts, session protocol) \
                 and must carry doc comments stating their invariants."
            }
            Rule::HotPathAlloc => {
                "A file whose comments carry `check:hot-path` promises to allocate \
                 payload bytes from the slab arena only. `Vec::new(` and `.to_vec()` \
                 are per-segment heap allocations (usually with a copy) on the data \
                 path the two-copy invariant (DESIGN.md §9) protects."
            }
            Rule::WireExhaustive => {
                "An enum marked `check:wire-enum` is part of the wire protocol: \
                 every variant must appear in a non-test match *pattern* somewhere \
                 (encode evidence) and — unless the marker says `(encode)` only — be \
                 constructed in the body of a literal-pattern match arm (decode \
                 evidence, the shape of a kind-code decoder). A variant with a kind \
                 code but no decode arm is a message the peer can send and this node \
                 silently drops. The diagnostic fires at the variant definition."
            }
            Rule::ChannelCycle => {
                "Rendezvous channels (`pandora_sim::channel`) block the sender until \
                 the receiver takes the value, like Occam's links in the paper. If \
                 the tasks wired inside one function form a directed cycle of \
                 sender→receiver edges over rendezvous channels, every task in the \
                 cycle can end up waiting on its successor: a static deadlock \
                 candidate. Break the cycle with a `buffered` stage (decoupling in \
                 the paper's terms) or restructure the pipeline."
            }
            Rule::CommandPath => {
                "The well-known command circuits (`CONTROL_VCI_BASE`, \
                 `REPLY_VCI_BASE`, VCIs at 0x7F00) belong to the session control \
                 plane. Only the control-plane crates (`command_plane_crates`) may \
                 reference them; a media crate writing to a command VCI bypasses \
                 admission control and fault reporting."
            }
            Rule::PoolOrder => {
                "Pools, slabs and arenas must be acquired in one globally \
                 consistent order. Two call sites acquiring the same pair of pools \
                 in opposite orders can deadlock under exhaustion-blocking, exactly \
                 like inconsistent lock order. The analysis compares the textual \
                 acquisition sequences of every function; it over-approximates \
                 control flow, so this rule warns rather than denies."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analyzed root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The `PCxxx path:line` key used by the baseline file.
    pub fn baseline_key(&self) -> String {
        format!(
            "{} {}:{}",
            self.rule.code(),
            self.path.display().to_string().replace('\\', "/"),
            self.line
        )
    }

    /// Renders the diagnostic as one JSON object (hand-rolled; the
    /// analyzer is pure `std`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule.code(),
            self.rule.name(),
            self.rule.severity().label(),
            json_escape(&self.path.display().to_string().replace('\\', "/")),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a full diagnostic list as a JSON document with a summary
/// header — the payload CI uploads as an artifact.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"total\": {},\n  \"deny\": {},\n  \"warn\": {},\n  \"diagnostics\": [\n",
        diagnostics.len(),
        diagnostics
            .iter()
            .filter(|d| d.rule.severity() == Severity::Deny)
            .count(),
        diagnostics
            .iter()
            .filter(|d| d.rule.severity() == Severity::Warn)
            .count(),
    ));
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&d.to_json());
        if i + 1 < diagnostics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

impl fmt::Display for Diagnostic {
    /// `path:line: rule-name [PCxxx]: message`, the format CI and
    /// editors consume.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}]: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.rule.code(),
            self.message
        )
    }
}

/// Analyzer policy: which crates each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) that must stay deterministic.
    pub deterministic_crates: Vec<String>,
    /// Crate directory names whose non-test code must not unwrap/expect.
    pub hot_path_crates: Vec<String>,
    /// Crate directory names whose public items must be documented.
    pub documented_crates: Vec<String>,
    /// Path prefixes (relative, `/`-separated) exempt from the
    /// determinism rules — the deliberately wall-clock code.
    pub wall_clock_allowlist: Vec<String>,
    /// Crate directory names allowed to reference the command VCIs.
    pub command_plane_crates: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let v = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        Config {
            // "faults" is listed because its whole contract is seeded
            // replayability (same plan ⇒ byte-identical FaultTrace):
            // a stray wall-clock or unseeded RNG there would silently
            // break every conformance replay.
            // "recover" joins both lists: its lease and adaptation
            // machines drive crash reconvergence, so a wall-clock read
            // or an undocumented invariant there would corrupt every
            // recovery replay.
            // "repository" and "metrics" feed deterministic replays too:
            // recorded clips and counter snapshots are compared
            // byte-for-byte across runs.
            // "shard" is the sharded parallel executor: its whole
            // contract is that same-seed runs are byte-identical at any
            // shard count, so determinism violations there break every
            // cross-executor equivalence test. Its one sanctioned
            // `thread::spawn` site carries a `check:allow(os-thread)`
            // waiver (pinned by a fixture test).
            // "overlay" plans broadcast trees from a seed and replays
            // repair byte-identically across shard counts; a wall-clock
            // read or unseeded RNG there breaks both the plan digest
            // and the soak's trace-equality acceptance gate.
            deterministic_crates: v(&[
                "sim",
                "buffers",
                "segment",
                "audio",
                "video",
                "atm",
                "faults",
                "slab",
                "session",
                "recover",
                "repository",
                "metrics",
                "shard",
                "overlay",
            ]),
            hot_path_crates: v(&["buffers", "sim", "atm", "slab"]),
            documented_crates: v(&[
                "segment",
                "buffers",
                "slab",
                "session",
                "recover",
                "repository",
                "metrics",
                "shard",
                "overlay",
            ]),
            // rt.rs is the intentionally-live runtime; bench measures the
            // host; the analyzer itself times its own run for the report.
            wall_clock_allowlist: v(&["crates/core/src/rt.rs", "crates/bench", "crates/check"]),
            command_plane_crates: v(&["session", "recover"]),
        }
    }
}

/// Runs every rule over all workspace `.rs` files under `root`.
///
/// Stage one applies the per-file token rules to each masked file; stage
/// two builds the [`model::WorkspaceModel`] and applies the cross-file
/// protocol rules. Returns diagnostics sorted by path, then line, then
/// code. `root` is typically the workspace root; fixture trees in tests
/// pass their own root.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file read.
pub fn run_checks(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for file in walk::rust_sources(root)? {
        let source = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        files.push(model::AnalyzedFile::analyze(rel, &source));
    }
    let mut diagnostics = Vec::new();
    for file in &files {
        rules::check_file(file, config, &mut diagnostics);
    }
    let workspace = model::WorkspaceModel::build(&files);
    rules::check_workspace(&files, &workspace, config, &mut diagnostics);
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule.code()).cmp(&(&b.path, b.line, b.rule.code())));
    Ok(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_kebab_case_and_codes_unique() {
        let mut codes = Vec::new();
        for rule in ALL_RULES {
            let name = rule.name();
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(rule.code().starts_with("PC"));
            assert!(!codes.contains(&rule.code()), "duplicate {}", rule.code());
            codes.push(rule.code());
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
            assert_eq!(Rule::from_code(rule.name()), Some(rule));
            assert!(!rule.explain().is_empty());
        }
        assert_eq!(Rule::from_code("PC999"), None);
    }

    #[test]
    fn diagnostic_format_is_path_line_rule_code() {
        let d = Diagnostic {
            path: PathBuf::from("crates/sim/src/executor.rs"),
            line: 42,
            rule: Rule::WallClock,
            message: "Instant::now in deterministic crate".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/sim/src/executor.rs:42: wall-clock [PC002]: Instant::now in deterministic crate"
        );
        assert_eq!(d.baseline_key(), "PC002 crates/sim/src/executor.rs:42");
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let d = Diagnostic {
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 1,
            rule: Rule::PoolOrder,
            message: "say \"hi\"".to_string(),
        };
        let json = render_json(std::slice::from_ref(&d));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"warn\": 1"));
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\"code\":\"PC104\""));
    }
}
