//! `pandora-check`: static enforcement of workspace invariants that the
//! compiler cannot see.
//!
//! Pandora's correctness leans on properties rustc has no lint for:
//!
//! * the deterministic crates must never consult the wall clock or OS
//!   scheduler, or the simulation stops being reproducible;
//! * every `unsafe` block must carry a written justification;
//! * the hot-path crates must not panic via `unwrap`/`expect` outside
//!   test code — buffer exhaustion and channel closure are *reported*
//!   conditions in the paper, not crashes;
//! * the public wire-format and allocator APIs must stay documented;
//! * files that declare themselves transport hot paths must not allocate
//!   per segment — payload bytes live in the slab arena (DESIGN.md §9).
//!
//! The analyzer is a token-level pass (see [`mask`]) over every `.rs`
//! file in the workspace — pure `std`, no registry dependencies. Run it
//! with `cargo run -p pandora-check`; it exits nonzero when any rule
//! fires, printing `path:line: rule-name: message` diagnostics.
//!
//! A violation can be waived in place with a trailing or preceding
//! comment `check:allow(rule-name): reason`; waivers are deliberate,
//! reviewable artifacts just like `#[allow]`.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod mask;
mod rules;
mod walk;

pub use walk::workspace_root;

/// The rules the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` (or `# Safety` doc) justification.
    SafetyComment,
    /// Wall-clock time (`Instant::now`, `SystemTime`) outside the allowlist.
    WallClock,
    /// OS threading (`thread::spawn`, `thread::sleep`) outside the allowlist.
    OsThread,
    /// `unwrap()`/`expect(` outside `#[cfg(test)]` in a hot-path crate.
    NoUnwrap,
    /// Public item without a doc comment in a documented crate.
    MissingDocs,
    /// `Vec::new`/`to_vec()` outside test code in a file that opted into
    /// the hot-path marker — the transport data path allocates from the
    /// slab arena, never per segment.
    HotPathAlloc,
}

impl Rule {
    /// The kebab-case name used in diagnostics and `check:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::WallClock => "wall-clock",
            Rule::OsThread => "os-thread",
            Rule::NoUnwrap => "no-unwrap",
            Rule::MissingDocs => "missing-docs",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analyzed root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    /// `path:line: rule-name: message`, the format CI and editors consume.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Analyzer policy: which crates each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) that must stay deterministic.
    pub deterministic_crates: Vec<String>,
    /// Crate directory names whose non-test code must not unwrap/expect.
    pub hot_path_crates: Vec<String>,
    /// Crate directory names whose public items must be documented.
    pub documented_crates: Vec<String>,
    /// Path prefixes (relative, `/`-separated) exempt from the
    /// determinism rules — the deliberately wall-clock code.
    pub wall_clock_allowlist: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let v = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        Config {
            // "faults" is listed because its whole contract is seeded
            // replayability (same plan ⇒ byte-identical FaultTrace):
            // a stray wall-clock or unseeded RNG there would silently
            // break every conformance replay.
            // "recover" joins both lists: its lease and adaptation
            // machines drive crash reconvergence, so a wall-clock read
            // or an undocumented invariant there would corrupt every
            // recovery replay.
            deterministic_crates: v(&[
                "sim", "buffers", "segment", "audio", "video", "atm", "faults", "slab", "session",
                "recover",
            ]),
            hot_path_crates: v(&["buffers", "sim", "atm", "slab"]),
            documented_crates: v(&["segment", "buffers", "slab", "session", "recover"]),
            // rt.rs is the intentionally-live runtime; bench measures the
            // host. Everything else under crates/ must stay virtual-time.
            wall_clock_allowlist: v(&["crates/core/src/rt.rs", "crates/bench"]),
        }
    }
}

/// Runs every rule over all workspace `.rs` files under `root`.
///
/// Returns diagnostics sorted by path, then line. `root` is typically the
/// workspace root; fixture trees in tests pass their own root.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file read.
pub fn run_checks(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    for file in walk::rust_sources(root)? {
        let source = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let masked = mask::MaskedFile::parse(&source);
        rules::check_file(&rel, &masked, config, &mut diagnostics);
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_kebab_case() {
        for rule in [
            Rule::SafetyComment,
            Rule::WallClock,
            Rule::OsThread,
            Rule::NoUnwrap,
            Rule::MissingDocs,
            Rule::HotPathAlloc,
        ] {
            let name = rule.name();
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn diagnostic_format_is_path_line_rule() {
        let d = Diagnostic {
            path: PathBuf::from("crates/sim/src/executor.rs"),
            line: 42,
            rule: Rule::WallClock,
            message: "Instant::now in deterministic crate".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/sim/src/executor.rs:42: wall-clock: Instant::now in deterministic crate"
        );
    }
}
