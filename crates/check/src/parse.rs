//! Item-level parsing of one masked source file into a [`FileModel`].
//!
//! This is stage one of the two-stage analyzer (DESIGN.md §12): a
//! lightweight, pure-`std` structural pass that runs *on the masked code
//! channel* (see [`crate::mask`]), so string literals, comments and char
//! literals can never fake an item. It is deliberately not a full Rust
//! parser — it recovers exactly the structure the cross-file rules need:
//!
//! * `enum` definitions with their variants (and the `check:wire-enum`
//!   marker read from the comment channel above the definition);
//! * `match` expressions flattened into arms (`pattern`, `body`, line),
//!   which is all the wire-exhaustiveness rule consumes;
//! * `fn` items with their body line spans, the scope unit for the
//!   channel-graph and pool-order extraction in [`crate::model`].
//!
//! Everything positional is tracked as (byte offset → line) over the
//! newline-joined code channel, so diagnostics land on real lines.

use crate::mask::MaskedFile;

/// What a `check:wire-enum` marker obliges every variant to have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireObligation {
    /// Each variant needs an encode arm (a match pattern naming it) and a
    /// decode arm (construction in the body of a literal-pattern arm).
    EncodeAndDecode,
    /// Each variant needs only an encode arm — for enums that are matched
    /// on the wire path but materialized structurally, not from a code.
    EncodeOnly,
}

/// One enum variant at its definition site.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant identifier.
    pub name: String,
    /// 0-based line of the variant's name.
    pub line: usize,
}

/// One `enum` item.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum identifier.
    pub name: String,
    /// 0-based line of the `enum` keyword.
    pub line: usize,
    /// The variants in declaration order.
    pub variants: Vec<Variant>,
    /// Present when the comment block above carries `check:wire-enum`.
    pub wire: Option<WireObligation>,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern text (masked channel; includes any guard).
    pub pat: String,
    /// Body text (masked channel).
    pub body: String,
    /// 0-based line where the pattern starts.
    pub line: usize,
    /// True when the arm sits inside `#[cfg(test)]` code — test-only
    /// matches are not wire evidence.
    pub in_test: bool,
}

/// One `match` expression, flattened to its arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 0-based line of the `match` keyword.
    pub line: usize,
    /// The arms in source order.
    pub arms: Vec<Arm>,
}

/// One `fn` item (free function or method) with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function identifier.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based first line of the body block.
    pub body_start: usize,
    /// 0-based last line of the body block (inclusive).
    pub body_end: usize,
    /// Byte range of the body (exclusive of the braces) in the joined
    /// code-channel text.
    pub body_range: (usize, usize),
}

/// The structural model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Every `enum` item.
    pub enums: Vec<EnumDef>,
    /// Every `match` expression (including nested ones, each on its own).
    pub matches: Vec<MatchExpr>,
    /// Every `fn` item that has a body.
    pub fns: Vec<FnDef>,
}

/// The joined code channel with a byte-offset → line map.
pub struct CodeText {
    /// The code channel joined with `\n`.
    pub text: String,
    /// Starting byte offset of each line in `text`.
    line_starts: Vec<usize>,
}

impl CodeText {
    /// Joins the masked code channel of `file`.
    pub fn new(file: &MaskedFile) -> CodeText {
        let mut text = String::new();
        let mut line_starts = Vec::with_capacity(file.code.len());
        for line in &file.code {
            line_starts.push(text.len());
            text.push_str(line);
            text.push('\n');
        }
        CodeText { text, line_starts }
    }

    /// 0-based line containing byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(l) => l,
            Err(l) => l.saturating_sub(1),
        }
    }
}

/// True when `bytes[i]` begins the word `word` on identifier boundaries.
fn word_at(text: &str, i: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if !text[i..].starts_with(word) {
        return false;
    }
    let before_ok = i == 0 || !is_ident(bytes[i - 1]);
    let end = i + word.len();
    let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
    before_ok && after_ok
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every start offset of `word` (identifier-bounded) in `text`.
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        if word_at(text, at, word) {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// The identifier starting at or after `from` (skipping whitespace);
/// returns `(name, start)`.
fn next_ident(text: &str, from: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = from;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident(bytes[i]) {
        i += 1;
    }
    if i > start && !bytes[start].is_ascii_digit() {
        Some((text[start..i].to_string(), start))
    } else {
        None
    }
}

/// Finds the matching `}` for the `{` at `open`; `None` if unbalanced.
pub fn block_end(text: &str, open: usize) -> Option<usize> {
    debug_assert_eq!(text.as_bytes().get(open), Some(&b'{'));
    let mut depth = 0i32;
    for (off, b) in text.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
            _ => {}
        }
    }
    None
}

/// First `{` at paren/bracket depth 0 after `from`, stopping at `;` —
/// how item bodies are located after a signature. Returns `None` for
/// bodiless declarations.
fn body_open(text: &str, from: usize, stop: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, b) in text.bytes().enumerate().take(stop).skip(from) {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => return Some(off),
            b';' if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Parses the masked `file` into its structural model.
pub fn parse(file: &MaskedFile) -> FileModel {
    let code = CodeText::new(file);
    let text = &code.text;
    let mut model = FileModel::default();

    for pos in word_positions(text, "enum") {
        if let Some(e) = parse_enum(file, &code, pos) {
            model.enums.push(e);
        }
    }
    for pos in word_positions(text, "match") {
        if let Some(m) = parse_match(file, &code, pos) {
            model.matches.push(m);
        }
    }
    for pos in word_positions(text, "fn") {
        if let Some(f) = parse_fn(&code, pos) {
            model.fns.push(f);
        }
    }
    model
}

/// True when `needle` occurs in comment text `c` outside backticks — a
/// doc sentence *talking about* the marker writes it as `` `marker` ``,
/// which must not arm the rule (the analyzer's own docs do this).
fn marker_in(c: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(p) = c[from..].find(needle) {
        let at = from + p;
        if at == 0 || c.as_bytes()[at - 1] != b'`' {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// The wire marker read from the contiguous comment block directly above
/// `line` (attribute and doc lines are skipped, like SAFETY lookup).
fn wire_marker(file: &MaskedFile, line: usize) -> Option<WireObligation> {
    let classify = |l: usize| -> Option<WireObligation> {
        let c = &file.comment[l];
        if marker_in(c, "check:wire-enum(encode)") {
            Some(WireObligation::EncodeOnly)
        } else if marker_in(c, "check:wire-enum") {
            Some(WireObligation::EncodeAndDecode)
        } else {
            None
        }
    };
    if let Some(o) = classify(line) {
        return Some(o);
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code = file.code[l].trim();
        let has_comment = !file.comment[l].trim().is_empty();
        if let Some(o) = classify(l) {
            return Some(o);
        }
        if code.is_empty() && has_comment {
            continue;
        }
        if code.starts_with("#[") || code.is_empty() {
            continue;
        }
        break;
    }
    None
}

fn parse_enum(file: &MaskedFile, code: &CodeText, kw: usize) -> Option<EnumDef> {
    let text = &code.text;
    let (name, name_at) = next_ident(text, kw + "enum".len())?;
    // Generic params may follow the name; the body is the next `{`.
    let open = body_open(text, name_at + name.len(), text.len())?;
    let close = block_end(text, open)?;
    let line = code.line_of(kw);
    let body = &text[open + 1..close];
    let mut variants = Vec::new();
    for chunk in split_depth0(body, b',') {
        if let Some((vname, vstart)) = variant_name(body, chunk) {
            if vname.as_bytes()[0].is_ascii_uppercase() {
                variants.push(Variant {
                    name: vname,
                    line: code.line_of(open + 1 + vstart),
                });
            }
        }
    }
    if variants.is_empty() {
        return None;
    }
    Some(EnumDef {
        name,
        line,
        variants,
        wire: wire_marker(file, line),
    })
}

/// Byte ranges of `body` split on `sep` at bracket depth 0.
fn split_depth0(body: &str, sep: u8) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (off, b) in body.bytes().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ if b == sep && depth == 0 => {
                out.push((start, off));
                start = off + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        out.push((start, body.len()));
    }
    out
}

/// First identifier of a variant chunk, skipping `#[...]` attributes.
fn variant_name(body: &str, (from, to): (usize, usize)) -> Option<(String, usize)> {
    let bytes = body.as_bytes();
    let mut i = from;
    while i < to {
        let b = bytes[i];
        if (b as char).is_whitespace() {
            i += 1;
        } else if b == b'#' {
            // Skip the attribute's bracket group.
            while i < to && bytes[i] != b'[' {
                i += 1;
            }
            let mut depth = 0i32;
            while i < to {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else if is_ident(b) && !b.is_ascii_digit() {
            let (name, at) = next_ident(body, i)?;
            return Some((name, at));
        } else {
            return None;
        }
    }
    None
}

fn parse_match(file: &MaskedFile, code: &CodeText, kw: usize) -> Option<MatchExpr> {
    let text = &code.text;
    let after = kw + "match".len();
    // The scrutinee runs to the first `{` at depth 0. Give up at `;` (a
    // `match` in a bodiless position cannot happen in valid code).
    let open = body_open(text, after, text.len())?;
    let close = block_end(text, open)?;
    let body = &text[open + 1..close];
    let mut arms = Vec::new();
    let mut i = 0;
    let bytes = body.as_bytes();
    loop {
        // Find the next `=>` at depth 0 from i.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && bytes.get(j + 1) == Some(&b'>') => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat = body[i..arrow].trim();
        // Body: a `{ ... }` block, or an expression up to a depth-0 comma.
        let mut k = arrow + 2;
        while k < bytes.len() && (bytes[k] as char).is_whitespace() {
            k += 1;
        }
        let body_end = if bytes.get(k) == Some(&b'{') {
            block_end(body, k)? + 1
        } else {
            let mut depth = 0i32;
            let mut e = k;
            while e < bytes.len() {
                match bytes[e] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                e += 1;
            }
            e
        };
        let pat_off = open + 1 + i + body[i..arrow].len() - body[i..arrow].trim_start().len();
        let line = code.line_of(pat_off + pat.len().min(1));
        arms.push(Arm {
            pat: pat.to_string(),
            body: body[k..body_end].to_string(),
            line,
            in_test: file.in_test.get(line).copied().unwrap_or(false),
        });
        // Skip past the body and a trailing comma.
        i = body_end;
        while i < bytes.len() && (bytes[i] == b',' || (bytes[i] as char).is_whitespace()) {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
    }
    if arms.is_empty() {
        return None;
    }
    Some(MatchExpr {
        line: code.line_of(kw),
        arms,
    })
}

fn parse_fn(code: &CodeText, kw: usize) -> Option<FnDef> {
    let text = &code.text;
    let (name, name_at) = next_ident(text, kw + "fn".len())?;
    let open = body_open(text, name_at + name.len(), text.len())?;
    let close = block_end(text, open)?;
    Some(FnDef {
        name,
        line: code.line_of(kw),
        body_start: code.line_of(open),
        body_end: code.line_of(close),
        body_range: (open + 1, close),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse(&MaskedFile::parse(src))
    }

    #[test]
    fn enum_variants_extracted_with_lines() {
        let m = model("/// Doc.\npub enum Msg {\n    A,\n    B { x: u32 },\n    C(u8),\n}\n");
        assert_eq!(m.enums.len(), 1);
        let e = &m.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(e.variants[0].line, 2);
        assert_eq!(e.variants[2].line, 4);
        assert!(e.wire.is_none());
    }

    #[test]
    fn wire_marker_detected_above_attributes() {
        let src =
            "// check:wire-enum: the P4 command path.\n#[derive(Debug)]\npub enum M { A, B }\n";
        let m = model(src);
        assert_eq!(m.enums[0].wire, Some(WireObligation::EncodeAndDecode));
        let src2 = "// check:wire-enum(encode): matched, never decoded.\npub enum M { A }\n";
        assert_eq!(model(src2).enums[0].wire, Some(WireObligation::EncodeOnly));
    }

    #[test]
    fn wire_marker_in_string_is_inert() {
        let m = model("fn f() { g(\"check:wire-enum\"); }\npub enum M { A, B }\n");
        assert!(m.enums[0].wire.is_none());
    }

    #[test]
    fn backticked_marker_mention_is_inert() {
        // A doc sentence *about* the marker must not arm the obligation.
        let m = model("/// What a `check:wire-enum` marker obliges.\npub enum M { A, B }\n");
        assert!(m.enums[0].wire.is_none());
    }

    #[test]
    fn match_arms_split_with_block_and_expr_bodies() {
        let src = "fn f(x: u8) -> u8 {\n    match x {\n        1 => Some(M::A),\n        2 | 3 => { twice(x) }\n        _ => None,\n    }\n}\n";
        let m = model(src);
        assert_eq!(m.matches.len(), 1);
        let arms = &m.matches[0].arms;
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].pat, "1");
        assert!(arms[0].body.contains("M::A"));
        assert_eq!(arms[1].pat, "2 | 3");
        assert_eq!(arms[2].pat, "_");
    }

    #[test]
    fn nested_match_parsed_separately_and_not_flattened() {
        let src = "fn f(x: u8) {\n    match x {\n        1 => match y {\n            2 => a(),\n            _ => b(),\n        },\n        _ => c(),\n    }\n}\n";
        let m = model(src);
        assert_eq!(m.matches.len(), 2);
        let outer = &m.matches[0];
        assert_eq!(outer.arms.len(), 2, "{outer:?}");
    }

    #[test]
    fn fn_bodies_have_line_spans() {
        let src = "pub fn outer() {\n    inner();\n}\nfn inner() {}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "outer");
        assert_eq!((m.fns[0].body_start, m.fns[0].body_end), (0, 2));
    }

    #[test]
    fn fn_declarations_without_bodies_skipped() {
        let m = model("trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn strings_cannot_fake_structure() {
        let src = "fn f() {\n    let s = \"match x { 1 => M::A } enum Fake { Z }\";\n}\n";
        let m = model(src);
        assert!(m.enums.is_empty());
        assert!(m.matches.is_empty());
    }
}
