//! Workspace discovery and source-tree walking.

use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, and the
/// analyzer's own seeded-violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".cargo"];

/// Collects every `.rs` file under `root`, sorted for deterministic
/// diagnostics, skipping [`SKIP_DIRS`].
///
/// # Errors
///
/// Returns an error when a directory cannot be read.
pub fn rust_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`; falls back to `start` itself.
pub fn workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = workspace_root(here);
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn walk_skips_fixtures_and_target() {
        let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        let files = rust_sources(&root).unwrap();
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            assert!(!s.contains("/target/"), "walked into target: {s}");
            assert!(!s.contains("/fixtures/"), "walked into fixtures: {s}");
        }
    }
}
