//! Stage two input: the cross-file workspace model.
//!
//! [`WorkspaceModel::build`] aggregates every file's [`FileModel`] into
//! the structures the protocol-invariant rules consume (DESIGN.md §12):
//!
//! * **wire enums** — enums carrying a `check:wire-enum` marker, with
//!   per-variant encode evidence (the variant named in a match *pattern*
//!   anywhere outside test code) and decode evidence (the variant
//!   constructed in the *body* of a literal-pattern arm — the shape of a
//!   kind-code decoder);
//! * **task graphs** — per function, the channels created
//!   (`let (tx, rx) = channel(..)`), the tasks spawned (`spawn(...,
//!   async move { .. })`), and which task holds which endpoint, giving a
//!   static wait-for graph over rendezvous channels;
//! * **pool acquisition orders** — per function, the textual order in
//!   which `Pool`/slab/arena handles are acquired, for lock-order-style
//!   cycle detection;
//! * **control-VCI references** — lines naming the well-known command
//!   circuits (`CONTROL_VCI_BASE`, `REPLY_VCI_BASE`, `Vci(0x7F..)`).
//!
//! Extraction is scoped to the function (`fn` item) so identically-named
//! endpoints in different constructors never alias; within one function,
//! name resolution follows shadowing (the latest definition preceding the
//! use site wins).

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::mask::MaskedFile;
use crate::parse::{self, CodeText, FileModel, WireObligation};

/// One analyzed source file: masked channels plus structural model.
pub struct AnalyzedFile {
    /// Path relative to the analyzed root.
    pub rel: PathBuf,
    /// `rel` with forward slashes.
    pub rel_str: String,
    /// The lexical channels.
    pub masked: MaskedFile,
    /// The structural model.
    pub model: FileModel,
    /// The joined code channel with line mapping.
    pub code: CodeText,
}

impl AnalyzedFile {
    /// Masks and parses `source` as `rel`.
    pub fn analyze(rel: PathBuf, source: &str) -> AnalyzedFile {
        let masked = MaskedFile::parse(source);
        let model = parse::parse(&masked);
        let code = CodeText::new(&masked);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        AnalyzedFile {
            rel,
            rel_str,
            masked,
            model,
            code,
        }
    }

    /// `crates/<name>/...` -> `<name>`.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.rel_str.strip_prefix("crates/")?;
        rest.split('/').next()
    }

    /// True for integration tests, benches and examples.
    pub fn testish(&self) -> bool {
        self.rel_str
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples"))
    }
}

/// A wire-marked enum with its per-variant evidence.
pub struct WireEnum {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Enum name.
    pub name: String,
    /// What each variant must have.
    pub obligation: WireObligation,
    /// `(variant, 0-based def line, has_encode, has_decode)`.
    pub variants: Vec<WireVariant>,
}

/// Evidence gathered for one wire-enum variant.
pub struct WireVariant {
    /// Variant name.
    pub name: String,
    /// 0-based line of the variant definition.
    pub line: usize,
    /// Named in a non-test match pattern somewhere.
    pub has_encode: bool,
    /// Constructed in the body of a non-test literal-pattern arm.
    pub has_decode: bool,
}

/// How a channel constructor behaves under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Occam rendezvous: `send` blocks until received — wait-for edges.
    Rendezvous,
    /// Bounded FIFO (`buffered`/`bounded`): decouples, breaks cycles.
    Buffered,
    /// Never blocks the sender.
    Unbounded,
}

/// One `let (tx, rx) = channel(..)` site inside a function.
pub struct ChannelDef {
    /// Sender binding name.
    pub tx: String,
    /// Receiver binding name.
    pub rx: String,
    /// Byte offset of the `let` in the file's code text.
    pub pos: usize,
    /// 0-based line of the `let`.
    pub line: usize,
    /// Byte range of the whole statement (for excluding the definition
    /// itself from use-site scans).
    pub stmt: (usize, usize),
    /// Blocking behaviour.
    pub kind: ChannelKind,
}

/// One spawned task inside a function.
pub struct TaskDef {
    /// Display name (from the spawn's name literal, or `task@line`).
    pub name: String,
    /// 0-based line of the spawn call.
    pub line: usize,
    /// Byte offset of the spawn call.
    pub pos: usize,
    /// Byte range of the `async` block body, when present.
    pub body: Option<(usize, usize)>,
}

/// The channel/task graph of one function.
pub struct FnGraph {
    /// Index of the file in the workspace list.
    pub file: usize,
    /// Function name (for messages).
    pub fn_name: String,
    /// Channels created in the function.
    pub channels: Vec<ChannelDef>,
    /// Tasks spawned in the function.
    pub tasks: Vec<TaskDef>,
    /// `sends[t]` = channel indices task `t` sends on.
    pub sends: Vec<Vec<usize>>,
    /// `recvs[t]` = channel indices task `t` receives from.
    pub recvs: Vec<Vec<usize>>,
}

/// One ordered pool-acquisition pair inside a function.
pub struct PoolPair {
    /// Acquired first.
    pub first: String,
    /// Acquired while `first` is (assumed) held.
    pub second: String,
    /// File index of the site.
    pub file: usize,
    /// 0-based line of the second acquisition.
    pub line: usize,
    /// Function name (for messages).
    pub fn_name: String,
}

/// A reference to the well-known control circuits.
pub struct ControlRef {
    /// File index.
    pub file: usize,
    /// 0-based line.
    pub line: usize,
    /// The token that matched (for the message).
    pub what: String,
}

/// The aggregated cross-file model.
pub struct WorkspaceModel {
    /// Wire enums with evidence.
    pub wire_enums: Vec<WireEnum>,
    /// Per-function channel/task graphs.
    pub fn_graphs: Vec<FnGraph>,
    /// Pool acquisition order pairs.
    pub pool_pairs: Vec<PoolPair>,
    /// Control-VCI references.
    pub control_refs: Vec<ControlRef>,
}

impl WorkspaceModel {
    /// Builds the model over every analyzed file.
    pub fn build(files: &[AnalyzedFile]) -> WorkspaceModel {
        WorkspaceModel {
            wire_enums: wire_evidence(files),
            fn_graphs: files
                .iter()
                .enumerate()
                .flat_map(|(idx, f)| {
                    f.model
                        .fns
                        .iter()
                        .map(move |fd| fn_graph(idx, f, fd))
                        .collect::<Vec<_>>()
                })
                .collect(),
            pool_pairs: pool_pairs(files),
            control_refs: control_refs(files),
        }
    }
}

/// True when `text[i..]` starts `path` (`Enum::Variant`) on identifier
/// boundaries.
fn path_at(text: &str, i: usize, path: &str) -> bool {
    let bytes = text.as_bytes();
    if !text[i..].starts_with(path) {
        return false;
    }
    let before_ok = i == 0 || !is_ident(bytes[i - 1]) && bytes[i - 1] != b':';
    let end = i + path.len();
    let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
    before_ok && after_ok
}

fn contains_path(text: &str, path: &str) -> bool {
    let mut from = 0;
    while let Some(p) = text[from..].find(path) {
        let at = from + p;
        if path_at(text, at, path) {
            return true;
        }
        from = at + 1;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A decoder-shaped pattern: an integer-literal (or masked char-literal)
/// kind code, possibly an or-pattern of them.
fn is_literal_pattern(pat: &str) -> bool {
    match pat.trim_start().bytes().next() {
        Some(b) => b.is_ascii_digit() || b == b'\'',
        None => false,
    }
}

fn wire_evidence(files: &[AnalyzedFile]) -> Vec<WireEnum> {
    let mut enums: Vec<WireEnum> = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        for e in &f.model.enums {
            let Some(obligation) = e.wire else { continue };
            enums.push(WireEnum {
                file: idx,
                name: e.name.clone(),
                obligation,
                variants: e
                    .variants
                    .iter()
                    .map(|v| WireVariant {
                        name: v.name.clone(),
                        line: v.line,
                        has_encode: false,
                        has_decode: false,
                    })
                    .collect(),
            });
        }
    }
    if enums.is_empty() {
        return enums;
    }
    for f in files {
        for m in &f.model.matches {
            for arm in &m.arms {
                if arm.in_test {
                    continue;
                }
                let literal = is_literal_pattern(&arm.pat);
                for we in &mut enums {
                    for v in &mut we.variants {
                        let path = format!("{}::{}", we.name, v.name);
                        if !v.has_encode && contains_path(&arm.pat, &path) {
                            v.has_encode = true;
                        }
                        if !v.has_decode && literal && contains_path(&arm.body, &path) {
                            v.has_decode = true;
                        }
                    }
                }
            }
        }
    }
    enums
}

/// Extracts the channel/task graph of one function.
fn fn_graph(file: usize, f: &AnalyzedFile, fd: &parse::FnDef) -> FnGraph {
    let text = &f.code.text;
    let (lo, hi) = fd.body_range;
    let body = &text[lo..hi];

    let mut channels = Vec::new();
    for let_pos in word_positions(body, "let") {
        if let Some(def) = channel_let(f, body, lo, let_pos) {
            channels.push(def);
        }
    }

    let mut tasks = Vec::new();
    for word in ["spawn", "spawn_prio"] {
        for sp in word_positions(body, word) {
            if let Some(t) = spawn_task(f, body, lo, sp + word.len()) {
                tasks.push(t);
            }
        }
    }
    tasks.sort_by_key(|t| t.pos);
    // An inner spawn inside another task's async block would be recorded
    // twice (once through each scan word); dedupe by position.
    tasks.dedup_by_key(|t| t.pos);

    let mut sends = vec![Vec::new(); tasks.len()];
    let mut recvs = vec![Vec::new(); tasks.len()];
    for (ti, t) in tasks.iter().enumerate() {
        let Some((blo, bhi)) = t.body else { continue };
        let tbody = &text[blo..bhi];
        for (ci, c) in channels.iter().enumerate() {
            // Shadowing: this task sees the latest definition of the name
            // that precedes the spawn site.
            if resolve(&channels, &c.tx, t.pos) == Some(ci)
                && !word_positions(tbody, &c.tx).is_empty()
            {
                sends[ti].push(ci);
            }
            if resolve(&channels, &c.rx, t.pos) == Some(ci)
                && !word_positions(tbody, &c.rx).is_empty()
            {
                recvs[ti].push(ci);
            }
        }
    }
    FnGraph {
        file,
        fn_name: fd.name.clone(),
        channels,
        tasks,
        sends,
        recvs,
    }
}

/// Index of the latest channel whose `tx` or `rx` is `name` and whose
/// definition precedes `pos` (absolute offset).
fn resolve(channels: &[ChannelDef], name: &str, pos: usize) -> Option<usize> {
    channels
        .iter()
        .enumerate()
        .filter(|(_, c)| (c.tx == name || c.rx == name) && c.pos < pos)
        .map(|(i, _)| i)
        .next_back()
}

/// Parses `let (tx, rx) = ...channel...(..);` starting at `let_pos`
/// (relative to `body`; `base` is `body`'s offset in the file).
fn channel_let(f: &AnalyzedFile, body: &str, base: usize, let_pos: usize) -> Option<ChannelDef> {
    let bytes = body.as_bytes();
    let mut i = let_pos + 3;
    i = skip_ws(body, i);
    if bytes.get(i) != Some(&b'(') {
        return None;
    }
    let (tx, tx_at) = next_ident(body, i + 1)?;
    let mut j = skip_ws(body, tx_at + tx.len());
    if bytes.get(j) != Some(&b',') {
        return None;
    }
    let (rx, rx_at) = next_ident(body, j + 1)?;
    j = skip_ws(body, rx_at + rx.len());
    if bytes.get(j) != Some(&b')') {
        return None;
    }
    j = skip_ws(body, j + 1);
    if bytes.get(j) != Some(&b'=') {
        return None;
    }
    // Initializer through the statement's `;` at depth 0.
    let mut depth = 0i32;
    let mut k = j + 1;
    while k < bytes.len() {
        match bytes[k] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b';' if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let init = &body[j + 1..k];
    let kind = if !word_positions(init, "unbounded").is_empty() {
        ChannelKind::Unbounded
    } else if !word_positions(init, "buffered").is_empty()
        || !word_positions(init, "bounded").is_empty()
    {
        ChannelKind::Buffered
    } else if !word_positions(init, "channel").is_empty() {
        ChannelKind::Rendezvous
    } else {
        return None;
    };
    Some(ChannelDef {
        tx,
        rx,
        pos: base + let_pos,
        line: f.code.line_of(base + let_pos),
        stmt: (base + let_pos, base + k),
        kind,
    })
}

/// Parses a `spawn(...)` call; `after` is the offset just past the word.
fn spawn_task(f: &AnalyzedFile, body: &str, base: usize, after: usize) -> Option<TaskDef> {
    let bytes = body.as_bytes();
    let open = skip_ws(body, after);
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    // The call's argument span.
    let mut depth = 0i32;
    let mut close = open;
    while close < bytes.len() {
        match bytes[close] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let args = &body[open..close];
    let line = f.code.line_of(base + open);
    // The async block body, if the task is written inline.
    let task_body = word_positions(args, "async").first().and_then(|&a| {
        let brace = args[a..].find('{').map(|p| a + p)?;
        let end = parse::block_end(args, brace)?;
        Some((base + open + brace + 1, base + open + end))
    });
    // Task display name: the first string literal in the raw source of the
    // spawn line (masked channels blank it).
    let name = f
        .masked
        .raw
        .get(line)
        .and_then(|raw| {
            let a = raw.find('"')?;
            let b = raw[a + 1..].find('"')?;
            Some(raw[a + 1..a + 1 + b].to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| format!("task@{}", line + 1));
    Some(TaskDef {
        name,
        line,
        pos: base + open,
        body: task_body,
    })
}

fn skip_ws(text: &str, mut i: usize) -> usize {
    let bytes = text.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn next_ident(text: &str, from: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let i = skip_ws(text, from);
    let start = i;
    let mut j = i;
    while j < bytes.len() && is_ident(bytes[j]) {
        j += 1;
    }
    if j > start && !bytes[start].is_ascii_digit() {
        Some((text[start..j].to_string(), start))
    } else {
        None
    }
}

fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Receivers that look like pooled allocators.
fn is_pool_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["pool", "slab", "arena"].iter().any(|p| lower.contains(p))
}

fn pool_pairs(files: &[AnalyzedFile]) -> Vec<PoolPair> {
    let mut out = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        if f.testish() {
            continue;
        }
        for fd in &f.model.fns {
            let (lo, hi) = fd.body_range;
            let body = &f.code.text[lo..hi];
            // Textual sequence of pool acquisitions in this function.
            let mut seq: Vec<(String, usize)> = Vec::new();
            for method in [".alloc(", ".acquire("] {
                let mut from = 0;
                while let Some(p) = body[from..].find(method) {
                    let at = from + p;
                    from = at + method.len();
                    let recv = ident_before(body, at);
                    if let Some(recv) = recv {
                        let line = f.code.line_of(lo + at);
                        if is_pool_name(&recv)
                            && !f.masked.in_test.get(line).copied().unwrap_or(false)
                        {
                            seq.push((recv, at));
                        }
                    }
                }
            }
            seq.sort_by_key(|&(_, at)| at);
            let mut recorded: Vec<(String, String)> = Vec::new();
            for i in 0..seq.len() {
                for j in i + 1..seq.len() {
                    let (a, b) = (&seq[i].0, &seq[j].0);
                    if a != b && !recorded.iter().any(|(x, y)| x == a && y == b) {
                        recorded.push((a.clone(), b.clone()));
                        out.push(PoolPair {
                            first: a.clone(),
                            second: b.clone(),
                            file: idx,
                            line: f.code.line_of(lo + seq[j].1),
                            fn_name: fd.name.clone(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The identifier ending exactly at byte `end` (exclusive), if any.
fn ident_before(text: &str, end: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        None
    } else {
        Some(text[start..end].to_string())
    }
}

/// Tokens that name the well-known command circuits.
const CONTROL_TOKENS: &[&str] = &["CONTROL_VCI_BASE", "REPLY_VCI_BASE"];

fn control_refs(files: &[AnalyzedFile]) -> Vec<ControlRef> {
    let mut out = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        for (line, code) in f.masked.code.iter().enumerate() {
            if f.masked.in_test.get(line).copied().unwrap_or(false) {
                continue;
            }
            let hit = CONTROL_TOKENS
                .iter()
                .find(|t| !word_positions(code, t).is_empty())
                .map(|t| (*t).to_string())
                .or_else(|| code.contains("Vci(0x7F").then(|| "Vci(0x7F..)".to_string()));
            if let Some(what) = hit {
                out.push(ControlRef {
                    file: idx,
                    line,
                    what,
                });
            }
        }
    }
    out
}

/// Sorted deterministic map of task-graph edges for one function:
/// `(sender task, receiver task) -> channel index` over rendezvous
/// channels only (buffered and unbounded stages break wait-for cycles).
pub fn rendezvous_edges(g: &FnGraph) -> BTreeMap<(usize, usize), usize> {
    let mut edges = BTreeMap::new();
    for (ci, c) in g.channels.iter().enumerate() {
        if c.kind != ChannelKind::Rendezvous {
            continue;
        }
        for (s, sends) in g.sends.iter().enumerate() {
            if !sends.contains(&ci) {
                continue;
            }
            for (r, recvs) in g.recvs.iter().enumerate() {
                if recvs.contains(&ci) {
                    edges.entry((s, r)).or_insert(ci);
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(src: &str) -> AnalyzedFile {
        AnalyzedFile::analyze(PathBuf::from("crates/sim/src/x.rs"), src)
    }

    #[test]
    fn channel_and_tasks_extracted() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (tx, rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"producer\", async move {
        tx.send(1).await.unwrap();
    });
    sim.spawn(\"consumer\", async move {
        let _ = rx.recv().await;
    });
}
";
        let f = analyzed(src);
        let g = fn_graph(0, &f, &f.model.fns[0]);
        assert_eq!(g.channels.len(), 1);
        assert_eq!(g.channels[0].kind, ChannelKind::Rendezvous);
        assert_eq!(g.tasks.len(), 2);
        assert_eq!(g.tasks[0].name, "producer");
        assert_eq!(g.sends[0], vec![0]);
        assert_eq!(g.recvs[1], vec![0]);
        let edges = rendezvous_edges(&g);
        assert_eq!(edges.len(), 1);
        assert!(edges.contains_key(&(0, 1)));
    }

    #[test]
    fn buffered_channels_make_no_edges() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (tx, rx) = pandora_sim::buffered::<u8>(8);
    sim.spawn(\"a\", async move { tx.send(1).await; });
    sim.spawn(\"b\", async move { rx.recv().await; });
}
";
        let f = analyzed(src);
        let g = fn_graph(0, &f, &f.model.fns[0]);
        assert_eq!(g.channels[0].kind, ChannelKind::Buffered);
        assert!(rendezvous_edges(&g).is_empty());
    }

    #[test]
    fn shadowed_names_resolve_to_latest_definition() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (tx, rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"first\", async move { rx.recv().await; });
    let (tx, rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"second\", async move { tx.send(1).await; rx.recv().await; });
}
";
        let f = analyzed(src);
        let g = fn_graph(0, &f, &f.model.fns[0]);
        assert_eq!(g.channels.len(), 2);
        assert_eq!(g.recvs[0], vec![0], "first task holds the first rx");
        assert_eq!(g.sends[1], vec![1]);
        assert_eq!(g.recvs[1], vec![1]);
    }

    #[test]
    fn pool_pairs_ordered_and_test_code_skipped() {
        let src = "\
fn stage(audio_pool: &P, video_pool: &P) {
    let a = audio_pool.alloc();
    let b = video_pool.alloc();
}
";
        let files = vec![analyzed(src)];
        let pairs = pool_pairs(&files);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].first, "audio_pool");
        assert_eq!(pairs[0].second, "video_pool");
    }

    #[test]
    fn wire_evidence_from_patterns_and_literal_arms() {
        let src = "\
// check:wire-enum
pub enum M { A, B }
fn code(m: &M) -> u8 {
    match m { M::A => 1, M::B => 2 }
}
fn decode(k: u8) -> Option<M> {
    match k { 1 => Some(M::A), _ => None }
}
";
        let files = vec![analyzed(src)];
        let enums = wire_evidence(&files);
        assert_eq!(enums.len(), 1);
        let vs = &enums[0].variants;
        assert!(vs[0].has_encode && vs[0].has_decode);
        assert!(vs[1].has_encode && !vs[1].has_decode, "B has no decode arm");
    }

    #[test]
    fn control_refs_found_outside_tests() {
        let src = "\
fn f() { let v = Vci(0x7F00 + 1); }
#[cfg(test)]
mod tests {
    fn t() { let v = Vci(0x7F00 + 1); }
}
";
        let files = vec![analyzed(src)];
        let refs = control_refs(&files);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].line, 0);
    }
}
