//! A lightweight lexical pass over Rust source.
//!
//! The analyzer's rules are token-level, so rather than a full parser we
//! classify every character of a file as *code*, *comment* or *string*.
//! Rules then match against the code channel (so `"Instant::now"` inside
//! a string literal is never a violation) while SAFETY-comment and
//! waiver detection read the comment channel.

/// A source file split into per-line code and comment channels.
///
/// All three vectors have one entry per source line. In `code`, comment
/// and string-literal characters are replaced by spaces; in `comment`,
/// everything except comment text is replaced by spaces.
pub struct MaskedFile {
    /// The original lines, unmodified.
    pub raw: Vec<String>,
    /// Code channel: comments and string contents blanked.
    pub code: Vec<String>,
    /// Comment channel: only comment text survives.
    pub comment: Vec<String>,
    /// True for lines inside `#[cfg(test)]` items or `#[test]` functions.
    pub in_test: Vec<bool>,
    /// True for lines inside a `macro_rules!` definition body. Macro
    /// templates are token soup whose expansion context (very often test
    /// code) a lexical pass cannot see, so the panic/determinism rules
    /// must not treat them as live code.
    pub in_macro: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl MaskedFile {
    /// Lexes `source` into code/comment channels and marks test regions.
    pub fn parse(source: &str) -> MaskedFile {
        let chars: Vec<char> = source.chars().collect();
        let mut code = String::with_capacity(source.len());
        let mut comment = String::with_capacity(source.len());
        let mut state = State::Code;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            if c == '\n' {
                if state == State::LineComment {
                    state = State::Code;
                }
                code.push('\n');
                comment.push('\n');
                i += 1;
                continue;
            }
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        code.push(' ');
                        comment.push(c);
                        i += 1;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        comment.push(c);
                        i += 1;
                    }
                    '"' => {
                        state = State::Str;
                        // Keep the delimiters in the code channel so token
                        // boundaries stay intact.
                        code.push('"');
                        comment.push(' ');
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        state = State::RawStr(hashes);
                        for _ in 0..consumed {
                            code.push(' ');
                            comment.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        i += consumed as usize;
                    }
                    'b' if next == Some('"') => {
                        state = State::Str;
                        code.push(' ');
                        code.push('"');
                        comment.push(' ');
                        comment.push(' ');
                        i += 2;
                    }
                    '\'' => {
                        if let Some(end) = char_literal_end(&chars, i) {
                            // Char literal: blank the contents.
                            code.push('\'');
                            comment.push(' ');
                            for _ in (i + 1)..end {
                                code.push(' ');
                                comment.push(' ');
                            }
                            code.push('\'');
                            comment.push(' ');
                            i = end + 1;
                            continue;
                        }
                        // Lifetime tick: plain code.
                        code.push(c);
                        comment.push(' ');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        comment.push(' ');
                        i += 1;
                    }
                },
                State::LineComment => {
                    code.push(' ');
                    comment.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        let d = depth - 1;
                        state = if d == 0 {
                            State::Code
                        } else {
                            State::BlockComment(d)
                        };
                        code.push(' ');
                        code.push(' ');
                        comment.push(c);
                        comment.push('/');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        comment.push(c);
                        comment.push('*');
                        i += 2;
                    } else {
                        code.push(' ');
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        // Escape: consume the pair.
                        code.push(' ');
                        comment.push(' ');
                        if next.is_some() && next != Some('\n') {
                            code.push(' ');
                            comment.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        state = State::Code;
                        code.push('"');
                        comment.push(' ');
                        i += 1;
                    } else {
                        code.push(' ');
                        comment.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        state = State::Code;
                        code.push('"');
                        comment.push(' ');
                        for _ in 0..hashes {
                            code.push(' ');
                            comment.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        comment.push(' ');
                        i += 1;
                    }
                }
            }
        }
        let raw: Vec<String> = source.lines().map(str::to_string).collect();
        let code: Vec<String> = code.lines().map(str::to_string).collect();
        let comment: Vec<String> = comment.lines().map(str::to_string).collect();
        let in_test = mark_test_regions(&code);
        let in_macro = mark_macro_regions(&code);
        MaskedFile {
            raw,
            code,
            comment,
            in_test,
            in_macro,
        }
    }

    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"  r#"  br"  br#"  rb is not a thing; b handled by caller for b".
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Returns (hash count, chars consumed through the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (u32, u32) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, (j - i) as u32)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime; returns the index of the
/// closing quote for a literal.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let next = *chars.get(i + 1)?;
    if next == '\\' {
        // Escaped char: scan for the closing quote on this line.
        let mut j = i + 2;
        while let Some(&c) = chars.get(j) {
            if c == '\'' {
                return Some(j);
            }
            if c == '\n' {
                return None;
            }
            j += 1;
        }
        return None;
    }
    // 'x' is a literal only if a quote follows immediately; otherwise it
    // is a lifetime ('a, 'static).
    if next != '\'' && chars.get(i + 2) == Some(&'\'') {
        return Some(i + 2);
    }
    None
}

/// Marks the lines belonging to `#[cfg(test)]` items and `#[test]` fns.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        let text = &code[line];
        if text.contains("cfg(test") || text.contains("#[test]") {
            let end = item_end(code, line);
            for flag in in_test.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_test
}

/// Marks the lines of every `macro_rules!` definition body.
fn mark_macro_regions(code: &[String]) -> Vec<bool> {
    let mut in_macro = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if code[line].contains("macro_rules!") {
            let end = item_end(code, line);
            for flag in in_macro.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_macro
}

/// Finds the last line of the item an attribute on `start` applies to:
/// either the statement's `;` or the matching close of its first brace.
fn item_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i32;
    let mut seen_brace = false;
    // Skip past the attribute's own brackets by ignoring [] entirely and
    // tracking only braces/semicolons.
    for (lineno, text) in code.iter().enumerate().skip(start) {
        for c in text.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth == 0 {
                        return lineno;
                    }
                }
                ';' if !seen_brace && depth == 0 && lineno > start => {
                    return lineno;
                }
                _ => {}
            }
        }
    }
    code.len() - 1
}

#[cfg(test)]
mod tests {
    use super::MaskedFile;

    #[test]
    fn strings_are_blanked_in_code_channel() {
        let m = MaskedFile::parse("let x = \"Instant::now\";\n");
        assert!(!m.code[0].contains("Instant"));
        assert!(m.code[0].contains("let x ="));
    }

    #[test]
    fn comments_split_to_comment_channel() {
        let m = MaskedFile::parse("foo(); // SAFETY: fine\n");
        assert!(m.code[0].contains("foo();"));
        assert!(!m.code[0].contains("SAFETY"));
        assert!(m.comment[0].contains("SAFETY: fine"));
    }

    #[test]
    fn block_comments_nest() {
        let m = MaskedFile::parse("a /* x /* y */ z */ b\n");
        assert!(m.code[0].contains('a'));
        assert!(m.code[0].contains('b'));
        assert!(!m.code[0].contains('y'));
        assert!(!m.code[0].contains('z'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = MaskedFile::parse("let s = r#\"unsafe \"quoted\" here\"#; end()\n");
        assert!(!m.code[0].contains("unsafe"));
        assert!(m.code[0].contains("end()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = MaskedFile::parse("fn f<'a>(x: &'a str) { let c = '\"'; g(x) }\n");
        assert!(m.code[0].contains("fn f<'a>"));
        assert!(m.code[0].contains("g(x)"));
        // The quote char literal must not open a string.
        let m2 = MaskedFile::parse("let c = 'x'; h(\"unsafe\")\n");
        assert!(!m2.code[0].contains("unsafe"));
        assert!(m2.code[0].contains("h("));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src =
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn after() {}\n";
        let m = MaskedFile::parse(src);
        assert!(!m.in_test[0]);
        assert!(m.in_test[1]);
        assert!(m.in_test[2]);
        assert!(m.in_test[3]);
        assert!(m.in_test[4]);
        assert!(!m.in_test[5]);
    }

    #[test]
    fn cfg_test_on_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let m = MaskedFile::parse(src);
        assert!(m.in_test[0]);
        assert!(m.in_test[1]);
        assert!(!m.in_test[2]);
    }

    #[test]
    fn macro_rules_body_marked() {
        let src =
            "macro_rules! m {\n    ($e:expr) => {\n        $e.unwrap()\n    };\n}\nfn live() {}\n";
        let m = MaskedFile::parse(src);
        assert!(m.in_macro[0]);
        assert!(m.in_macro[2]);
        assert!(!m.in_macro[5]);
    }

    #[test]
    fn multiline_string_spans() {
        let src = "let s = \"line one\nInstant::now\";\nreal();\n";
        let m = MaskedFile::parse(src);
        assert!(!m.code[1].contains("Instant"));
        assert!(m.code[2].contains("real()"));
    }
}
