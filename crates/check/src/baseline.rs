//! The committed diagnostic baseline: legacy findings CI tolerates.
//!
//! A baseline file (by convention `check.baseline` at the workspace
//! root) records known diagnostics as `PCxxx path:line` keys, one per
//! line; `#` starts a comment and blank lines are ignored. The binary
//! loads it by default and subtracts baselined findings from the failure
//! set, so CI goes red only on *new* diagnostics while the legacy ones
//! stay visible — in the file, under review, with a written reason.
//!
//! `--write-baseline` regenerates the file from the current run;
//! reviewers see the churn as ordinary diff.

use std::collections::BTreeSet;
use std::path::Path;

use crate::Diagnostic;

/// A parsed baseline: the set of tolerated diagnostic keys.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text (`PCxxx path:line` lines, `#` comments).
    pub fn parse(text: &str) -> Baseline {
        let keys = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").trim())
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect();
        Baseline { keys }
    }

    /// Loads `path`; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Returns an error when the file exists but cannot be read.
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// True when `d` is recorded in the baseline.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.keys.contains(&d.baseline_key())
    }

    /// Number of recorded keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys recorded but not present in `diagnostics` — stale entries
    /// that should be pruned (the finding was fixed).
    pub fn stale<'a>(&'a self, diagnostics: &[Diagnostic]) -> Vec<&'a str> {
        let live: BTreeSet<String> = diagnostics.iter().map(Diagnostic::baseline_key).collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .map(String::as_str)
            .collect()
    }
}

/// Renders `diagnostics` as baseline text, sorted and annotated with the
/// message as a trailing comment so the file reads as a worklist.
pub fn render(diagnostics: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diagnostics
        .iter()
        .map(|d| format!("{}  # {}", d.baseline_key(), d.message))
        .collect();
    lines.sort();
    let mut out = String::from(
        "# pandora-check baseline: tolerated legacy diagnostics.\n\
         # Regenerate with `cargo run -p pandora-check -- --write-baseline`.\n\
         # Format: PCxxx path:line   (text after `#` is ignored)\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use std::path::PathBuf;

    fn diag(path: &str, line: usize, rule: Rule) -> Diagnostic {
        Diagnostic {
            path: PathBuf::from(path),
            line,
            rule,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let b = Baseline::parse(
            "# header\n\nPC002 crates/sim/src/x.rs:4  # wall clock\nPC005 crates/a/src/b.rs:1\n",
        );
        assert_eq!(b.len(), 2);
        assert!(b.contains(&diag("crates/sim/src/x.rs", 4, Rule::WallClock)));
        assert!(!b.contains(&diag("crates/sim/src/x.rs", 5, Rule::WallClock)));
        assert!(!b.contains(&diag("crates/sim/src/x.rs", 4, Rule::OsThread)));
    }

    #[test]
    fn render_roundtrips_and_reports_stale() {
        let ds = vec![
            diag("crates/a/src/b.rs", 1, Rule::NoUnwrap),
            diag("crates/c/src/d.rs", 9, Rule::CommandPath),
        ];
        let text = render(&ds);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 2);
        assert!(ds.iter().all(|d| b.contains(d)));
        assert!(b.stale(&ds).is_empty());
        let stale = b.stale(&ds[..1]);
        assert_eq!(stale, ["PC103 crates/c/src/d.rs:9"]);
    }

    #[test]
    fn missing_file_loads_empty() {
        let b = Baseline::load(Path::new("/nonexistent/check.baseline")).unwrap();
        assert!(b.is_empty());
    }
}
