//! Rule `pool-order` (PC104, warn): pools must be acquired in one
//! globally consistent order.
//!
//! `Pool::alloc` and friends block (or report exhaustion) when the arena
//! is drained; two call sites acquiring the same pair of pools in
//! opposite orders can deadlock under exhaustion-blocking, exactly like
//! inconsistent lock order. The model records the textual acquisition
//! sequence of every function ([`crate::model::PoolPair`]); this rule
//! builds the global first→second graph over pool *names* and flags the
//! minority direction of every conflicting pair, pointing at the
//! majority site to fix against.
//!
//! Severity is warn: the textual sequence over-approximates control flow
//! (two acquisitions on disjoint branches are not really nested), so a
//! human decides.

use crate::model::{AnalyzedFile, PoolPair, WorkspaceModel};
use crate::rules::{push, waived};
use crate::{Diagnostic, Rule};

/// Applies the rule to every acquisition pair in the model.
pub fn pool_order_rule(
    files: &[AnalyzedFile],
    workspace: &WorkspaceModel,
    out: &mut Vec<Diagnostic>,
) {
    let pairs = &workspace.pool_pairs;
    // Group the observed directions per unordered name pair.
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for p in pairs {
        let key = (p.first.as_str(), p.second.as_str());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    for &(a, b) in &seen {
        // Handle each unordered pair once, from its lexicographically
        // smaller direction.
        if a > b || !seen.contains(&(b, a)) {
            continue;
        }
        let forward: Vec<&PoolPair> = pairs
            .iter()
            .filter(|p| p.first == a && p.second == b)
            .collect();
        let reverse: Vec<&PoolPair> = pairs
            .iter()
            .filter(|p| p.first == b && p.second == a)
            .collect();
        // Flag the minority direction; on a tie, the reverse of the
        // lexicographic order loses.
        let (flag, keep) = if reverse.len() <= forward.len() {
            (reverse, forward)
        } else {
            (forward, reverse)
        };
        let example = &keep[0];
        for p in flag {
            let file = &files[p.file];
            if waived(&file.masked, p.line, Rule::PoolOrder) {
                continue;
            }
            push(
                out,
                file,
                p.line,
                Rule::PoolOrder,
                format!(
                    "`{}` acquired after `{}` in `{}`, but `{}` acquires them in the \
                     opposite order ({}:{}); pick one global order",
                    p.second,
                    p.first,
                    p.fn_name,
                    example.fn_name,
                    files[example.file].rel_str,
                    example.line + 1,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkspaceModel;
    use std::path::PathBuf;

    fn check(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<AnalyzedFile> = sources
            .iter()
            .map(|(rel, src)| AnalyzedFile::analyze(PathBuf::from(*rel), src))
            .collect();
        let ws = WorkspaceModel::build(&files);
        let mut out = Vec::new();
        pool_order_rule(&files, &ws, &mut out);
        out
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = check(&[
            (
                "crates/audio/src/a.rs",
                "fn f(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc();\n    video_pool.alloc();\n}\n",
            ),
            (
                "crates/video/src/b.rs",
                "fn g(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc();\n    video_pool.alloc();\n}\n",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn conflicting_order_flags_minority_site() {
        let out = check(&[
            (
                "crates/audio/src/a.rs",
                "fn f(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc();\n    video_pool.alloc();\n}\n",
            ),
            (
                "crates/audio/src/c.rs",
                "fn h(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc();\n    video_pool.alloc();\n}\n",
            ),
            (
                "crates/video/src/b.rs",
                "fn g(audio_pool: &P, video_pool: &P) {\n    video_pool.alloc();\n    audio_pool.alloc();\n}\n",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::PoolOrder);
        assert_eq!(out[0].path, PathBuf::from("crates/video/src/b.rs"));
        assert!(out[0].message.contains("crates/audio/src/a.rs:"));
    }

    #[test]
    fn single_pool_repeat_is_clean() {
        let out = check(&[(
            "crates/audio/src/a.rs",
            "fn f(pool: &P) {\n    pool.alloc();\n    pool.alloc();\n}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_pool_receivers_ignored() {
        let out = check(&[(
            "crates/audio/src/a.rs",
            "fn f(map: &M, set: &S) {\n    map.alloc();\n    set.alloc();\n}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let out = check(&[
            (
                "crates/audio/src/a.rs",
                "fn f(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc();\n    video_pool.alloc();\n}\n",
            ),
            (
                "crates/video/src/b.rs",
                "fn g(audio_pool: &P, video_pool: &P) {\n    video_pool.alloc();\n    // check:allow(pool-order): branches are disjoint here.\n    audio_pool.alloc();\n}\n",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }
}
