//! Rule `command-path` (PC103): only the control plane touches the
//! well-known command circuits.
//!
//! The session protocol reserves a VCI window (`CONTROL_VCI_BASE` =
//! 0x7F00) for call setup, admission and fault reporting. A media or
//! transport crate referencing those circuits bypasses admission control:
//! its cells would land on the command path without a session. The model
//! records every non-test reference ([`crate::model::ControlRef`]); this
//! rule fires on each one outside `command_plane_crates`, skipping
//! test-support trees (`tests/`, `benches/`, `examples/`).

use crate::model::{AnalyzedFile, WorkspaceModel};
use crate::rules::{push, waived};
use crate::{Config, Diagnostic, Rule};

/// Applies the rule to every control-VCI reference in the model.
pub fn command_path_rule(
    files: &[AnalyzedFile],
    workspace: &WorkspaceModel,
    config: &Config,
    out: &mut Vec<Diagnostic>,
) {
    for r in &workspace.control_refs {
        let file = &files[r.file];
        if file.testish() {
            continue;
        }
        let allowed = file
            .crate_name()
            .is_some_and(|c| config.command_plane_crates.iter().any(|p| p == c));
        if allowed || waived(&file.masked, r.line, Rule::CommandPath) {
            continue;
        }
        push(
            out,
            file,
            r.line,
            Rule::CommandPath,
            format!(
                "`{}` referenced outside the control plane (crate `{}`); only {} may \
                 address the command VCIs",
                r.what,
                file.crate_name().unwrap_or("?"),
                config.command_plane_crates.join("/"),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkspaceModel;
    use std::path::PathBuf;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![AnalyzedFile::analyze(PathBuf::from(rel), src)];
        let ws = WorkspaceModel::build(&files);
        let mut out = Vec::new();
        command_path_rule(&files, &ws, &Config::default(), &mut out);
        out
    }

    #[test]
    fn media_crate_referencing_control_vci_fires() {
        let src = "fn f() { let vci = CONTROL_VCI_BASE + 3; }\n";
        let out = check("crates/video/src/push.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::CommandPath);
        assert!(out[0].message.contains("CONTROL_VCI_BASE"));
    }

    #[test]
    fn literal_control_window_vci_fires() {
        let src = "fn f() { let vci = Vci(0x7F00 + 2); }\n";
        let out = check("crates/atm/src/switch.rs", src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn session_and_recover_are_allowed() {
        let src = "fn f() { let vci = CONTROL_VCI_BASE; }\n";
        assert!(check("crates/session/src/topology.rs", src).is_empty());
        assert!(check("crates/recover/src/lease.rs", src).is_empty());
    }

    #[test]
    fn test_trees_and_cfg_test_are_exempt() {
        let src = "fn f() { let vci = CONTROL_VCI_BASE; }\n";
        assert!(check("crates/video/tests/e2e.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { let v = CONTROL_VCI_BASE; }\n}\n";
        assert!(check("crates/video/src/push.rs", in_test).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let src = "\
fn f() {
    // check:allow(command-path): diagnostic probe, reads only.
    let vci = CONTROL_VCI_BASE;
}
";
        assert!(check("crates/video/src/push.rs", src).is_empty());
    }
}
