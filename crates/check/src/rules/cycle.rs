//! Rule `channel-cycle` (PC102): tasks wired in one function must not
//! form a wait-for cycle over rendezvous channels.
//!
//! `pandora_sim::channel()` is an Occam-style rendezvous: `send` blocks
//! until the receiver takes the value. If task A sends to B, B to C and
//! C back to A — all over rendezvous channels — every task can end up
//! blocked in `send` waiting on its successor, a deadlock no test with a
//! lucky schedule will catch. `buffered`/`unbounded` stages decouple the
//! parties (the paper's decoupling buffers) and break the cycle, so only
//! rendezvous edges participate.
//!
//! The diagnostic fires once per cycle, at the spawn site of its first
//! task, naming the whole loop.

use crate::model::{rendezvous_edges, AnalyzedFile, WorkspaceModel};
use crate::rules::{push, waived};
use crate::{Diagnostic, Rule};

/// Applies the rule to every function graph in the model.
pub fn channel_cycle_rule(
    files: &[AnalyzedFile],
    workspace: &WorkspaceModel,
    out: &mut Vec<Diagnostic>,
) {
    for g in &workspace.fn_graphs {
        // Test trees and benches wire deliberate deadlocks (that is what
        // the runtime's deadlock detector tests exercise); only shipped
        // topologies are in scope.
        if files[g.file].testish() {
            continue;
        }
        let edges = rendezvous_edges(g);
        if edges.is_empty() {
            continue;
        }
        let n = g.tasks.len();
        let mut succ = vec![Vec::new(); n];
        for &(s, r) in edges.keys() {
            if s != r {
                succ[s].push(r);
            }
        }
        for cycle in find_cycles(&succ) {
            let first = cycle[0];
            let file = &files[g.file];
            let line = g.tasks[first].line;
            let in_test = cycle.iter().any(|&t| {
                file.masked
                    .in_test
                    .get(g.tasks[t].line)
                    .copied()
                    .unwrap_or(false)
            });
            if in_test || waived(&file.masked, line, Rule::ChannelCycle) {
                continue;
            }
            let loop_desc = cycle
                .iter()
                .chain(std::iter::once(&first))
                .map(|&t| format!("`{}`", g.tasks[t].name))
                .collect::<Vec<_>>()
                .join(" -> ");
            push(
                out,
                file,
                line,
                Rule::ChannelCycle,
                format!(
                    "tasks {loop_desc} in `{}` form a wait-for cycle over rendezvous \
                     channels; insert a buffered stage to decouple",
                    g.fn_name
                ),
            );
        }
    }
}

/// Elementary cycles of the successor graph, each rotated to start at its
/// smallest node and deduplicated. The graphs here are tiny (tasks wired
/// in one function), so a DFS per start node is plenty.
fn find_cycles(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let n = succ.len();
    for start in 0..n {
        // DFS from `start`, recording the path; a return to `start`
        // closes a cycle. Restricting interior nodes to > start
        // canonicalizes each cycle to its smallest rotation.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut on_path = vec![false; n];
        on_path[start] = true;
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, next) = stack[top];
            if next < succ[node].len() {
                stack[top].1 += 1;
                let to = succ[node][next];
                if to == start {
                    let cycle = path.clone();
                    if !cycles.contains(&cycle) {
                        cycles.push(cycle);
                    }
                } else if to > start && !on_path[to] {
                    on_path[to] = true;
                    path.push(to);
                    stack.push((to, 0));
                }
            } else {
                stack.pop();
                on_path[node] = false;
                path.pop();
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkspaceModel;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Diagnostic> {
        let files = vec![AnalyzedFile::analyze(
            PathBuf::from("crates/sim/src/wiring.rs"),
            src,
        )];
        let ws = WorkspaceModel::build(&files);
        let mut out = Vec::new();
        channel_cycle_rule(&files, &ws, &mut out);
        out
    }

    #[test]
    fn two_task_rendezvous_loop_fires() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (a_tx, a_rx) = pandora_sim::channel::<u8>();
    let (b_tx, b_rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"ping\", async move {
        a_tx.send(1).await;
        let _ = b_rx.recv().await;
    });
    sim.spawn(\"pong\", async move {
        let _ = a_rx.recv().await;
        b_tx.send(2).await;
    });
}
";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::ChannelCycle);
        assert!(out[0].message.contains("`ping`"));
        assert!(out[0].message.contains("`pong`"));
    }

    #[test]
    fn buffered_stage_breaks_the_cycle() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (a_tx, a_rx) = pandora_sim::channel::<u8>();
    let (b_tx, b_rx) = pandora_sim::buffered::<u8>(4);
    sim.spawn(\"ping\", async move {
        a_tx.send(1).await;
        let _ = b_rx.recv().await;
    });
    sim.spawn(\"pong\", async move {
        let _ = a_rx.recv().await;
        b_tx.send(2).await;
    });
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn straight_pipeline_is_clean() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (tx, rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"source\", async move { tx.send(1).await; });
    sim.spawn(\"sink\", async move { let _ = rx.recv().await; });
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn three_task_ring_fires_once() {
        let src = "\
fn ring(sim: &mut Simulation) {
    let (ab_tx, ab_rx) = pandora_sim::channel::<u8>();
    let (bc_tx, bc_rx) = pandora_sim::channel::<u8>();
    let (ca_tx, ca_rx) = pandora_sim::channel::<u8>();
    sim.spawn(\"a\", async move { ab_tx.send(1).await; ca_rx.recv().await; });
    sim.spawn(\"b\", async move { ab_rx.recv().await; bc_tx.send(1).await; });
    sim.spawn(\"c\", async move { bc_rx.recv().await; ca_tx.send(1).await; });
}
";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`a` -> `b` -> `c` -> `a`"));
    }

    #[test]
    fn waiver_at_spawn_suppresses() {
        let src = "\
fn wire(sim: &mut Simulation) {
    let (a_tx, a_rx) = pandora_sim::channel::<u8>();
    let (b_tx, b_rx) = pandora_sim::channel::<u8>();
    // check:allow(channel-cycle): strict alternation is the protocol here.
    sim.spawn(\"ping\", async move { a_tx.send(1).await; b_rx.recv().await; });
    sim.spawn(\"pong\", async move { a_rx.recv().await; b_tx.send(2).await; });
}
";
        assert!(check(src).is_empty());
    }
}
