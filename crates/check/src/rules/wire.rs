//! Rule `wire-exhaustive` (PC101): every variant of a wire-marked enum
//! must be encodable and — unless the marker says `(encode)` — decodable
//! somewhere in the workspace.
//!
//! Evidence is gathered by [`crate::model`]: encode evidence is the
//! variant named in a non-test match *pattern*; decode evidence is the
//! variant constructed in the *body* of a literal-pattern arm (the shape
//! of a kind-code decoder such as `SessionMsg::decode`). The diagnostic
//! fires at the variant's definition line, so deleting a decode arm in
//! `proto.rs` turns red at the enum it orphans.

use crate::model::{AnalyzedFile, WorkspaceModel};
use crate::parse::WireObligation;
use crate::rules::{push, waived};
use crate::{Diagnostic, Rule};

/// Applies the rule to every wire enum in the model.
pub fn wire_exhaustive_rule(
    files: &[AnalyzedFile],
    workspace: &WorkspaceModel,
    out: &mut Vec<Diagnostic>,
) {
    for we in &workspace.wire_enums {
        let file = &files[we.file];
        for v in &we.variants {
            if waived(&file.masked, v.line, Rule::WireExhaustive) {
                continue;
            }
            if !v.has_encode {
                push(
                    out,
                    file,
                    v.line,
                    Rule::WireExhaustive,
                    format!(
                        "wire enum `{}`: variant `{}` is never matched in an encode arm",
                        we.name, v.name
                    ),
                );
            }
            if we.obligation == WireObligation::EncodeAndDecode && !v.has_decode {
                push(
                    out,
                    file,
                    v.line,
                    Rule::WireExhaustive,
                    format!(
                        "wire enum `{}`: variant `{}` has no decode arm (no literal-pattern \
                         arm constructs it); a peer sending its kind code is silently dropped",
                        we.name, v.name
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkspaceModel;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Diagnostic> {
        let files = vec![AnalyzedFile::analyze(
            PathBuf::from("crates/session/src/proto.rs"),
            src,
        )];
        let ws = WorkspaceModel::build(&files);
        let mut out = Vec::new();
        wire_exhaustive_rule(&files, &ws, &mut out);
        out
    }

    #[test]
    fn fully_covered_enum_is_clean() {
        let src = "\
// check:wire-enum
pub enum M { A, B }
fn encode(m: &M) -> u8 { match m { M::A => 1, M::B => 2 } }
fn decode(k: u8) -> Option<M> {
    match k { 1 => Some(M::A), 2 => Some(M::B), _ => None }
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn missing_decode_arm_fires_at_variant() {
        let src = "\
// check:wire-enum
pub enum M { A, B }
fn encode(m: &M) -> u8 { match m { M::A => 1, M::B => 2 } }
fn decode(k: u8) -> Option<M> { match k { 1 => Some(M::A), _ => None } }
";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::WireExhaustive);
        assert_eq!(out[0].line, 2, "fires at the enum definition line");
        assert!(out[0].message.contains("`B`"));
        assert!(out[0].message.contains("decode"));
    }

    #[test]
    fn missing_encode_arm_fires() {
        let src = "\
// check:wire-enum(encode)
pub enum M { A, B }
fn encode(m: &M) -> u8 { match m { M::A => 1, _ => 0 } }
";
        let out = check(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("encode"));
    }

    #[test]
    fn encode_only_obligation_needs_no_decode() {
        let src = "\
// check:wire-enum(encode)
pub enum M { A }
fn encode(m: &M) -> u8 { match m { M::A => 1 } }
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_code_is_not_evidence() {
        let src = "\
// check:wire-enum(encode)
pub enum M { A }
#[cfg(test)]
mod tests {
    fn t(m: &M) -> u8 { match m { M::A => 1 } }
}
";
        let out = check(src);
        assert_eq!(out.len(), 1, "a match arm inside cfg(test) must not count");
    }

    #[test]
    fn waiver_at_variant_suppresses() {
        let src = "\
// check:wire-enum
pub enum M {
    A,
    // check:allow(wire-exhaustive): reserved kind, decoder lands next PR.
    B,
}
fn encode(m: &M) -> u8 { match m { M::A => 1, M::B => 2 } }
fn decode(k: u8) -> Option<M> { match k { 1 => Some(M::A), _ => None } }
";
        assert!(check(src).is_empty());
    }
}
