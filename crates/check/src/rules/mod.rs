//! The lint rules: per-file token rules over the masked channels, and
//! cross-file protocol rules over the workspace model.

mod command;
mod cycle;
mod pool_order;
mod wire;

use crate::mask::MaskedFile;
use crate::model::{AnalyzedFile, WorkspaceModel};
use crate::{Config, Diagnostic, Rule};

/// Runs every applicable per-file rule on one file, appending to `out`.
pub fn check_file(file: &AnalyzedFile, config: &Config, out: &mut Vec<Diagnostic>) {
    let ctx = FileContext {
        file,
        in_src: file.rel_str.contains("/src/"),
        testish: file.testish(),
    };
    safety_comment_rule(&ctx, out);
    determinism_rules(&ctx, config, out);
    no_unwrap_rule(&ctx, config, out);
    missing_docs_rule(&ctx, config, out);
    hot_path_alloc_rule(&ctx, out);
}

/// Runs the cross-file protocol rules over the aggregated model.
pub fn check_workspace(
    files: &[AnalyzedFile],
    workspace: &WorkspaceModel,
    config: &Config,
    out: &mut Vec<Diagnostic>,
) {
    wire::wire_exhaustive_rule(files, workspace, out);
    cycle::channel_cycle_rule(files, workspace, out);
    command::command_path_rule(files, workspace, config, out);
    pool_order::pool_order_rule(files, workspace, out);
}

pub(crate) struct FileContext<'a> {
    pub file: &'a AnalyzedFile,
    pub in_src: bool,
    pub testish: bool,
}

impl FileContext<'_> {
    fn masked(&self) -> &MaskedFile {
        &self.file.masked
    }

    fn crate_name(&self) -> Option<&str> {
        self.file.crate_name()
    }
}

/// True when line `l` (or the line above) carries `check:allow(rule)`.
pub(crate) fn waived(file: &MaskedFile, line: usize, rule: Rule) -> bool {
    let marker = format!("check:allow({})", rule.name());
    let here = file.comment.get(line).is_some_and(|c| c.contains(&marker));
    let above = line > 0 && file.comment[line - 1].contains(&marker);
    here || above
}

/// Appends a diagnostic for `file` at 0-based `line`.
pub(crate) fn push(
    out: &mut Vec<Diagnostic>,
    file: &AnalyzedFile,
    line: usize,
    rule: Rule,
    message: impl Into<String>,
) {
    out.push(Diagnostic {
        path: file.rel.clone(),
        line: line + 1,
        rule,
        message: message.into(),
    });
}

/// Finds `needle` in `haystack` as a whole word (identifier boundaries).
fn contains_word(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Rule `safety-comment`: every `unsafe` token needs a written
/// justification — a `SAFETY:` comment on the same line or in the
/// comment block immediately above, or a `# Safety` doc section.
fn safety_comment_rule(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let file = ctx.masked();
    for line in 0..file.len() {
        if !contains_word(&file.code[line], "unsafe") {
            continue;
        }
        // `unsafe_op_in_unsafe_fn`-style attribute mentions are fine.
        if file.code[line].contains("allow(") || file.code[line].contains("deny(") {
            continue;
        }
        if has_safety_justification(file, line) || waived(file, line, Rule::SafetyComment) {
            continue;
        }
        push(
            out,
            ctx.file,
            line,
            Rule::SafetyComment,
            "`unsafe` without a preceding `// SAFETY:` justification",
        );
    }
}

fn has_safety_justification(file: &MaskedFile, line: usize) -> bool {
    let is_safety =
        |l: usize| file.comment[l].contains("SAFETY:") || file.comment[l].contains("# Safety");
    if is_safety(line) {
        return true;
    }
    // Walk the contiguous comment/attribute block directly above.
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code = file.code[l].trim();
        let has_comment = !file.comment[l].trim().is_empty();
        if code.is_empty() && has_comment {
            if is_safety(l) {
                return true;
            }
            continue;
        }
        // Attribute lines sit between docs and the item.
        if code.starts_with("#[") && code.ends_with(']') {
            continue;
        }
        break;
    }
    false
}

/// Rules `wall-clock` and `os-thread`: nothing under `crates/` may read
/// real time or touch the OS scheduler, except the explicit allowlist
/// (the live runtime and the host benchmarks). Test code and
/// `macro_rules!` bodies are skipped: tests run on the host clock by
/// design, and a macro template's expansion context (very often test
/// code) is invisible to a lexical pass.
fn determinism_rules(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    if !ctx.file.rel_str.starts_with("crates/") || ctx.testish {
        return;
    }
    if config
        .wall_clock_allowlist
        .iter()
        .any(|prefix| ctx.file.rel_str.starts_with(prefix.as_str()))
    {
        return;
    }
    let deterministic = ctx
        .crate_name()
        .is_some_and(|c| config.deterministic_crates.iter().any(|d| d == c));
    let zone = if deterministic {
        "deterministic crate"
    } else {
        "non-allowlisted crate"
    };
    let file = ctx.masked();
    for line in 0..file.len() {
        if file.in_test[line] || file.in_macro[line] {
            continue;
        }
        let code = &file.code[line];
        for pattern in ["Instant::now", "SystemTime"] {
            if contains_word(code, pattern) && !waived(file, line, Rule::WallClock) {
                push(
                    out,
                    ctx.file,
                    line,
                    Rule::WallClock,
                    format!("wall-clock `{pattern}` in {zone}; use the sim clock"),
                );
            }
        }
        for pattern in ["thread::spawn", "thread::sleep"] {
            if code.contains(pattern) && !waived(file, line, Rule::OsThread) {
                push(
                    out,
                    ctx.file,
                    line,
                    Rule::OsThread,
                    format!("OS scheduling `{pattern}` in {zone}; spawn sim tasks instead"),
                );
            }
        }
    }
}

/// Rule `no-unwrap`: hot-path crates must not panic via `unwrap`/`expect`
/// outside test code; exhaustion and closure are reported faults.
fn no_unwrap_rule(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    let hot = ctx
        .crate_name()
        .is_some_and(|c| config.hot_path_crates.iter().any(|h| h == c));
    if !hot || !ctx.in_src || ctx.testish {
        return;
    }
    let file = ctx.masked();
    for line in 0..file.len() {
        if file.in_test[line] || file.in_macro[line] {
            continue;
        }
        let code = &file.code[line];
        let hit = code.contains(".unwrap()") || code.contains(".expect(");
        if hit && !waived(file, line, Rule::NoUnwrap) {
            push(
                out,
                ctx.file,
                line,
                Rule::NoUnwrap,
                format!(
                    "`unwrap`/`expect` outside test code in hot-path crate `{}`",
                    ctx.crate_name().unwrap_or("?")
                ),
            );
        }
    }
}

/// Rule `missing-docs`: public items in the documented crates carry doc
/// comments — these are the workspace's stable API surface.
fn missing_docs_rule(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    let documented = ctx
        .crate_name()
        .is_some_and(|c| config.documented_crates.iter().any(|d| d == c));
    if !documented || !ctx.in_src || ctx.testish {
        return;
    }
    let file = ctx.masked();
    for line in 0..file.len() {
        if file.in_test[line] || file.in_macro[line] {
            continue;
        }
        let code = file.code[line].trim_start();
        let Some(rest) = code.strip_prefix("pub ") else {
            continue;
        };
        let keyword = rest.split_whitespace().next().unwrap_or("");
        let is_item = matches!(
            keyword,
            "fn" | "async"
                | "unsafe"
                | "const"
                | "static"
                | "struct"
                | "enum"
                | "union"
                | "trait"
                | "type"
                | "mod"
                | "macro"
        );
        // `pub const NAME` and `pub const fn` both require docs, but
        // `pub use` re-exports do not.
        if !is_item {
            continue;
        }
        // `pub mod name;` file modules document themselves with inner
        // `//!` docs, which a line scan of this file cannot see.
        if keyword == "mod" && code.trim_end().ends_with(';') {
            continue;
        }
        if is_documented(file, line) || waived(file, line, Rule::MissingDocs) {
            continue;
        }
        push(
            out,
            ctx.file,
            line,
            Rule::MissingDocs,
            format!("public `{keyword}` item without a doc comment"),
        );
    }
}

/// The comment marker by which a file opts into [`hot_path_alloc_rule`].
/// Kept as a string literal so the analyzer never trips over its own
/// source: the marker scan reads the comment channel only.
const HOT_PATH_MARKER: &str = "check:hot-path";

/// Rule `hot-path-alloc`: a file whose comments carry the hot-path
/// marker promises to allocate payload bytes from the slab arena only.
/// `Vec::new(` and `.to_vec()` outside test code break that promise —
/// each is a per-segment heap allocation (and usually a copy) on the
/// data path the two-copy invariant (§3.4) protects. Waivable where the
/// copy *is* the contract (the legacy owned decode, `copy_to_vec`).
fn hot_path_alloc_rule(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.testish {
        return;
    }
    let file = ctx.masked();
    let marked = (0..file.len()).any(|l| file.comment[l].contains(HOT_PATH_MARKER));
    if !marked {
        return;
    }
    for line in 0..file.len() {
        if file.in_test[line] || file.in_macro[line] {
            continue;
        }
        let code = &file.code[line];
        for pattern in ["Vec::new(", ".to_vec()"] {
            if code.contains(pattern) && !waived(file, line, Rule::HotPathAlloc) {
                push(
                    out,
                    ctx.file,
                    line,
                    Rule::HotPathAlloc,
                    format!("`{pattern}` allocates on a declared hot path; use the slab arena"),
                );
            }
        }
    }
}

fn is_documented(file: &MaskedFile, item_line: usize) -> bool {
    let mut l = item_line;
    while l > 0 {
        l -= 1;
        let raw = file.raw[l].trim_start();
        if raw.starts_with("///") || raw.starts_with("//!") || raw.starts_with("#[doc") {
            return true;
        }
        // Attributes (possibly stacked) and plain comments — e.g. a
        // `check:wire-enum` marker or a waiver — sit between the docs
        // and the item without breaking the attachment.
        if raw.starts_with("#[") || raw.starts_with("//") {
            continue;
        }
        // A multi-line attribute like `#[derive(\n  Debug,\n)]`: walk up
        // to its opening line and resume the scan above it.
        if raw.ends_with(']') && !raw.contains('[') {
            let mut a = l;
            while a > 0 && !file.raw[a].trim_start().starts_with("#[") {
                a -= 1;
            }
            if file.raw[a].trim_start().starts_with("#[") {
                l = a;
                continue;
            }
            return false;
        }
        // A doc block comment `/** ... */` ends just above the item.
        if raw.ends_with("*/") {
            return true;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diags(rel: &str, source: &str) -> Vec<Diagnostic> {
        let file = AnalyzedFile::analyze(PathBuf::from(rel), source);
        let mut out = Vec::new();
        check_file(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_fires() {
        let out = diags(
            "crates/video/src/x.rs",
            "fn f() {\n    let p = unsafe { q() };\n}\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::SafetyComment);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let out = diags(
            "crates/video/src/x.rs",
            "fn f() {\n    // SAFETY: q has no invariants.\n    let p = unsafe { q() };\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_fn_with_doc_safety_section_passes() {
        let src = "/// Does things.\n///\n/// # Safety\n///\n/// Caller upholds X.\npub unsafe fn f() {}\n";
        let out = diags("crates/video/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_in_string_is_ignored() {
        let out = diags("crates/video/src/x.rs", "fn f() { g(\"unsafe\"); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wall_clock_in_deterministic_crate_fires() {
        let out = diags(
            "crates/sim/src/executor.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::WallClock);
    }

    #[test]
    fn wall_clock_allowlisted_in_rt() {
        let out = diags(
            "crates/core/src/rt.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wall_clock_in_cfg_test_passes() {
        // Tests run on the host; the determinism contract is about the
        // shipped simulation, so in_test lines are exempt (mask FP fix).
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let out = diags("crates/sim/src/executor.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wall_clock_in_macro_body_passes() {
        // A macro template's expansion context is unknowable lexically;
        // the in_macro channel keeps templates out of the determinism
        // rules (mask FP fix).
        let src = "macro_rules! timed {\n    ($e:expr) => {{ let _t = Instant::now(); $e }};\n}\n";
        let out = diags("crates/sim/src/executor.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn os_thread_fires() {
        let out = diags(
            "crates/buffers/src/pool.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::OsThread);
    }

    #[test]
    fn unwrap_outside_tests_fires_in_hot_path() {
        let out = diags("crates/sim/src/x.rs", "fn f() { g().unwrap(); }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn unwrap_inside_cfg_test_passes() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { g().unwrap(); }\n}\n";
        let out = diags("crates/sim/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_in_macro_body_passes() {
        let src = "macro_rules! must {\n    ($e:expr) => { $e.unwrap() };\n}\n";
        let out = diags("crates/sim/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_in_non_hot_crate_passes() {
        let out = diags("crates/metrics/src/x.rs", "fn f() { g().unwrap(); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let src = "fn f() {\n    // check:allow(no-unwrap): startup path, cannot fail.\n    g().unwrap();\n}\n";
        let out = diags("crates/sim/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_docs_fires_in_documented_crate() {
        let out = diags("crates/segment/src/x.rs", "pub fn undocumented() {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::MissingDocs);
    }

    #[test]
    fn missing_docs_applies_to_metrics_and_repository() {
        for krate in ["metrics", "repository"] {
            let rel = format!("crates/{krate}/src/x.rs");
            let out = diags(&rel, "pub fn undocumented() {}\n");
            assert_eq!(out.len(), 1, "{krate} must be documented");
            assert_eq!(out[0].rule, Rule::MissingDocs);
        }
    }

    #[test]
    fn documented_item_passes() {
        let out = diags(
            "crates/segment/src/x.rs",
            "/// Well documented.\npub fn fine() {}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn docs_above_attributes_count() {
        let out = diags(
            "crates/segment/src/x.rs",
            "/// Documented.\n#[derive(Debug)]\npub struct S;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn docs_above_marker_comment_count() {
        // A rule marker between the doc comment and the item must not
        // break doc attachment (mask FP fix).
        let out = diags(
            "crates/segment/src/x.rs",
            "/// Documented.\n// check:wire-enum: wire tags.\n#[derive(Debug)]\npub enum E { A }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn docs_above_multiline_attribute_count() {
        let out = diags(
            "crates/segment/src/x.rs",
            "/// Documented.\n#[derive(\n    Debug, Clone,\n)]\npub struct S;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn file_module_declaration_needs_no_docs() {
        let out = diags("crates/segment/src/lib.rs", "pub mod wire;\n");
        assert!(out.is_empty(), "{out:?}");
        let inline = diags("crates/segment/src/lib.rs", "pub mod wire {\n}\n");
        assert_eq!(inline.len(), 1, "inline modules still need docs");
    }

    #[test]
    fn pub_use_needs_no_docs() {
        let out = diags("crates/segment/src/lib.rs", "pub use crate::wire;\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pub_crate_needs_no_docs() {
        let out = diags("crates/segment/src/x.rs", "pub(crate) fn internal() {}\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_docs_ignored_outside_documented_crates() {
        let out = diags("crates/video/src/x.rs", "pub fn undocumented() {}\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_alloc_fires_in_marked_file() {
        let src = "// check:hot-path: the data path.\nfn f() { let v: Vec<u8> = Vec::new(); }\n";
        let out = diags("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::HotPathAlloc);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn hot_path_alloc_flags_to_vec() {
        let src = "// check:hot-path\nfn f(b: &[u8]) -> Vec<u8> { b.to_vec() }\n";
        let out = diags("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::HotPathAlloc);
    }

    #[test]
    fn hot_path_alloc_silent_without_marker() {
        let src = "fn f() { let v: Vec<u8> = Vec::new(); g(v.to_vec()); }\n";
        let out = diags("crates/core/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_alloc_ignores_test_code_and_vecdeque() {
        let src = "// check:hot-path\nfn f(q: &mut std::collections::VecDeque<u8>) { q.clear(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<u8> = Vec::new(); }\n}\n";
        let out = diags("crates/core/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_alloc_waiver_suppresses() {
        let src = "// check:hot-path\n// check:allow(hot-path-alloc): the copy is the contract here.\nfn f(b: &[u8]) -> Vec<u8> { b.to_vec() }\n";
        let out = diags("crates/core/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_marker_in_string_does_not_arm() {
        let src = "fn f() { g(\"check:hot-path\"); let v: Vec<u8> = Vec::new(); }\n";
        let out = diags("crates/core/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }
}
