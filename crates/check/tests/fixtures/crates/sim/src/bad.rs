//! Seeded violations: wall-clock, os-thread and no-unwrap in `sim`.

pub fn naughty_clock() -> u64 {
    let _t = std::time::Instant::now();
    0
}

pub fn naughty_thread() {
    std::thread::spawn(|| {});
}

pub fn naughty_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn waived_clock() -> u64 {
    // check:allow(wall-clock): fixture demonstrating the waiver syntax
    let _t = std::time::Instant::now();
    0
}
