//! Mask regression fixture: every line here looks like a violation but
//! sits in a string, a macro template or test code. The analyzer must
//! report nothing for this file — it lives in `sim`, the crate with the
//! strictest rule set, precisely so any masking regression turns the
//! golden test red.

fn strings() -> &'static str {
    "Instant::now() thread::spawn(x) .unwrap() unsafe CONTROL_VCI_BASE"
}

fn raw_strings() -> &'static str {
    r#"SystemTime thread::sleep Vci(0x7F00) check:hot-path Vec::new("#
}

fn char_then_string() -> u8 {
    let c = '"';
    let s = "Instant::now() .to_vec()";
    (c as u8) + (s.len() as u8)
}

macro_rules! must_take {
    ($e:expr) => {
        // Expansion context is unknowable to a lexical pass; macro
        // templates are exempt from the panic and determinism rules.
        $e.unwrap()
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn host_clock_and_unwrap_are_fine_in_tests() {
        let _t = std::time::Instant::now();
        let _ = Some(1).unwrap();
    }
}
