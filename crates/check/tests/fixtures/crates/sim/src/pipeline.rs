//! Seeded channel-cycle violations: rendezvous rings that the
//! decoupling principle says must not ship.

fn ping_pong(sim: &mut Simulation) {
    let (a_tx, a_rx) = pandora_sim::channel::<u8>();
    let (b_tx, b_rx) = pandora_sim::channel::<u8>();
    sim.spawn("ping", async move {
        a_tx.send(1).await;
        let _ = b_rx.recv().await;
    });
    sim.spawn("pong", async move {
        let _ = a_rx.recv().await;
        b_tx.send(2).await;
    });
}

fn ring(sim: &mut Simulation) {
    let (ab_tx, ab_rx) = pandora_sim::channel::<u8>();
    let (bc_tx, bc_rx) = pandora_sim::channel::<u8>();
    let (ca_tx, ca_rx) = pandora_sim::channel::<u8>();
    sim.spawn("east", async move {
        ab_tx.send(1).await;
        let _ = ca_rx.recv().await;
    });
    sim.spawn("middle", async move {
        let _ = ab_rx.recv().await;
        bc_tx.send(1).await;
    });
    sim.spawn("west", async move {
        let _ = bc_rx.recv().await;
        ca_tx.send(1).await;
    });
}

fn decoupled(sim: &mut Simulation) {
    let (in_tx, in_rx) = pandora_sim::channel::<u8>();
    let (out_tx, out_rx) = pandora_sim::buffered::<u8>(8);
    sim.spawn("producer", async move {
        in_tx.send(1).await;
        let _ = out_rx.recv().await;
    });
    sim.spawn("relay", async move {
        let _ = in_rx.recv().await;
        out_tx.send(2).await;
    });
}
