//! Seeded wire-exhaustive violations: kind codes without decode arms
//! and a fault class the encoder never names.

/// Control message kinds crossing the wire.
// check:wire-enum
pub enum CtrlMsg {
    Open,
    Close,
    Ping,
    Quit,
}

fn encode(m: &CtrlMsg) -> u8 {
    match m {
        CtrlMsg::Open => 1,
        CtrlMsg::Close => 2,
        CtrlMsg::Ping => 3,
        _ => 0,
    }
}

fn decode(k: u8) -> Option<CtrlMsg> {
    match k {
        1 => Some(CtrlMsg::Open),
        _ => None,
    }
}

/// Fault classes observed on the wire (encode obligation only).
// check:wire-enum(encode)
pub enum WireFault {
    Loss,
    Corrupt,
}

fn observe(f: &WireFault) -> u8 {
    match f {
        WireFault::Loss => 1,
        _ => 0,
    }
}
