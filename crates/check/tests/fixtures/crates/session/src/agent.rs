//! Seeded violations: missing-docs and wall-clock in `session`.

pub fn undocumented_handshake(_txn: u32) -> bool {
    true
}

/// Documented, but stamps the reply with the host clock instead of
/// virtual time — the control plane must replay deterministically.
pub fn naughty_stamp() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}
