//! Seeded violation: missing-docs in `segment`.

pub fn parse(_bytes: &[u8]) -> u32 {
    0
}
