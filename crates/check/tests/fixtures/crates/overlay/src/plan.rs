//! Seeded violations: missing-docs, wall-clock and os-thread in `overlay`.

pub fn undocumented_stripe_of(seq: u64, trees: u64) -> u64 {
    seq % trees
}

/// Documented, but seeds the tree shuffle from the host clock — the
/// plan digest and the soak's replay equality both diverge.
pub fn naughty_plan_seed() -> u64 {
    let _t = std::time::Instant::now();
    0
}

/// Documented, but grafts orphans from an OS thread — repair ordering
/// must come from the virtual-time executor or shard counts disagree.
pub fn naughty_graft_thread() {
    std::thread::spawn(|| {});
}
