//! Seeded pool-order conflicts: these functions acquire the same pool
//! pairs as `audio/src/mixer_pools.rs`, in the opposite order.

fn grab(audio_pool: &Pool, video_pool: &Pool) {
    let v = video_pool.alloc(64);
    let a = audio_pool.alloc(64);
}

fn refill(cell_arena: &Arena, frame_slab: &Slab) {
    let f = frame_slab.acquire();
    let c = cell_arena.acquire();
}
