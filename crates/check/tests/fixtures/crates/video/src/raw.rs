//! Seeded violation: `unsafe` without a SAFETY justification.

pub fn read_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Reads a byte with the contract written down.
pub fn read_byte_justified(p: *const u8) -> u8 {
    // SAFETY: fixture pointer is always valid in this demo.
    unsafe { *p }
}
