//! Seeded command-path violations: a media crate addressing the
//! control circuits directly.

fn leak_base() -> u32 {
    CONTROL_VCI_BASE + 2
}

fn leak_literal() -> Vci {
    Vci(0x7F01)
}

fn probe() -> u32 {
    // check:allow(command-path): read-only diagnostic probe fixture.
    CONTROL_VCI_BASE
}
