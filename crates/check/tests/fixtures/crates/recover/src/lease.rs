//! Seeded violations: missing-docs and wall-clock in `recover`.

pub fn undocumented_probe_budget(misses: u32) -> u32 {
    misses * 2
}

/// Documented, but times the lease with the host clock — detection
/// latency must come from virtual time or replays diverge.
pub fn naughty_deadline() -> u64 {
    let _t = std::time::Instant::now();
    0
}
