//! Seeded violations: missing-docs and no-unwrap in `buffers`.

pub struct Undocumented;

/// Documented, but the body panics via `expect`.
pub fn naughty_expect(v: Option<u8>) -> u8 {
    v.expect("fixture")
}
