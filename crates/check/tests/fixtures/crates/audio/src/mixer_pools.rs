//! Pool acquisitions in the canonical order: audio before video,
//! arena before slab. The majority order the conflict is judged against.

fn mix(audio_pool: &Pool, video_pool: &Pool) {
    let a = audio_pool.alloc(64);
    let v = video_pool.alloc(64);
}

fn overlay(audio_pool: &Pool, video_pool: &Pool) {
    let a = audio_pool.alloc(16);
    let v = video_pool.alloc(16);
}

fn stage(cell_arena: &Arena, frame_slab: &Slab) {
    let c = cell_arena.acquire();
    let f = frame_slab.acquire();
}
