// check:hot-path: fixture data path.
pub fn stage(n: usize) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::new();
    out.resize(n, 0);
    out
}

pub fn contracted_copy(b: &[u8]) -> Vec<u8> {
    // check:allow(hot-path-alloc): the copy is this helper's contract.
    b.to_vec()
}

pub fn sneaky_copy(b: &[u8]) -> Vec<u8> {
    b.to_vec()
}
