//! Seeded violations: os-thread and wall-clock in `atm`.

pub fn naughty_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn naughty_epoch() {
    let _ = std::time::SystemTime::now();
}
