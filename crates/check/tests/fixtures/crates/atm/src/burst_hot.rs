// check:hot-path: burst fixture - every cell copy crosses the fabric here.
pub struct Burst {
    cells: Vec<u8>,
}

// Seeded violation: the fan-out copy materialised with `to_vec`.
pub fn fan_out(b: &Burst) -> Vec<u8> {
    b.cells.to_vec()
}

// Seeded violation: growing from empty on the dispatch path.
pub fn gather(runs: &[&[u8]]) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::new();
    for r in runs {
        out.extend_from_slice(r);
    }
    out
}

pub fn rewrite(b: &Burst) -> Vec<u8> {
    // check:allow(hot-path-alloc): the rewritten copy is the operation itself.
    b.cells.to_vec()
}
