//! Regression probes for the lexical mask: every context that once did
//! (or plausibly could) fool the code/comment split into a false
//! positive. Each probe pins the exact behaviour the rules rely on —
//! string and raw-string bodies never reach the code channel, char
//! literals don't open string state, `cfg(test)` regions carry
//! `in_test`, and `macro_rules!` bodies carry `in_macro`.

use pandora_check::mask::MaskedFile;

fn code_has(src: &str, needle: &str) -> bool {
    let m = MaskedFile::parse(src);
    m.code.iter().any(|l| l.contains(needle))
}

#[test]
fn probe_string_contexts() {
    // 1. plain string
    assert!(!code_has("let s = \"Instant::now\";\n", "Instant"), "p1");
    // 2. escaped quote then pattern inside string
    assert!(
        !code_has("let s = \"a \\\" b Instant::now c\";\n", "Instant"),
        "p2"
    );
    // 3. escaped backslash closing then real code
    assert!(
        code_has("let s = \"x\\\\\"; let t = real_code();\n", "real_code"),
        "p3"
    );
    // 4. byte string
    assert!(!code_has("let s = b\"thread::sleep\";\n", "thread"), "p4");
    // 5. raw string
    assert!(!code_has("let s = r\"thread::sleep\";\n", "thread"), "p5");
    // 6. raw hash string with inner quote
    assert!(
        !code_has("let s = r#\"x \" thread::sleep\"#; after();\n", "thread"),
        "p6"
    );
    assert!(
        code_has("let s = r#\"x \" y\"#; after();\n", "after"),
        "p6b"
    );
    // 7. byte raw string
    assert!(!code_has("let s = br#\"unsafe\"#;\n", "unsafe"), "p7");
    // 8. char literal quote then string
    assert!(
        !code_has("let c = '\"'; let s = \"Instant::now\"; t();\n", "Instant"),
        "p8"
    );
    assert!(
        code_has("let c = '\"'; let s = \"x\"; t();\n", "t()"),
        "p8b"
    );
    // 9. escaped char literal of quote
    assert!(
        !code_has("let c = '\\\"'; let s = \"Instant::now\";\n", "Instant"),
        "p9"
    );
    // 10. lifetime then string
    assert!(
        !code_has("fn f<'a>(x: &'a str) { g(\"Instant::now\") }\n", "Instant"),
        "p10"
    );
    // 11. format! with braces and pattern
    assert!(
        !code_has("let s = format!(\"{} Instant::now\", x);\n", "Instant"),
        "p11"
    );
    // 12. string with \\u escape
    assert!(
        !code_has("let s = \"\\u{41} Instant::now\";\n", "Instant"),
        "p12"
    );
    // 13. two strings on one line, pattern between them IS code
    assert!(
        code_has("g(\"a\", Instant::now(), \"b\");\n", "Instant"),
        "p13"
    );
    // 14. char literal backslash then string
    assert!(
        !code_has("let c = '\\\\'; let s = \"Instant::now\";\n", "Instant"),
        "p14"
    );
    // 15. raw string ending with backslash-quote (no escapes in raw)
    assert!(
        code_has("let s = r\"ends with \\\"; after();\n", "after"),
        "p15"
    );
    // 16. b'x' byte char then string
    assert!(
        !code_has("let c = b'\"'; let s = \"Instant::now\";\n", "Instant"),
        "p16"
    );
    // 17. labelled loop / lifetime tick before quote two later
    assert!(
        code_has("'outer: loop { break 'outer; }\nreal();\n", "real"),
        "p17"
    );
    // 18. macro body tokens are code (expected: code channel sees them)
    assert!(
        code_has(
            "macro_rules! m { ($e:expr) => { $e.unwrap() }; }\n",
            "unwrap"
        ),
        "p18"
    );
}

#[test]
fn probe_in_test_marking() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live() {}\n";
    let m = MaskedFile::parse(src);
    assert!(m.in_test[2], "t1");
    assert!(!m.in_test[4], "t2");
    // attribute on fn with string containing brace
    let src2 = "#[test]\nfn t() { g(\"}\"); x.unwrap(); }\nfn live() { y.unwrap(); }\n";
    let m2 = MaskedFile::parse(src2);
    assert!(m2.in_test[1], "t3");
    assert!(
        !m2.in_test[2],
        "t4: string brace must not end the test item"
    );
}

#[test]
fn probe_in_macro_marking() {
    // The whole macro_rules! body is in_macro; following items are not.
    let src = "macro_rules! m {\n    ($e:expr) => { $e.unwrap() };\n}\nfn live() { x.unwrap(); }\n";
    let m = MaskedFile::parse(src);
    assert!(m.in_macro[0], "m1: the macro_rules! line itself");
    assert!(m.in_macro[1], "m2: the template body");
    assert!(m.in_macro[2], "m3: the closing brace");
    assert!(!m.in_macro[3], "m4: code after the macro is live");
    // A string mentioning macro_rules! must not open a macro region.
    let m2 = MaskedFile::parse("fn f() { g(\"macro_rules!\"); }\nfn h() { x.unwrap(); }\n");
    assert!(!m2.in_macro[0], "m5");
    assert!(!m2.in_macro[1], "m6");
}
