//! End-to-end analyzer tests over the seeded-violation fixture tree, plus
//! a clean-workspace run of the real binary.
//!
//! The fixture tree under `tests/fixtures/` mirrors the workspace layout
//! (`crates/<name>/src/*.rs`) so the path-scoped rules apply exactly as
//! they would in the real tree. The walker skips directories named
//! `fixtures`, so these files never pollute a real workspace run.

use std::path::{Path, PathBuf};
use std::process::Command;

use pandora_check::{run_checks, workspace_root, Config, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every seeded violation is reported at its exact file and line, with
/// nothing extra — including the waived `Instant::now` staying silent.
#[test]
fn fixtures_report_every_seeded_violation() {
    let diags = run_checks(&fixture_root(), &Config::default()).unwrap();
    let got: Vec<(String, usize, Rule)> = diags
        .iter()
        .map(|d| (d.path.to_string_lossy().replace('\\', "/"), d.line, d.rule))
        .collect();
    let expected = vec![
        ("crates/atm/src/cell.rs".to_string(), 4, Rule::OsThread),
        ("crates/atm/src/cell.rs".to_string(), 8, Rule::WallClock),
        ("crates/atm/src/hot.rs".to_string(), 3, Rule::HotPathAlloc),
        ("crates/atm/src/hot.rs".to_string(), 14, Rule::HotPathAlloc),
        (
            "crates/buffers/src/lib.rs".to_string(),
            3,
            Rule::MissingDocs,
        ),
        ("crates/buffers/src/lib.rs".to_string(), 7, Rule::NoUnwrap),
        (
            "crates/recover/src/lease.rs".to_string(),
            3,
            Rule::MissingDocs,
        ),
        (
            "crates/recover/src/lease.rs".to_string(),
            10,
            Rule::WallClock,
        ),
        (
            "crates/segment/src/wire.rs".to_string(),
            3,
            Rule::MissingDocs,
        ),
        (
            "crates/session/src/agent.rs".to_string(),
            3,
            Rule::MissingDocs,
        ),
        (
            "crates/session/src/agent.rs".to_string(),
            10,
            Rule::WallClock,
        ),
        ("crates/sim/src/bad.rs".to_string(), 4, Rule::WallClock),
        ("crates/sim/src/bad.rs".to_string(), 9, Rule::OsThread),
        ("crates/sim/src/bad.rs".to_string(), 13, Rule::NoUnwrap),
        (
            "crates/video/src/raw.rs".to_string(),
            4,
            Rule::SafetyComment,
        ),
    ];
    assert_eq!(got, expected);
}

/// The binary exits nonzero on the fixture tree and prints
/// `path:line: rule-name` diagnostics on stdout.
#[test]
fn binary_exits_nonzero_on_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--root"])
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "crates/sim/src/bad.rs:4: wall-clock:",
        "crates/sim/src/bad.rs:9: os-thread:",
        "crates/sim/src/bad.rs:13: no-unwrap:",
        "crates/video/src/raw.rs:4: safety-comment:",
        "crates/recover/src/lease.rs:3: missing-docs:",
        "crates/recover/src/lease.rs:10: wall-clock:",
        "crates/segment/src/wire.rs:3: missing-docs:",
        "crates/session/src/agent.rs:3: missing-docs:",
        "crates/session/src/agent.rs:10: wall-clock:",
        "crates/atm/src/hot.rs:3: hot-path-alloc:",
        "crates/atm/src/hot.rs:14: hot-path-alloc:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    assert!(
        !stdout.contains("bad.rs:18"),
        "waived wall-clock must not be reported:\n{stdout}"
    );
}

/// The binary exits 0 on the real (clean) workspace.
#[test]
fn binary_exits_zero_on_workspace() {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--root"])
        .arg(&root)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "workspace not clean:\n{stdout}");
}

/// Unknown flags are a usage error (exit 2), not a crash.
#[test]
fn binary_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
