//! End-to-end analyzer tests over the seeded-violation fixture tree, plus
//! clean-workspace and flag-behaviour runs of the real binary.
//!
//! The fixture tree under `tests/fixtures/` mirrors the workspace layout
//! (`crates/<name>/src/*.rs`) so the path-scoped rules apply exactly as
//! they would in the real tree. The walker skips directories named
//! `fixtures`, so these files never pollute a real workspace run.

use std::path::{Path, PathBuf};
use std::process::Command;

use pandora_check::{run_checks, workspace_root, Config, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The golden diagnostic set: every seeded violation at its exact file,
/// line and code, in output order, with nothing extra. The seeded
/// waivers (`bad.rs` wall-clock, `control_leak.rs` probe) and the whole
/// mask-regression fixture `masked_ok.rs` must stay silent.
#[test]
fn fixtures_report_exactly_the_seeded_violations() {
    let diags = run_checks(&fixture_root(), &Config::default()).unwrap();
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| {
            (
                d.path.to_string_lossy().replace('\\', "/"),
                d.line,
                d.rule.code(),
            )
        })
        .collect();
    let expected: Vec<(String, usize, &str)> = [
        ("crates/atm/src/burst_hot.rs", 8, "PC006"),
        ("crates/atm/src/burst_hot.rs", 13, "PC006"),
        ("crates/atm/src/cell.rs", 4, "PC003"),
        ("crates/atm/src/cell.rs", 8, "PC002"),
        ("crates/atm/src/hot.rs", 3, "PC006"),
        ("crates/atm/src/hot.rs", 14, "PC006"),
        ("crates/buffers/src/lib.rs", 3, "PC005"),
        ("crates/buffers/src/lib.rs", 7, "PC004"),
        ("crates/overlay/src/plan.rs", 3, "PC005"),
        ("crates/overlay/src/plan.rs", 10, "PC002"),
        ("crates/overlay/src/plan.rs", 17, "PC003"),
        ("crates/recover/src/lease.rs", 3, "PC005"),
        ("crates/recover/src/lease.rs", 10, "PC002"),
        ("crates/segment/src/wire.rs", 3, "PC005"),
        ("crates/session/src/agent.rs", 3, "PC005"),
        ("crates/session/src/agent.rs", 10, "PC002"),
        ("crates/session/src/proto.rs", 8, "PC101"),
        ("crates/session/src/proto.rs", 9, "PC101"),
        ("crates/session/src/proto.rs", 10, "PC101"),
        ("crates/session/src/proto.rs", 10, "PC101"),
        ("crates/session/src/proto.rs", 33, "PC101"),
        ("crates/sim/src/bad.rs", 4, "PC002"),
        ("crates/sim/src/bad.rs", 9, "PC003"),
        ("crates/sim/src/bad.rs", 13, "PC004"),
        ("crates/sim/src/pipeline.rs", 7, "PC102"),
        ("crates/sim/src/pipeline.rs", 21, "PC102"),
        ("crates/video/src/control_leak.rs", 5, "PC103"),
        ("crates/video/src/control_leak.rs", 9, "PC103"),
        ("crates/video/src/grab_pools.rs", 6, "PC104"),
        ("crates/video/src/grab_pools.rs", 11, "PC104"),
        ("crates/video/src/raw.rs", 4, "PC001"),
    ]
    .into_iter()
    .map(|(p, l, c)| (p.to_string(), l, c))
    .collect();
    assert_eq!(got, expected);
    // The issue's floor: at least 20 seeded findings, with every
    // cross-file rule represented.
    assert!(diags.len() >= 20);
    for rule in [
        Rule::WireExhaustive,
        Rule::ChannelCycle,
        Rule::CommandPath,
        Rule::PoolOrder,
    ] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "rule {rule} never fired on the fixture tree"
        );
    }
}

/// The binary exits nonzero on the fixture tree and prints
/// `path:line: rule-name [PCxxx]` diagnostics on stdout.
#[test]
fn binary_exits_nonzero_on_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--no-baseline", "--root"])
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "crates/sim/src/bad.rs:4: wall-clock [PC002]:",
        "crates/sim/src/bad.rs:9: os-thread [PC003]:",
        "crates/sim/src/bad.rs:13: no-unwrap [PC004]:",
        "crates/video/src/raw.rs:4: safety-comment [PC001]:",
        "crates/segment/src/wire.rs:3: missing-docs [PC005]:",
        "crates/atm/src/hot.rs:3: hot-path-alloc [PC006]:",
        "crates/atm/src/burst_hot.rs:8: hot-path-alloc [PC006]:",
        "crates/atm/src/burst_hot.rs:13: hot-path-alloc [PC006]:",
        "crates/overlay/src/plan.rs:10: wall-clock [PC002]:",
        "crates/overlay/src/plan.rs:17: os-thread [PC003]:",
        "crates/session/src/proto.rs:10: wire-exhaustive [PC101]:",
        "crates/sim/src/pipeline.rs:7: channel-cycle [PC102]:",
        "crates/video/src/control_leak.rs:5: command-path [PC103]:",
        "crates/video/src/grab_pools.rs:6: pool-order [PC104]:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    assert!(
        !stdout.contains("bad.rs:18"),
        "waived wall-clock must not be reported:\n{stdout}"
    );
    assert!(
        !stdout.contains("masked_ok.rs"),
        "mask regression fixture must stay silent:\n{stdout}"
    );
    assert!(
        !stdout.contains("burst_hot.rs:22"),
        "waived burst fan-out copy must not be reported:\n{stdout}"
    );
}

/// `--format json` emits the machine-readable artifact with counts.
#[test]
fn binary_emits_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--no-baseline", "--format", "json", "--root"])
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"total\": 31"), "{stdout}");
    assert!(stdout.contains("\"deny\": 29"), "{stdout}");
    assert!(stdout.contains("\"warn\": 2"), "{stdout}");
    assert!(stdout.contains("\"code\":\"PC102\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"warn\""), "{stdout}");
}

/// A baseline listing every finding turns the exit green; a stale entry
/// is reported on stderr.
#[test]
fn baseline_suppresses_known_findings() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("baseline-run");
    std::fs::create_dir_all(&tmp).unwrap();
    let baseline_path = tmp.join("check.baseline");
    // Generate the baseline from the current findings, then re-run.
    let write = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--write-baseline", "--baseline"])
        .arg(&baseline_path)
        .arg("--root")
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(write.status.code(), Some(0), "{write:?}");
    let rerun = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--baseline"])
        .arg(&baseline_path)
        .arg("--root")
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(
        rerun.status.code(),
        Some(0),
        "baselined run must pass: {rerun:?}"
    );
    let stderr = String::from_utf8_lossy(&rerun.stderr);
    assert!(stderr.contains("0 new"), "{stderr}");
    // A baseline with an extra (fixed) entry reports it as stale.
    let mut text = std::fs::read_to_string(&baseline_path).unwrap();
    text.push_str("PC002 crates/sim/src/gone.rs:1\n");
    std::fs::write(&baseline_path, &text).unwrap();
    let stale = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--baseline"])
        .arg(&baseline_path)
        .arg("--root")
        .arg(fixture_root())
        .output()
        .unwrap();
    assert_eq!(stale.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&stale.stderr);
    assert!(stderr.contains("stale baseline entry"), "{stderr}");
}

/// Warn-severity findings (pool-order) fail only under `--deny-warnings`.
#[test]
fn deny_warnings_escalates_pool_order() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("deny-warn");
    std::fs::create_dir_all(tmp.join("crates/audio/src")).unwrap();
    std::fs::create_dir_all(tmp.join("crates/video/src")).unwrap();
    std::fs::write(
        tmp.join("crates/audio/src/a.rs"),
        "fn f(audio_pool: &P, video_pool: &P) {\n    audio_pool.alloc(1);\n    video_pool.alloc(1);\n}\n",
    )
    .unwrap();
    std::fs::write(
        tmp.join("crates/video/src/b.rs"),
        "fn g(audio_pool: &P, video_pool: &P) {\n    video_pool.alloc(1);\n    audio_pool.alloc(1);\n}\n",
    )
    .unwrap();
    let lenient = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--no-baseline", "--root"])
        .arg(&tmp)
        .output()
        .unwrap();
    assert_eq!(lenient.status.code(), Some(0), "{lenient:?}");
    assert!(String::from_utf8_lossy(&lenient.stdout).contains("[PC104]"));
    let strict = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--no-baseline", "--deny-warnings", "--root"])
        .arg(&tmp)
        .output()
        .unwrap();
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");
}

/// `--explain` prints the rationale for a code and rejects unknown ones.
#[test]
fn explain_prints_rule_rationale() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--explain", "PC101"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wire-exhaustive"), "{stdout}");
    assert!(stdout.contains("decode"), "{stdout}");
    let bad = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--explain", "PC999"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
}

/// The acceptance scenario: deleting one `SessionMsg` decode arm from
/// the real `proto.rs` makes `wire-exhaustive` fire at the enum.
#[test]
fn deleting_a_decode_arm_breaks_wire_exhaustive() {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let proto = std::fs::read_to_string(root.join("crates/session/src/proto.rs")).unwrap();
    assert!(proto.contains("SessionMsg::Pong"), "fixture premise");
    // Drop the `9 => ... Pong` decode arm (and only it).
    let without: String = {
        let mut out = String::new();
        let mut skip = false;
        for line in proto.lines() {
            if line.trim_start().starts_with("9 => ") {
                skip = true;
            }
            if !skip {
                out.push_str(line);
                out.push('\n');
            }
            if skip && line.trim_end().ends_with("),") {
                skip = false;
            }
        }
        out
    };
    assert_ne!(proto, without, "the decode arm was not found");
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("decode-arm-gone");
    std::fs::create_dir_all(tmp.join("crates/session/src")).unwrap();
    std::fs::write(tmp.join("crates/session/src/proto.rs"), &without).unwrap();
    let diags = run_checks(&tmp, &Config::default()).unwrap();
    let wire: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::WireExhaustive && d.message.contains("`Pong`"))
        .collect();
    assert_eq!(wire.len(), 1, "{diags:?}");
    assert!(wire[0].message.contains("no decode arm"));
}

/// The sharded runtime's one sanctioned `thread::spawn` site is waived
/// in place: the waiver must sit on the spawn line itself, it must be
/// the only OS-thread site in the crate, and stripping it re-arms
/// `os-thread` at exactly that line — pinning both the location and the
/// justification.
#[test]
fn shard_worker_spawn_waiver_is_pinned() {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let runtime = std::fs::read_to_string(root.join("crates/shard/src/runtime.rs")).unwrap();
    let spawn_lines: Vec<(usize, &str)> = runtime
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("thread::spawn"))
        .collect();
    assert_eq!(
        spawn_lines.len(),
        1,
        "the shard crate must have exactly one OS-thread site"
    );
    let (idx, line) = spawn_lines[0];
    assert!(
        line.contains("check:allow(os-thread)"),
        "the waiver must sit on the spawn line itself: {line}"
    );
    // Stripping the waiver re-arms PC003 at that exact line.
    let without = runtime.replace("check:allow(os-thread)", "waiver stripped for test");
    assert_ne!(runtime, without);
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("os-thread-waiver");
    std::fs::create_dir_all(tmp.join("crates/shard/src")).unwrap();
    std::fs::write(tmp.join("crates/shard/src/runtime.rs"), &without).unwrap();
    let diags = run_checks(&tmp, &Config::default()).unwrap();
    let hits: Vec<_> = diags.iter().filter(|d| d.rule == Rule::OsThread).collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(
        hits[0].line,
        idx + 1,
        "waiver moved away from the spawn site"
    );
}

/// The intact workspace has zero non-baselined findings: the binary
/// (with the committed baseline) exits 0.
#[test]
fn binary_exits_zero_on_workspace() {
    let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .args(["--deny-warnings", "--root"])
        .arg(&root)
        .current_dir(&root)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "workspace not clean:\n{stdout}");
}

/// Unknown flags are a usage error (exit 2), not a crash.
#[test]
fn binary_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_pandora-check"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
