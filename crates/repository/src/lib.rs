//! # pandora-repository — stream recording and playback
//!
//! The Repository is Pandora's storage peer (§1.1, §2.1, §3.2): it records
//! live streams, rewrites stored audio into the space-efficient 40 ms
//! format ("320 bytes of data plus a new 36 byte header"), and plays
//! recordings back "directly to any Pandora box", synchronising streams
//! recorded together via their stored timestamp offsets.
//!
//! Principle 1 is *reversed* here: "for repositories … the incoming data
//! streams should be recorded as accurately as possible, even if that
//! means degrading streams that are currently being played out. It is a
//! simple matter to play a stream again, but recording one again could
//! present greater difficulties." Recording tasks therefore claim the
//! repository CPU at a higher priority than playback tasks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use pandora_buffers::{Report, ReportClass};
use pandora_segment::{reseg, AudioSegment, Segment, StreamId, REPOSITORY_BLOCKS_PER_SEGMENT};
use pandora_sim::{Cpu, Receiver, Sender, SimDuration, SimTime, Spawner};

/// Identifier of a recording held by the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordingId(pub u64);

/// One stored segment with its arrival time.
#[derive(Debug, Clone)]
pub struct StoredSegment {
    /// When the segment reached the repository (diagnostics only; the
    /// paper's playback is driven by the segment timestamps).
    pub arrival: SimTime,
    /// The segment itself.
    pub segment: Segment,
}

/// A recorded stream.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The stream number the recording was made from.
    pub source_stream: StreamId,
    /// Stored segments, in arrival order.
    pub segments: Vec<StoredSegment>,
    /// The stream's first segment timestamp in ns — the per-stream offset
    /// used to synchronise co-recorded streams at playback.
    pub timestamp_offset: u64,
}

impl Recording {
    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total stored bytes (wire format).
    pub fn stored_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.segment.wire_bytes()).sum()
    }

    /// The audio segments, if this is an audio recording.
    pub fn audio_segments(&self) -> Vec<AudioSegment> {
        self.segments
            .iter()
            .filter_map(|s| s.segment.as_audio().cloned())
            .collect()
    }
}

/// CPU cost calibration for the repository.
#[derive(Debug, Clone, Copy)]
pub struct RepositoryCosts {
    /// Cost to commit one segment to storage.
    pub record_per_segment: SimDuration,
    /// Cost to fetch and despatch one segment at playback.
    pub playback_per_segment: SimDuration,
}

impl Default for RepositoryCosts {
    fn default() -> Self {
        RepositoryCosts {
            record_per_segment: SimDuration::from_micros(150),
            playback_per_segment: SimDuration::from_micros(150),
        }
    }
}

/// Priority of recording claims (reversed Principle 1: above playback).
const PRIO_RECORD: pandora_sim::ClaimPriority = 14;
/// Priority of playback claims.
const PRIO_PLAYBACK: pandora_sim::ClaimPriority = 6;

struct RepoInner {
    recordings: RefCell<HashMap<RecordingId, Recording>>,
    next_id: Cell<u64>,
    cpu: Cpu,
    costs: RepositoryCosts,
    reports: Sender<Report>,
    dropped_playback: Cell<u64>,
}

/// The repository itself. Cloneable handle.
#[derive(Clone)]
pub struct Repository {
    inner: Rc<RepoInner>,
    spawner: Spawner,
}

/// Handle to a recording in progress.
#[derive(Clone)]
pub struct RecorderHandle {
    id: RecordingId,
    stop: Rc<Cell<bool>>,
    recorded: Rc<Cell<u64>>,
}

impl RecorderHandle {
    /// The recording being written.
    pub fn id(&self) -> RecordingId {
        self.id
    }

    /// Stops recording (the recorder drains and exits).
    pub fn stop(&self) {
        self.stop.set(true);
    }

    /// Segments committed so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }
}

impl Repository {
    /// Creates a repository with its own CPU.
    pub fn new(
        spawner: &Spawner,
        name: &str,
        costs: RepositoryCosts,
        reports: Sender<Report>,
    ) -> Self {
        Repository {
            inner: Rc::new(RepoInner {
                recordings: RefCell::new(HashMap::new()),
                next_id: Cell::new(1),
                cpu: Cpu::new(&format!("repo:{name}"), SimDuration::from_nanos(700)),
                costs,
                reports,
                dropped_playback: Cell::new(0),
            }),
            spawner: spawner.clone(),
        }
    }

    /// The repository CPU (shared by recorders and players).
    pub fn cpu(&self) -> Cpu {
        self.inner.cpu.clone()
    }

    /// Starts recording every segment arriving on `input` for `stream`.
    ///
    /// Segments for other streams on the channel are ignored. Recording
    /// claims run at high priority: under CPU contention, playback yields
    /// (reversed Principle 1).
    pub fn record(&self, input: Receiver<(StreamId, Segment)>, stream: StreamId) -> RecorderHandle {
        let id = RecordingId(self.inner.next_id.get());
        self.inner.next_id.set(id.0 + 1);
        self.inner.recordings.borrow_mut().insert(
            id,
            Recording {
                source_stream: stream,
                segments: Vec::new(),
                timestamp_offset: 0,
            },
        );
        let handle = RecorderHandle {
            id,
            stop: Rc::new(Cell::new(false)),
            recorded: Rc::new(Cell::new(0)),
        };
        let h = handle.clone();
        let inner = self.inner.clone();
        self.spawner
            .spawn(&format!("repo-record:{}", id.0), async move {
                while !h.stop.get() {
                    let Ok((sid, segment)) = input.recv().await else {
                        return;
                    };
                    if sid != stream {
                        continue;
                    }
                    inner
                        .cpu
                        .claim_prio(inner.costs.record_per_segment, PRIO_RECORD)
                        .await;
                    let arrival = pandora_sim::now();
                    let mut recs = inner.recordings.borrow_mut();
                    let rec = recs.get_mut(&id).expect("recording exists");
                    if rec.segments.is_empty() {
                        rec.timestamp_offset = segment.common().timestamp.as_nanos();
                    }
                    rec.segments.push(StoredSegment { arrival, segment });
                    h.recorded.set(h.recorded.get() + 1);
                }
            });
        handle
    }

    /// A snapshot of a recording.
    pub fn get(&self, id: RecordingId) -> Option<Recording> {
        self.inner.recordings.borrow().get(&id).cloned()
    }

    /// Rewrites an audio recording into the 40 ms repository format as a
    /// new recording ("this is done as a separate operation after the
    /// stream has been recorded", §3.2). Returns the new id.
    ///
    /// Returns `None` if the recording does not exist or holds no audio.
    pub fn resegment(&self, id: RecordingId) -> Option<RecordingId> {
        let (source_stream, audio, offset) = {
            let recs = self.inner.recordings.borrow();
            let rec = recs.get(&id)?;
            (
                rec.source_stream,
                rec.audio_segments(),
                rec.timestamp_offset,
            )
        };
        if audio.is_empty() {
            return None;
        }
        let repo_format = reseg::to_repository_format(&audio);
        let new_id = RecordingId(self.inner.next_id.get());
        self.inner.next_id.set(new_id.0 + 1);
        let segments = repo_format
            .into_iter()
            .map(|a| StoredSegment {
                arrival: SimTime::ZERO,
                segment: Segment::Audio(a),
            })
            .collect();
        self.inner.recordings.borrow_mut().insert(
            new_id,
            Recording {
                source_stream,
                segments,
                timestamp_offset: offset,
            },
        );
        Some(new_id)
    }

    /// Plays a recording into `out` as `dest_stream`, pacing segments by
    /// their timestamps. `offset_base` subtracts a common base so that
    /// several co-recorded streams started together stay in sync:
    /// pass the minimum of their `timestamp_offset`s.
    ///
    /// Playback claims the repository CPU at low priority; when the CPU
    /// cannot keep up (recordings in progress), playback despatch slips
    /// and late segments are *dropped* (counted), not accumulated — the
    /// degradation the reversed Principle 1 prescribes.
    pub fn playback(
        &self,
        id: RecordingId,
        dest_stream: StreamId,
        out: Sender<(StreamId, Segment)>,
        offset_base: u64,
    ) -> Option<()> {
        let rec = self.get(id)?;
        let inner = self.inner.clone();
        self.spawner
            .spawn(&format!("repo-playback:{}", id.0), async move {
                let start = pandora_sim::now();
                let first_ts = rec.timestamp_offset;
                for stored in &rec.segments {
                    let ts = stored.segment.common().timestamp.as_nanos();
                    let due = start
                        + SimDuration(ts.saturating_sub(first_ts))
                        + SimDuration(first_ts.saturating_sub(offset_base));
                    pandora_sim::delay_until(due).await;
                    inner
                        .cpu
                        .claim_prio(inner.costs.playback_per_segment, PRIO_PLAYBACK)
                        .await;
                    let now = pandora_sim::now();
                    // More than one segment-duration late: skip it.
                    let lateness = now.as_nanos().saturating_sub(due.as_nanos());
                    let seg_duration = match stored.segment.as_audio() {
                        Some(a) => a.duration_nanos().max(4_000_000),
                        None => 40_000_000,
                    };
                    if lateness > seg_duration {
                        inner.dropped_playback.set(inner.dropped_playback.get() + 1);
                        let _ = inner
                            .reports
                            .send(Report::new(
                                now,
                                "repo-playback",
                                ReportClass::Overload,
                                format!(
                                    "playback of {dest_stream} degraded (late by {lateness}ns)"
                                ),
                            ))
                            .await;
                        continue;
                    }
                    let mut segment = stored.segment.clone();
                    segment.common_mut().timestamp =
                        pandora_segment::Timestamp::from_nanos(now.as_nanos());
                    if out.send((dest_stream, segment)).await.is_err() {
                        return;
                    }
                }
            });
        Some(())
    }

    /// Plays several recordings together, aligned on their recorded
    /// timestamp offsets (the paper's same-repository synchronisation).
    pub fn playback_synced(
        &self,
        plays: Vec<(RecordingId, StreamId)>,
        out: Sender<(StreamId, Segment)>,
    ) -> Option<()> {
        let base = plays
            .iter()
            .filter_map(|(id, _)| self.get(*id).map(|r| r.timestamp_offset))
            .min()?;
        for (id, stream) in plays {
            self.playback(id, stream, out.clone(), base)?;
        }
        Some(())
    }

    /// Segments dropped from playback under contention.
    pub fn dropped_playback(&self) -> u64 {
        self.inner.dropped_playback.get()
    }

    /// Number of recordings held.
    pub fn recording_count(&self) -> usize {
        self.inner.recordings.borrow().len()
    }

    /// Storage saving factor of the 40 ms format vs a live recording:
    /// `1 - repo_bytes / live_bytes`.
    pub fn resegmentation_saving(&self, live: RecordingId, repo: RecordingId) -> Option<f64> {
        let a = self.get(live)?.stored_bytes() as f64;
        let b = self.get(repo)?.stored_bytes() as f64;
        if a == 0.0 {
            return None;
        }
        Some(1.0 - b / a)
    }
}

/// Plays recordings held by *different* repositories together, aligned on
/// their absolute timestamps — the paper's GPS future-work mode (§3.2):
/// "they will be synchronised to a global time standard: GPS time … this
/// will release us from the present requirement that streams to be
/// synchronised during playback must have been recorded on the same
/// repository."
///
/// Requires the recording boxes' clocks to be GPS-disciplined (drift-free
/// against the global clock); with free-running crystals the offsets are
/// incomparable, which is exactly why the paper needed the same-repository
/// restriction before GPS.
pub fn playback_synced_global(
    plays: Vec<(&Repository, RecordingId, StreamId)>,
    out: Sender<(StreamId, Segment)>,
) -> Option<()> {
    let base = plays
        .iter()
        .filter_map(|(repo, id, _)| repo.get(*id).map(|r| r.timestamp_offset))
        .min()?;
    for (repo, id, stream) in plays {
        repo.playback(id, stream, out.clone(), base)?;
    }
    Some(())
}

/// Checks a repository-format audio recording's invariants: every segment
/// but the last holds exactly 20 blocks with a 36-byte header.
pub fn is_repository_format(rec: &Recording) -> bool {
    let audio = rec.audio_segments();
    if audio.is_empty() {
        return false;
    }
    audio
        .iter()
        .take(audio.len() - 1)
        .all(|s| s.block_count() == REPOSITORY_BLOCKS_PER_SEGMENT)
        && audio.iter().all(|s| s.wire_bytes() == s.data.len() + 36)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_segment::{SequenceNumber, Timestamp, BLOCK_DURATION_NANOS};
    use pandora_sim::{channel, unbounded, Simulation};

    fn live_audio_stream(n_segments: u32) -> Vec<Segment> {
        (0..n_segments)
            .map(|i| {
                Segment::Audio(AudioSegment::from_blocks(
                    SequenceNumber(i),
                    Timestamp::from_nanos(i as u64 * 2 * BLOCK_DURATION_NANOS),
                    vec![i as u8; 32],
                ))
            })
            .collect()
    }

    fn rig() -> (Simulation, Repository) {
        let sim = Simulation::new();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let repo = Repository::new(&sim.spawner(), "r", RepositoryCosts::default(), rep_tx);
        (sim, repo)
    }

    #[test]
    fn records_stream_segments() {
        let (mut sim, repo) = rig();
        let (tx, rx) = channel::<(StreamId, Segment)>();
        let handle = repo.record(rx, StreamId(5));
        sim.spawn("feed", async move {
            for seg in live_audio_stream(10) {
                tx.send((StreamId(5), seg)).await.unwrap();
                // Interleave a foreign stream: must be ignored.
                tx.send((StreamId(9), live_audio_stream(1).remove(0)))
                    .await
                    .unwrap();
            }
        });
        sim.run_until_idle();
        assert_eq!(handle.recorded(), 10);
        let rec = repo.get(handle.id()).unwrap();
        assert_eq!(rec.len(), 10);
        assert_eq!(rec.source_stream, StreamId(5));
        assert_eq!(rec.timestamp_offset, 0);
        assert!(!rec.is_empty());
    }

    #[test]
    fn resegment_produces_40ms_format() {
        let (mut sim, repo) = rig();
        let (tx, rx) = channel::<(StreamId, Segment)>();
        let handle = repo.record(rx, StreamId(1));
        sim.spawn("feed", async move {
            for seg in live_audio_stream(40) {
                tx.send((StreamId(1), seg)).await.unwrap();
            }
        });
        sim.run_until_idle();
        let repo_id = repo.resegment(handle.id()).expect("resegment");
        let rec = repo.get(repo_id).unwrap();
        assert!(is_repository_format(&rec));
        // 40 segments x 2 blocks = 80 blocks = 4 repository segments.
        assert_eq!(rec.len(), 4);
        // Byte-identical audio.
        let live: Vec<u8> = repo
            .get(handle.id())
            .unwrap()
            .audio_segments()
            .iter()
            .flat_map(|s| s.data.clone())
            .collect();
        let reseg: Vec<u8> = rec
            .audio_segments()
            .iter()
            .flat_map(|s| s.data.clone())
            .collect();
        assert_eq!(live, reseg);
        let saving = repo.resegmentation_saving(handle.id(), repo_id).unwrap();
        assert!(saving > 0.45, "saving {saving}");
        assert_eq!(repo.recording_count(), 2);
    }

    #[test]
    fn playback_paces_by_timestamps() {
        let (mut sim, repo) = rig();
        let (tx, rx) = channel::<(StreamId, Segment)>();
        let handle = repo.record(rx, StreamId(1));
        sim.spawn("feed", async move {
            for seg in live_audio_stream(25) {
                tx.send((StreamId(1), seg)).await.unwrap();
            }
        });
        sim.run_until_idle();
        let (out_tx, out_rx) = channel::<(StreamId, Segment)>();
        repo.playback(handle.id(), StreamId(77), out_tx, 0).unwrap();
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("sink", async move {
            while let Ok((sid, _seg)) = out_rx.recv().await {
                assert_eq!(sid, StreamId(77));
                t.borrow_mut().push(pandora_sim::now().as_millis());
            }
        });
        sim.run_until_idle();
        let times = times.borrow();
        assert_eq!(times.len(), 25);
        // 4ms pacing between 2-block segments (±1ms for CPU costs and the
        // 64us timestamp quantisation).
        for w in times.windows(2) {
            let d = w[1] - w[0];
            assert!((3..=5).contains(&d), "gap {d}ms");
        }
    }

    #[test]
    fn synced_playback_aligns_offsets() {
        let (mut sim, repo) = rig();
        // Two streams recorded together, the second starting 20ms later.
        let (tx, rx) = channel::<(StreamId, Segment)>();
        let (tx2, rx2) = channel::<(StreamId, Segment)>();
        let h1 = repo.record(rx, StreamId(1));
        let h2 = repo.record(rx2, StreamId(2));
        sim.spawn("feed", async move {
            for (i, seg) in live_audio_stream(10).into_iter().enumerate() {
                tx.send((StreamId(1), seg.clone())).await.unwrap();
                if i >= 5 {
                    tx2.send((StreamId(2), seg)).await.unwrap();
                }
            }
        });
        sim.run_until_idle();
        let (out_tx, out_rx) = channel::<(StreamId, Segment)>();
        repo.playback_synced(
            vec![(h1.id(), StreamId(10)), (h2.id(), StreamId(20))],
            out_tx,
        )
        .unwrap();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let a = arrivals.clone();
        sim.spawn("sink", async move {
            while let Ok((sid, _)) = out_rx.recv().await {
                a.borrow_mut().push((sid, pandora_sim::now().as_millis()));
            }
        });
        sim.run_until_idle();
        let arrivals = arrivals.borrow();
        let s1_first = arrivals.iter().find(|(s, _)| *s == StreamId(10)).unwrap().1;
        let s2_first = arrivals.iter().find(|(s, _)| *s == StreamId(20)).unwrap().1;
        // Stream 2 starts ~20ms after stream 1, preserving the recorded
        // relative timing.
        let gap = s2_first as i64 - s1_first as i64;
        assert!((18..=22).contains(&gap), "gap {gap}ms");
    }

    #[test]
    fn recording_beats_playback_under_contention() {
        // Reversed Principle 1: saturate the repository CPU with both a
        // recording and playbacks; the recording must stay lossless while
        // playback degrades.
        let mut sim = Simulation::new();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        // An expensive repository so contention is real.
        let costs = RepositoryCosts {
            record_per_segment: SimDuration::from_millis(2),
            playback_per_segment: SimDuration::from_millis(2),
        };
        let repo = Repository::new(&sim.spawner(), "slow", costs, rep_tx);
        // Pre-load a recording to play back.
        let (tx0, rx0) = channel::<(StreamId, Segment)>();
        let h0 = repo.record(rx0, StreamId(1));
        sim.spawn("preload", async move {
            for seg in live_audio_stream(200) {
                tx0.send((StreamId(1), seg)).await.unwrap();
            }
        });
        sim.run_until_idle();
        h0.stop();
        // Now record a live stream while playing back two copies.
        let (tx, rx) = channel::<(StreamId, Segment)>();
        let h1 = repo.record(rx, StreamId(2));
        sim.spawn("live", async move {
            for (i, seg) in live_audio_stream(100).into_iter().enumerate() {
                pandora_sim::delay_until(SimTime::from_nanos(
                    (i as u64 + 1) * 2 * BLOCK_DURATION_NANOS,
                ))
                .await;
                tx.send((StreamId(2), seg)).await.unwrap();
            }
        });
        let (out_tx, out_rx) = channel::<(StreamId, Segment)>();
        repo.playback(h0.id(), StreamId(30), out_tx.clone(), 0)
            .unwrap();
        repo.playback(h0.id(), StreamId(31), out_tx, 0).unwrap();
        sim.spawn("sink", async move { while out_rx.recv().await.is_ok() {} });
        sim.run_until_idle();
        // Everything offered to the recorder was committed.
        assert_eq!(h1.recorded(), 100, "recording lost data under load");
        // Playback was degraded instead.
        assert!(repo.dropped_playback() > 0, "playback never degraded");
    }

    #[test]
    fn gps_mode_syncs_across_repositories() {
        // Two separate repositories record streams whose timestamps come
        // from the same (GPS-disciplined) clock, 30ms apart; global
        // playback preserves the relative timing — impossible with the
        // per-repository offsets alone.
        let mut sim = Simulation::new();
        let (rep_tx, _r) = unbounded::<Report>();
        let repo_a = Repository::new(
            &sim.spawner(),
            "a",
            RepositoryCosts::default(),
            rep_tx.clone(),
        );
        let repo_b = Repository::new(&sim.spawner(), "b", RepositoryCosts::default(), rep_tx);
        let (tx_a, rx_a) = channel::<(StreamId, Segment)>();
        let (tx_b, rx_b) = channel::<(StreamId, Segment)>();
        let ha = repo_a.record(rx_a, StreamId(1));
        let hb = repo_b.record(rx_b, StreamId(2));
        sim.spawn("feed", async move {
            for (i, seg) in live_audio_stream(10).into_iter().enumerate() {
                tx_a.send((StreamId(1), seg.clone())).await.unwrap();
                if i >= 7 {
                    // Stream at repo B starts 7 segments (28ms) later.
                    tx_b.send((StreamId(2), seg)).await.unwrap();
                }
            }
        });
        sim.run_until_idle();
        let (out_tx, out_rx) = channel::<(StreamId, Segment)>();
        playback_synced_global(
            vec![
                (&repo_a, ha.id(), StreamId(10)),
                (&repo_b, hb.id(), StreamId(20)),
            ],
            out_tx,
        )
        .unwrap();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let a = arrivals.clone();
        sim.spawn("sink", async move {
            while let Ok((sid, _)) = out_rx.recv().await {
                a.borrow_mut().push((sid, pandora_sim::now().as_millis()));
            }
        });
        sim.run_until_idle();
        let arrivals = arrivals.borrow();
        let first_a = arrivals.iter().find(|(s, _)| *s == StreamId(10)).unwrap().1;
        let first_b = arrivals.iter().find(|(s, _)| *s == StreamId(20)).unwrap().1;
        let gap = first_b as i64 - first_a as i64;
        assert!((26..=30).contains(&gap), "gap {gap}ms");
    }

    #[test]
    fn resegment_missing_returns_none() {
        let (_sim, repo) = rig();
        assert!(repo.resegment(RecordingId(99)).is_none());
    }
}
