//! Conference control-plane integration: call setup, seeded membership
//! churn (P6: no playback gaps at bystanders), admission under
//! deliberate overload, byte-identical replay, and signalling liveness
//! under link flaps (P4).

use std::cell::Cell as StdCell;
use std::rc::Rc;

use pandora_audio::gen::Speech;
use pandora_faults::{install, FaultKind, FaultPlan, FaultTargets};
use pandora_session::{
    Capabilities, ControllerConfig, SessionError, Star, StarConfig, StreamClass,
};
use pandora_sim::{SimDuration, SimTime, Simulation};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn call_setup_streams_audio_then_tears_down() {
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        3,
        StarConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let mic = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let controller = star.controller.clone();
    let (src, dst) = (star.nodes[0].endpoint, star.nodes[1].endpoint);
    let done = Rc::new(StdCell::new(false));
    let d = done.clone();
    sim.spawn("driver", async move {
        let session = controller.open(src, mic, StreamClass::Audio).unwrap();
        let admitted = controller.add_listener(session, dst).await.unwrap();
        assert_eq!(admitted.rate_permille, 1000, "audio never degraded");
        pandora_sim::delay(SimDuration::from_secs(2)).await;
        controller.remove_listener(session, dst).await.unwrap();
        controller.close(session).await.unwrap();
        assert_eq!(controller.listeners(session), 0);
        d.set(true);
    });
    sim.run_until(SimTime::from_secs(3));
    assert!(done.get(), "driver did not finish");
    let listener = &star.nodes[1];
    assert!(
        listener.boxy.speaker.segments_received() > 50,
        "audio did not flow: {} segments",
        listener.boxy.speaker.segments_received()
    );
    assert_eq!(listener.boxy.speaker.segments_lost(), 0);
    assert_eq!(listener.boxy.speaker.late_ticks(), 0);
    assert_eq!(star.controller.setups(), 1);
    assert_eq!(star.controller.reconfigs(), 1, "the teardown reconfigured");
    // Teardown refunded the admission charge.
    assert_eq!(listener.agent.active_sinks(), 0);
    assert!(listener.agent.handled() >= 2, "OpenSink and CloseSink");
}

/// Outcome of one seeded churn run, for assertions and replay equality.
struct ChurnOutcome {
    digest: String,
    node_report: Vec<String>,
    reconfigs: u64,
    rejections: u64,
    late_total: u64,
    lost_total: u64,
    anchor_received: u64,
}

/// Two speakers (node0, node1), an anchor listener (node2) joined to
/// both for the whole run, and nodes 3.. joining/leaving either session
/// on a seeded schedule, one operation per `step`.
fn run_churn(boxes: usize, steps: u64, step: SimDuration, seed: u64) -> ChurnOutcome {
    assert!(boxes >= 4, "need two speakers, an anchor and churners");
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        boxes,
        StarConfig {
            seed,
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let mic1 = star.nodes[1]
        .boxy
        .start_audio_source(Box::new(Speech::new(2)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let controller = star.controller.clone();
    let done = Rc::new(StdCell::new(false));
    let d = done.clone();
    sim.spawn("churn", async move {
        let s0 = controller
            .open(endpoints[0], mic0, StreamClass::Audio)
            .unwrap();
        let s1 = controller
            .open(endpoints[1], mic1, StreamClass::Audio)
            .unwrap();
        controller.add_listener(s0, endpoints[2]).await.unwrap();
        controller.add_listener(s1, endpoints[2]).await.unwrap();
        let mut rng = seed | 1;
        let mut joined = vec![[false; 2]; boxes];
        for _ in 0..steps {
            pandora_sim::delay(step).await;
            let r = xorshift(&mut rng);
            let node = 3 + (r as usize % (boxes - 3));
            let si = ((r >> 8) & 1) as usize;
            let sess = if si == 0 { s0 } else { s1 };
            if joined[node][si] {
                controller
                    .remove_listener(sess, endpoints[node])
                    .await
                    .unwrap();
                joined[node][si] = false;
            } else {
                match controller.add_listener(sess, endpoints[node]).await {
                    Ok(_) => joined[node][si] = true,
                    Err(SessionError::Rejected(_)) => {}
                    Err(e) => panic!("churn operation failed: {e:?}"),
                }
            }
        }
        d.set(true);
    });
    let horizon = SimDuration(step.as_nanos() * steps) + SimDuration::from_secs(1);
    sim.run_until(SimTime::ZERO + horizon);
    assert!(done.get(), "churn driver did not finish");
    let node_report = star
        .nodes
        .iter()
        .map(|n| {
            format!(
                "recv={} lost={} late={} handled={} sinks={}",
                n.boxy.speaker.segments_received(),
                n.boxy.speaker.segments_lost(),
                n.boxy.speaker.late_ticks(),
                n.agent.handled(),
                n.agent.active_sinks(),
            )
        })
        .collect();
    ChurnOutcome {
        digest: star.controller.digest(),
        node_report,
        reconfigs: star.controller.reconfigs(),
        rejections: star.controller.rejections(),
        late_total: star.nodes.iter().map(|n| n.boxy.speaker.late_ticks()).sum(),
        lost_total: star
            .nodes
            .iter()
            .map(|n| n.boxy.speaker.segments_lost())
            .sum(),
        anchor_received: star.nodes[2].boxy.speaker.segments_received(),
    }
}

/// The acceptance soak: a 16-box conference churning for 10k one-ms sim
/// ticks. Every reconfiguration must leave every member's playback
/// untouched: zero lost segments, zero late mix ticks anywhere (P6).
#[test]
fn churn_soak_sixteen_boxes_glitch_free() {
    let out = run_churn(16, 1_000, SimDuration::from_millis(10), 0xC0FFEE);
    println!(
        "soak: {} | anchor heard {} segments, {} late / {} lost across 16 boxes",
        out.digest, out.anchor_received, out.late_total, out.lost_total
    );
    assert!(
        out.reconfigs > 300,
        "not enough churn to count as a soak: {} reconfigs",
        out.reconfigs
    );
    assert_eq!(out.rejections, 0, "budgets were sized to fit");
    assert_eq!(
        out.late_total, 0,
        "playback glitched during reconfiguration"
    );
    assert_eq!(out.lost_total, 0, "segments lost during reconfiguration");
    assert!(
        out.anchor_received > 1_000,
        "anchor heard only {} segments",
        out.anchor_received
    );
}

/// Same seed, same history — the whole conference, control plane
/// included, replays identically.
#[test]
fn churn_replays_byte_identically() {
    let a = run_churn(5, 60, SimDuration::from_millis(20), 7);
    let b = run_churn(5, 60, SimDuration::from_millis(20), 7);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.node_report, b.node_report);
    // And a different seed actually changes the history.
    let c = run_churn(5, 60, SimDuration::from_millis(20), 8);
    assert_ne!(a.digest, c.digest);
}

/// Deliberate overload: tiny budgets make admission refuse (sink budget
/// downstream, link budget upstream) while the admitted stream keeps
/// playing cleanly — reject, never oversubscribe.
#[test]
fn admission_rejects_overload_and_rolls_back() {
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        4,
        StarConfig {
            seed: 9,
            caps: Capabilities {
                audio_sinks_max: 1,
                video_sinks_max: 1,
                link_cps: 1_200,
            },
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let mic1 = star.nodes[1]
        .boxy
        .start_audio_source(Box::new(Speech::new(2)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let controller = star.controller.clone();
    let done = Rc::new(StdCell::new(false));
    let d = done.clone();
    sim.spawn("driver", async move {
        let s0 = controller
            .open(endpoints[0], mic0, StreamClass::Audio)
            .unwrap();
        let s1 = controller
            .open(endpoints[1], mic1, StreamClass::Audio)
            .unwrap();
        // node0's transmit budget (1200 cps) fits two 500-cps copies.
        controller.add_listener(s0, endpoints[1]).await.unwrap();
        controller.add_listener(s0, endpoints[2]).await.unwrap();
        // The third copy busts the source's link budget; the sink opened
        // downstream for it must be rolled back.
        let e = controller.add_listener(s0, endpoints[3]).await.unwrap_err();
        assert!(matches!(e, SessionError::Rejected(_)), "{e:?}");
        // node2 already sinks one audio stream and its budget is one.
        let e = controller.add_listener(s1, endpoints[2]).await.unwrap_err();
        assert!(matches!(e, SessionError::Rejected(_)), "{e:?}");
        pandora_sim::delay(SimDuration::from_secs(1)).await;
        d.set(true);
    });
    sim.run_until(SimTime::from_secs(2));
    assert!(done.get(), "driver did not finish");
    assert_eq!(star.controller.rejections(), 2);
    // The rolled-back sink left no state behind at node3.
    assert_eq!(star.nodes[3].agent.active_sinks(), 0);
    assert_eq!(star.nodes[3].boxy.speaker.segments_received(), 0);
    // The admitted streams kept playing cleanly through the rejections.
    for i in [1, 2] {
        assert!(star.nodes[i].boxy.speaker.segments_received() > 50);
        assert_eq!(star.nodes[i].boxy.speaker.segments_lost(), 0);
        assert_eq!(star.nodes[i].boxy.speaker.late_ticks(), 0);
    }
}

/// P4: signalling rides the command path and stays live across link
/// flaps — a setup issued while the member's attachment is down times
/// out, retries, and completes once the link returns.
#[test]
fn signalling_survives_link_flap() {
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        3,
        StarConfig {
            seed: 5,
            controller: ControllerConfig {
                reply_timeout: SimDuration::from_millis(200),
                retries: 5,
                ..ControllerConfig::default()
            },
            ..Default::default()
        },
    );
    let mut targets = FaultTargets::new();
    for (name, ctrl) in star.path_controls() {
        targets.register_path(name, ctrl.clone());
    }
    // node1's attachment flaps: down at 50ms, back at 650ms — longer
    // than the reply timeout, so the first attempts must expire.
    let plan = FaultPlan::scripted(vec![])
        .event(
            SimDuration::from_millis(50),
            Some(SimDuration::from_millis(600)),
            FaultKind::LinkDown {
                path: "node1.ab".to_string(),
                hop: 0,
            },
        )
        .event(
            SimDuration::from_millis(50),
            Some(SimDuration::from_millis(600)),
            FaultKind::LinkDown {
                path: "node1.ba".to_string(),
                hop: 0,
            },
        );
    let _trace = install(&sim.spawner(), &plan, &targets);
    let mic = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let controller = star.controller.clone();
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let done = Rc::new(StdCell::new(false));
    let d = done.clone();
    sim.spawn("driver", async move {
        let session = controller
            .open(endpoints[0], mic, StreamClass::Audio)
            .unwrap();
        pandora_sim::delay(SimDuration::from_millis(100)).await;
        // Issued mid-flap: must eventually succeed, not error out.
        controller
            .add_listener(session, endpoints[1])
            .await
            .unwrap();
        pandora_sim::delay(SimDuration::from_secs(1)).await;
        d.set(true);
    });
    sim.run_until(SimTime::from_secs(3));
    assert!(done.get(), "setup never completed across the flap");
    assert!(
        star.controller.timeouts() >= 1,
        "flap outlasted the timeout, yet nothing expired"
    );
    assert!(
        star.nodes[1].boxy.speaker.segments_received() > 50,
        "audio did not flow after the flap: {}",
        star.nodes[1].boxy.speaker.segments_received()
    );
    assert_eq!(star.nodes[1].boxy.speaker.late_ticks(), 0);
}
