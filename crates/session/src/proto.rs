//! The signalling protocol (SessionRequest/Accept/Reject/Modify/Teardown).
//!
//! Control messages are serialized into [`TestSegment`] payloads tagged
//! with a magic prefix, carried on streams of
//! [`pandora::StreamKind::Control`]. They therefore travel exactly like
//! media — over the same links, switches and decoupling buffers — but are
//! never starved: every switch takes them via its PRI-ALT command-first
//! loop (Principle 4) and toward the network they share the audio
//! priority queue (Principle 2 protects signalling as a side effect).
//!
//! The wire layout is a fixed 29 bytes inside the segment payload:
//! `magic(4) kind(1) txn(4) session(4) a(4) b(4) c(4) d(4)`, all
//! big-endian. Idempotency is the receiver's job (see
//! [`crate::control`]): a retried request with a fresh transaction id
//! must not double-apply.

use pandora_atm::Vci;
use pandora_segment::{Segment, SequenceNumber, StreamId, TestSegment, Timestamp};

/// Prefix identifying a control payload inside a test segment.
pub const CONTROL_MAGIC: [u8; 4] = *b"PSC1";

/// Total encoded length of a control message payload.
pub const CONTROL_BYTES: usize = 29;

/// Why an admission request was refused.
// check:wire-enum: reason codes cross the wire in Reject; a code
// without a decode arm would surface as a protocol error at the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The endpoint is at its sink capacity for the stream class
    /// (e.g. the audio transputer's three full-processing streams, §4.2).
    SinkBudget,
    /// The endpoint's ATM attachment has no spare cell bandwidth, even
    /// after degrading the request as far as allowed.
    LinkBudget,
}

impl RejectReason {
    fn code(self) -> u32 {
        match self {
            RejectReason::SinkBudget => 1,
            RejectReason::LinkBudget => 2,
        }
    }

    fn from_code(c: u32) -> Option<RejectReason> {
        match c {
            1 => Some(RejectReason::SinkBudget),
            2 => Some(RejectReason::LinkBudget),
            _ => None,
        }
    }
}

/// The class of stream a request concerns, with the requested quality.
// check:wire-enum: class tags ride in every control message; encode and
// decode must cover each class or admission breaks asymmetrically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// 2-block µ-law audio (68-byte segments every 4 ms). Audio is never
    /// degraded (Principle 2): it is admitted whole or rejected.
    Audio,
    /// Video at `rate_permille` thousandths of the full capture rate.
    /// Video degrades by rate reduction before any rejection
    /// (Principles 1–3: the cheap, low-priority traffic gives way first).
    Video {
        /// Requested (or granted) rate in thousandths of full rate.
        rate_permille: u32,
    },
}

impl StreamClass {
    /// Estimated steady-state cell bandwidth of the class, in cells/sec.
    ///
    /// Audio: 68-byte segments every 4 ms → 2 cells per segment → 500
    /// cells/sec. Video: a 128×96 DPCM window at full rate is ~2600
    /// cells/sec, scaled by the rate fraction. These are admission
    /// estimates, not enforcement — the data plane still polices itself
    /// by Principles 1–3 under transient overload.
    pub fn demand_cps(&self) -> u64 {
        match *self {
            StreamClass::Audio => 500,
            StreamClass::Video { rate_permille } => 2_600 * u64::from(rate_permille) / 1_000,
        }
    }

    /// The granted rate field carried on the wire (1000 for audio).
    pub fn rate_permille(&self) -> u32 {
        match *self {
            StreamClass::Audio => 1_000,
            StreamClass::Video { rate_permille } => rate_permille,
        }
    }

    fn tag(&self) -> u32 {
        match self {
            StreamClass::Audio => 1,
            StreamClass::Video { .. } => 2,
        }
    }

    fn from_parts(tag: u32, rate: u32) -> Option<StreamClass> {
        match tag {
            1 => Some(StreamClass::Audio),
            2 => Some(StreamClass::Video {
                rate_permille: rate,
            }),
            _ => None,
        }
    }
}

/// A control-plane message. `txn` matches replies to requests; `session`
/// is the controller's conference/stream identifier.
// check:wire-enum: each kind code (1..=9) must have an encode arm and a
// literal-pattern decode arm, or a peer's message is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMsg {
    /// Request: admit and install a sink for a stream arriving on `vci`
    /// at the receiving endpoint (SessionRequest).
    OpenSink {
        /// Transaction id.
        txn: u32,
        /// Session id.
        session: u32,
        /// Stream class and requested quality.
        class: StreamClass,
        /// The VCI the stream will arrive on.
        vci: Vci,
    },
    /// Reply: sink admitted (possibly degraded to `rate_permille`).
    Accept {
        /// Transaction id (echoes the request).
        txn: u32,
        /// Session id.
        session: u32,
        /// The admitted sink VCI.
        vci: Vci,
        /// Granted rate (≤ requested for degraded video).
        rate_permille: u32,
    },
    /// Reply: sink refused.
    Reject {
        /// Transaction id (echoes the request).
        txn: u32,
        /// Session id.
        session: u32,
        /// Why admission refused.
        reason: RejectReason,
    },
    /// Request: add a network destination to a live source stream
    /// (Modify — the upstream half of growing a split, Principle 6).
    AddDest {
        /// Transaction id.
        txn: u32,
        /// Session id.
        session: u32,
        /// The source box's local stream.
        stream: StreamId,
        /// The destination VCI to add.
        vci: Vci,
        /// Stream class (for the source's transmit-budget charge).
        class: StreamClass,
    },
    /// Request: remove a network destination from a live source stream
    /// (Modify — the upstream half of shrinking a split).
    RemoveDest {
        /// Transaction id.
        txn: u32,
        /// Session id.
        session: u32,
        /// The source box's local stream.
        stream: StreamId,
        /// The destination VCI to remove.
        vci: Vci,
    },
    /// Request: drop a sink installed by [`SessionMsg::OpenSink`] and
    /// release its admission charge (Teardown).
    CloseSink {
        /// Transaction id.
        txn: u32,
        /// Session id.
        session: u32,
        /// The sink VCI to drop.
        vci: Vci,
    },
    /// Reply: positive completion of AddDest/RemoveDest/CloseSink.
    Done {
        /// Transaction id (echoes the request).
        txn: u32,
        /// Session id.
        session: u32,
    },
    /// Liveness probe from the controller's lease monitor. Travels on the
    /// same command path as every other control message (Principle 4), so
    /// a Pong proves the whole box-side control pipeline is alive, not
    /// just the link.
    Ping {
        /// Transaction id.
        txn: u32,
    },
    /// Reply to [`SessionMsg::Ping`]; renews the sender's lease.
    Pong {
        /// Transaction id (echoes the probe).
        txn: u32,
    },
}

impl SessionMsg {
    /// The message's transaction id.
    pub fn txn(&self) -> u32 {
        match *self {
            SessionMsg::OpenSink { txn, .. }
            | SessionMsg::Accept { txn, .. }
            | SessionMsg::Reject { txn, .. }
            | SessionMsg::AddDest { txn, .. }
            | SessionMsg::RemoveDest { txn, .. }
            | SessionMsg::CloseSink { txn, .. }
            | SessionMsg::Done { txn, .. }
            | SessionMsg::Ping { txn }
            | SessionMsg::Pong { txn } => txn,
        }
    }

    fn kind_code(&self) -> u8 {
        match self {
            SessionMsg::OpenSink { .. } => 1,
            SessionMsg::Accept { .. } => 2,
            SessionMsg::Reject { .. } => 3,
            SessionMsg::AddDest { .. } => 4,
            SessionMsg::RemoveDest { .. } => 5,
            SessionMsg::CloseSink { .. } => 6,
            SessionMsg::Done { .. } => 7,
            SessionMsg::Ping { .. } => 8,
            SessionMsg::Pong { .. } => 9,
        }
    }

    /// Encodes the message into its 29-byte payload form.
    pub fn encode(&self) -> Vec<u8> {
        let (txn, session, a, b, c, d) = match *self {
            SessionMsg::OpenSink {
                txn,
                session,
                class,
                vci,
            } => (txn, session, vci.0, class.tag(), class.rate_permille(), 0),
            SessionMsg::Accept {
                txn,
                session,
                vci,
                rate_permille,
            } => (txn, session, vci.0, rate_permille, 0, 0),
            SessionMsg::Reject {
                txn,
                session,
                reason,
            } => (txn, session, reason.code(), 0, 0, 0),
            SessionMsg::AddDest {
                txn,
                session,
                stream,
                vci,
                class,
            } => (
                txn,
                session,
                stream.0,
                vci.0,
                class.tag(),
                class.rate_permille(),
            ),
            SessionMsg::RemoveDest {
                txn,
                session,
                stream,
                vci,
            } => (txn, session, stream.0, vci.0, 0, 0),
            SessionMsg::CloseSink { txn, session, vci } => (txn, session, vci.0, 0, 0, 0),
            SessionMsg::Done { txn, session } => (txn, session, 0, 0, 0, 0),
            SessionMsg::Ping { txn } | SessionMsg::Pong { txn } => (txn, 0, 0, 0, 0, 0),
        };
        let mut out = Vec::with_capacity(CONTROL_BYTES);
        out.extend_from_slice(&CONTROL_MAGIC);
        out.push(self.kind_code());
        for word in [txn, session, a, b, c, d] {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Decodes a payload produced by [`SessionMsg::encode`]. `None` for
    /// payloads that are not control messages or are malformed.
    pub fn decode(data: &[u8]) -> Option<SessionMsg> {
        if data.len() != CONTROL_BYTES || data[..4] != CONTROL_MAGIC {
            return None;
        }
        let kind = data[4];
        let word = |i: usize| {
            let at = 5 + 4 * i;
            u32::from_be_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
        };
        let (txn, session) = (word(0), word(1));
        let (a, b, c, d) = (word(2), word(3), word(4), word(5));
        match kind {
            1 => Some(SessionMsg::OpenSink {
                txn,
                session,
                class: StreamClass::from_parts(b, c)?,
                vci: Vci(a),
            }),
            2 => Some(SessionMsg::Accept {
                txn,
                session,
                vci: Vci(a),
                rate_permille: b,
            }),
            3 => Some(SessionMsg::Reject {
                txn,
                session,
                reason: RejectReason::from_code(a)?,
            }),
            4 => Some(SessionMsg::AddDest {
                txn,
                session,
                stream: StreamId(a),
                vci: Vci(b),
                class: StreamClass::from_parts(c, d)?,
            }),
            5 => Some(SessionMsg::RemoveDest {
                txn,
                session,
                stream: StreamId(a),
                vci: Vci(b),
            }),
            6 => Some(SessionMsg::CloseSink {
                txn,
                session,
                vci: Vci(a),
            }),
            7 => Some(SessionMsg::Done { txn, session }),
            8 => Some(SessionMsg::Ping { txn }),
            9 => Some(SessionMsg::Pong { txn }),
            _ => None,
        }
    }

    /// Wraps the message in a test segment (the control carrier: control
    /// is a `StreamKind`, not a new wire format).
    pub fn to_segment(&self, seq: u32) -> Segment {
        Segment::Test(TestSegment::new(
            SequenceNumber(seq),
            Timestamp(0),
            self.encode(),
        ))
    }

    /// Extracts a control message from a segment, if it carries one.
    pub fn from_segment(segment: &Segment) -> Option<SessionMsg> {
        match segment {
            Segment::Test(t) => SessionMsg::decode(&t.data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<SessionMsg> {
        vec![
            SessionMsg::OpenSink {
                txn: 1,
                session: 2,
                class: StreamClass::Audio,
                vci: Vci(0x1001),
            },
            SessionMsg::OpenSink {
                txn: 3,
                session: 2,
                class: StreamClass::Video { rate_permille: 250 },
                vci: Vci(0x1002),
            },
            SessionMsg::Accept {
                txn: 1,
                session: 2,
                vci: Vci(0x1001),
                rate_permille: 500,
            },
            SessionMsg::Reject {
                txn: 1,
                session: 2,
                reason: RejectReason::SinkBudget,
            },
            SessionMsg::Reject {
                txn: 9,
                session: 2,
                reason: RejectReason::LinkBudget,
            },
            SessionMsg::AddDest {
                txn: 4,
                session: 2,
                stream: StreamId(7),
                vci: Vci(0x1001),
                class: StreamClass::Audio,
            },
            SessionMsg::RemoveDest {
                txn: 5,
                session: 2,
                stream: StreamId(7),
                vci: Vci(0x1001),
            },
            SessionMsg::CloseSink {
                txn: 6,
                session: 2,
                vci: Vci(0x1001),
            },
            SessionMsg::Done { txn: 6, session: 2 },
            SessionMsg::Ping { txn: 8 },
            SessionMsg::Pong { txn: 8 },
        ]
    }

    #[test]
    fn roundtrip_through_bytes_and_segments() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), CONTROL_BYTES);
            assert_eq!(SessionMsg::decode(&bytes), Some(msg), "{msg:?}");
            let seg = msg.to_segment(42);
            assert_eq!(SessionMsg::from_segment(&seg), Some(msg), "{msg:?}");
        }
    }

    #[test]
    fn non_control_payloads_rejected() {
        assert_eq!(SessionMsg::decode(&[]), None);
        assert_eq!(SessionMsg::decode(&[0u8; CONTROL_BYTES]), None);
        let mut bytes = all_messages()[0].encode();
        bytes[4] = 99; // Unknown kind.
        assert_eq!(SessionMsg::decode(&bytes), None);
        bytes.push(0); // Wrong length.
        assert_eq!(SessionMsg::decode(&bytes), None);
    }

    #[test]
    fn demand_estimates_scale_with_rate() {
        assert_eq!(StreamClass::Audio.demand_cps(), 500);
        let full = StreamClass::Video {
            rate_permille: 1_000,
        };
        let half = StreamClass::Video { rate_permille: 500 };
        assert_eq!(full.demand_cps(), 2 * half.demand_cps());
    }
}
