//! The admission controller: budgets instead of oversubscription.
//!
//! Each endpoint's agent runs one of these over its capability
//! descriptor. A request is charged against the sink-count and
//! cell-bandwidth budgets before any route is installed; when a budget
//! would be exceeded the request is degraded or rejected rather than
//! admitted — the established streams' budgets are never raided, so the
//! data plane's overload machinery (Principles 1–3) only ever has to
//! handle transient disturbance, not steady oversubscription.
//!
//! The degrade order follows the paper's priorities: audio is never
//! degraded (Principle 2) — it is admitted whole or refused; video gives
//! way first, by halving its rate until it fits (down to a 125‰ floor)
//! before being refused outright.

use crate::proto::{RejectReason, StreamClass};
use crate::Capabilities;

/// Minimum video rate (in thousandths of full rate) admission will
/// degrade to before rejecting.
pub const MIN_VIDEO_RATE_PERMILLE: u32 = 125;

/// The outcome of an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted at the requested quality.
    Admit,
    /// Admitted at a reduced video rate.
    Degrade {
        /// The granted rate in thousandths of full rate.
        rate_permille: u32,
    },
    /// Refused; no budget was charged.
    Reject(RejectReason),
}

/// Per-endpoint admission state: budgets and charges.
#[derive(Debug)]
pub struct AdmissionController {
    caps: Capabilities,
    audio_sinks: u32,
    video_sinks: u32,
    rx_cps: u64,
    tx_cps: u64,
    admitted: u64,
    degraded: u64,
    rejected: u64,
}

impl AdmissionController {
    /// A controller enforcing the given capability budgets.
    pub fn new(caps: Capabilities) -> AdmissionController {
        AdmissionController {
            caps,
            audio_sinks: 0,
            video_sinks: 0,
            rx_cps: 0,
            tx_cps: 0,
            admitted: 0,
            degraded: 0,
            rejected: 0,
        }
    }

    /// Requests admission of a receiving sink. On `Admit`/`Degrade` the
    /// budgets are charged with the *granted* class; `Reject` charges
    /// nothing.
    pub fn admit_sink(&mut self, class: StreamClass) -> Decision {
        match class {
            StreamClass::Audio => {
                if self.audio_sinks >= self.caps.audio_sinks_max {
                    self.rejected += 1;
                    return Decision::Reject(RejectReason::SinkBudget);
                }
                if self.rx_cps + class.demand_cps() > self.caps.link_cps {
                    self.rejected += 1;
                    return Decision::Reject(RejectReason::LinkBudget);
                }
                self.audio_sinks += 1;
                self.rx_cps += class.demand_cps();
                self.admitted += 1;
                Decision::Admit
            }
            StreamClass::Video { rate_permille } => {
                if self.video_sinks >= self.caps.video_sinks_max {
                    self.rejected += 1;
                    return Decision::Reject(RejectReason::SinkBudget);
                }
                let spare = self.caps.link_cps.saturating_sub(self.rx_cps);
                match degrade_to_fit(rate_permille, spare) {
                    Some(granted) => {
                        self.video_sinks += 1;
                        self.rx_cps += StreamClass::Video {
                            rate_permille: granted,
                        }
                        .demand_cps();
                        if granted == rate_permille {
                            self.admitted += 1;
                            Decision::Admit
                        } else {
                            self.degraded += 1;
                            Decision::Degrade {
                                rate_permille: granted,
                            }
                        }
                    }
                    None => {
                        self.rejected += 1;
                        Decision::Reject(RejectReason::LinkBudget)
                    }
                }
            }
        }
    }

    /// Releases a sink previously granted as `class` (pass the *granted*
    /// class, including any degraded rate).
    pub fn release_sink(&mut self, class: StreamClass) {
        match class {
            StreamClass::Audio => self.audio_sinks = self.audio_sinks.saturating_sub(1),
            StreamClass::Video { .. } => self.video_sinks = self.video_sinks.saturating_sub(1),
        }
        self.rx_cps = self.rx_cps.saturating_sub(class.demand_cps());
    }

    /// Requests transmit bandwidth for one more copy of a source stream
    /// (the AddDest charge). No degrade path: the copy's rate was fixed
    /// when its sink was admitted, so this either fits or is refused.
    pub fn admit_source(&mut self, class: StreamClass) -> Decision {
        if self.tx_cps + class.demand_cps() > self.caps.link_cps {
            self.rejected += 1;
            return Decision::Reject(RejectReason::LinkBudget);
        }
        self.tx_cps += class.demand_cps();
        self.admitted += 1;
        Decision::Admit
    }

    /// Releases transmit bandwidth charged by
    /// [`AdmissionController::admit_source`].
    pub fn release_source(&mut self, class: StreamClass) {
        self.tx_cps = self.tx_cps.saturating_sub(class.demand_cps());
    }

    /// Requests transmit bandwidth for `copies` simultaneous copies of
    /// one stream — the overlay relay charge: a member that is interior
    /// in a broadcast tree forwards every slice of its stripe to each
    /// child, so its uplink owes `copies x demand`, not one.
    ///
    /// Degrade follows the sink rules: audio copies are admitted whole
    /// or refused; video halves its rate (shared by every copy — the
    /// stripe is one stream) down to the
    /// [`MIN_VIDEO_RATE_PERMILLE`] floor before rejecting.
    pub fn admit_relay(&mut self, class: StreamClass, copies: u32) -> Decision {
        if copies == 0 {
            self.admitted += 1;
            return Decision::Admit;
        }
        let spare = self.caps.link_cps.saturating_sub(self.tx_cps);
        match class {
            StreamClass::Audio => {
                let demand = class.demand_cps() * u64::from(copies);
                if demand > spare {
                    self.rejected += 1;
                    return Decision::Reject(RejectReason::LinkBudget);
                }
                self.tx_cps += demand;
                self.admitted += 1;
                Decision::Admit
            }
            StreamClass::Video { rate_permille } => {
                // Integer division is conservative: the lost remainder
                // (< copies cells/sec) stays unspent, never oversold.
                let per_copy = spare / u64::from(copies);
                match degrade_to_fit(rate_permille, per_copy) {
                    Some(granted) => {
                        self.tx_cps += StreamClass::Video {
                            rate_permille: granted,
                        }
                        .demand_cps()
                            * u64::from(copies);
                        if granted == rate_permille {
                            self.admitted += 1;
                            Decision::Admit
                        } else {
                            self.degraded += 1;
                            Decision::Degrade {
                                rate_permille: granted,
                            }
                        }
                    }
                    None => {
                        self.rejected += 1;
                        Decision::Reject(RejectReason::LinkBudget)
                    }
                }
            }
        }
    }

    /// Releases transmit bandwidth charged by
    /// [`AdmissionController::admit_relay`] (pass the *granted* class).
    pub fn release_relay(&mut self, class: StreamClass, copies: u32) {
        self.tx_cps = self
            .tx_cps
            .saturating_sub(class.demand_cps() * u64::from(copies));
    }

    /// Requests admitted (including degraded) so far.
    pub fn admitted(&self) -> u64 {
        self.admitted + self.degraded
    }

    /// Requests admitted only after degrading.
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Receive-side cell bandwidth currently charged.
    pub fn rx_cps(&self) -> u64 {
        self.rx_cps
    }

    /// Transmit-side cell bandwidth currently charged.
    pub fn tx_cps(&self) -> u64 {
        self.tx_cps
    }

    /// Audio sinks currently admitted.
    pub fn audio_sinks(&self) -> u32 {
        self.audio_sinks
    }

    /// Video sinks currently admitted.
    pub fn video_sinks(&self) -> u32 {
        self.video_sinks
    }
}

/// Halves `rate_permille` until the video demand fits in `spare_cps`,
/// stopping at [`MIN_VIDEO_RATE_PERMILLE`]. `None` when even the floor
/// doesn't fit.
fn degrade_to_fit(rate_permille: u32, spare_cps: u64) -> Option<u32> {
    let mut rate = rate_permille.max(1);
    loop {
        let demand = StreamClass::Video {
            rate_permille: rate,
        }
        .demand_cps();
        if demand <= spare_cps {
            return Some(rate);
        }
        if rate <= MIN_VIDEO_RATE_PERMILLE {
            return None;
        }
        rate = (rate / 2).max(MIN_VIDEO_RATE_PERMILLE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(audio: u32, video: u32, link_cps: u64) -> Capabilities {
        Capabilities {
            audio_sinks_max: audio,
            video_sinks_max: video,
            link_cps,
        }
    }

    #[test]
    fn audio_admitted_until_sink_budget_then_rejected() {
        let mut a = AdmissionController::new(caps(3, 2, 1_000_000));
        for _ in 0..3 {
            assert_eq!(a.admit_sink(StreamClass::Audio), Decision::Admit);
        }
        assert_eq!(
            a.admit_sink(StreamClass::Audio),
            Decision::Reject(RejectReason::SinkBudget)
        );
        assert_eq!(a.admitted(), 3);
        assert_eq!(a.rejected(), 1);
        // Releasing one frees a slot.
        a.release_sink(StreamClass::Audio);
        assert_eq!(a.admit_sink(StreamClass::Audio), Decision::Admit);
    }

    #[test]
    fn audio_never_degraded_only_rejected_on_link_budget() {
        let mut a = AdmissionController::new(caps(10, 2, 1_200));
        assert_eq!(a.admit_sink(StreamClass::Audio), Decision::Admit);
        assert_eq!(a.admit_sink(StreamClass::Audio), Decision::Admit);
        assert_eq!(
            a.admit_sink(StreamClass::Audio),
            Decision::Reject(RejectReason::LinkBudget)
        );
        assert_eq!(a.degraded(), 0);
    }

    #[test]
    fn video_degrades_before_rejecting() {
        // Room for ~650 cells/sec: full-rate video (2600) must degrade
        // to 250‰.
        let mut a = AdmissionController::new(caps(3, 2, 650));
        let d = a.admit_sink(StreamClass::Video {
            rate_permille: 1_000,
        });
        assert_eq!(d, Decision::Degrade { rate_permille: 250 });
        assert_eq!(a.degraded(), 1);
        // Nothing left even at the floor: reject.
        let d2 = a.admit_sink(StreamClass::Video {
            rate_permille: 1_000,
        });
        assert_eq!(d2, Decision::Reject(RejectReason::LinkBudget));
    }

    #[test]
    fn release_refunds_granted_rate() {
        let mut a = AdmissionController::new(caps(3, 2, 650));
        let Decision::Degrade { rate_permille } = a.admit_sink(StreamClass::Video {
            rate_permille: 1_000,
        }) else {
            panic!("expected degrade");
        };
        a.release_sink(StreamClass::Video { rate_permille });
        assert_eq!(a.rx_cps(), 0);
        assert_eq!(a.video_sinks(), 0);
    }

    #[test]
    fn relay_charge_is_copies_times_demand() {
        // 8 video copies at 722‰ (a 1875 cps overlay stripe) against a
        // 100k cps uplink: fits whole.
        let mut a = AdmissionController::new(caps(0, 4, 100_000));
        let stripe = StreamClass::Video { rate_permille: 722 };
        assert_eq!(a.admit_relay(stripe, 8), Decision::Admit);
        assert_eq!(a.tx_cps(), stripe.demand_cps() * 8);
        a.release_relay(stripe, 8);
        assert_eq!(a.tx_cps(), 0);
    }

    #[test]
    fn relay_video_degrades_shared_rate_before_rejecting() {
        // 4 copies of full-rate video need 10400 cps; only 5300 spare,
        // so the stripe halves once to 500‰ (1300 cps per copy).
        let mut a = AdmissionController::new(caps(0, 4, 5_300));
        let d = a.admit_relay(
            StreamClass::Video {
                rate_permille: 1_000,
            },
            4,
        );
        assert_eq!(d, Decision::Degrade { rate_permille: 500 });
        assert_eq!(a.tx_cps(), 4 * 1_300);
        // Nothing meaningful left: even the 125‰ floor times 4 copies
        // overflows the 100 cps remainder.
        let d2 = a.admit_relay(
            StreamClass::Video {
                rate_permille: 1_000,
            },
            4,
        );
        assert_eq!(d2, Decision::Reject(RejectReason::LinkBudget));
    }

    #[test]
    fn relay_audio_admitted_whole_or_refused() {
        let mut a = AdmissionController::new(caps(0, 0, 1_200));
        assert_eq!(a.admit_relay(StreamClass::Audio, 2), Decision::Admit);
        assert_eq!(
            a.admit_relay(StreamClass::Audio, 1),
            Decision::Reject(RejectReason::LinkBudget)
        );
        assert_eq!(a.degraded(), 0);
    }

    #[test]
    fn relay_with_zero_copies_charges_nothing() {
        let mut a = AdmissionController::new(caps(0, 0, 10));
        assert_eq!(
            a.admit_relay(
                StreamClass::Video {
                    rate_permille: 1_000
                },
                0
            ),
            Decision::Admit
        );
        assert_eq!(a.tx_cps(), 0);
    }

    #[test]
    fn source_budget_charged_and_refused() {
        let mut a = AdmissionController::new(caps(3, 2, 1_200));
        assert_eq!(a.admit_source(StreamClass::Audio), Decision::Admit);
        assert_eq!(a.admit_source(StreamClass::Audio), Decision::Admit);
        assert_eq!(
            a.admit_source(StreamClass::Audio),
            Decision::Reject(RejectReason::LinkBudget)
        );
        a.release_source(StreamClass::Audio);
        assert_eq!(a.admit_source(StreamClass::Audio), Decision::Admit);
    }
}
