//! pandora-session: the control plane for Pandora conferences.
//!
//! The data plane (boxes, links, switches) runs streams "continuously
//! until stopped"; this crate supplies the part of the system that
//! decides *which* streams run and *where* — call setup, admission
//! control and glitch-free reconfiguration:
//!
//! - a [`Directory`] of endpoints: fabric attachment, well-known
//!   control circuits and a capability descriptor per box;
//! - a signalling protocol ([`SessionMsg`]) carried as ordinary
//!   segments on a control [`pandora::StreamKind`], so commands ride
//!   the audio-priority queue and the box switch's PRI-ALT command
//!   path (Principle 4) — signalling stays live exactly when the data
//!   plane does;
//! - an [`AdmissionController`] per endpoint charging sink-count and
//!   cell-bandwidth budgets, degrading video (never audio, Principle
//!   2) and rejecting instead of oversubscribing;
//! - a [`Controller`] that grows and shrinks live conferences by
//!   issuing switch-table updates and fabric VCI routes in
//!   downstream-first order, so ongoing streams never glitch
//!   (Principle 6) and splits stay upstream-independent (Principle 5);
//! - topology builders ([`Star`], [`point_to_point`]) assembling the
//!   fabric the controller manages;
//! - failure recovery (opt-in via [`ControllerConfig::lease`]):
//!   heartbeat probes renew per-box leases from `pandora-recover`, and
//!   a dead lease triggers crash reconvergence — surviving streams
//!   never glitch, budgets are refunded, and a restarted box settles
//!   its stale state before re-admission.

pub mod admission;
pub mod control;
pub mod directory;
pub mod proto;
pub mod sharded;
pub mod topology;

pub use admission::{AdmissionController, Decision, MIN_VIDEO_RATE_PERMILLE};
pub use control::{spawn_agent, Admitted, AgentStats, Controller, ControllerConfig, SessionError};
pub use directory::{Capabilities, Directory, EndpointId, EndpointRecord};
pub use pandora_recover::{LeaseConfig, LeaseState};
pub use proto::{RejectReason, SessionMsg, StreamClass, CONTROL_BYTES, CONTROL_MAGIC};
pub use sharded::{
    build_sharded_pair, build_sharded_star, HubSeat, NodeHook, NodeSeat, PairSeat,
    ShardedPairConfig, ShardedStarConfig,
};
pub use topology::{point_to_point, Star, StarConfig, StarNode, CONTROL_VCI_BASE, REPLY_VCI_BASE};
