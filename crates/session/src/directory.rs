//! The endpoint directory: who is attached where, with what capabilities.
//!
//! The controller consults the directory to find an endpoint's fabric
//! port, its well-known control VCIs and its capability descriptor (the
//! admission budgets of §4.2). Endpoints are registered once at topology
//! build time; the directory is the control plane's single naming
//! authority, so session ids and sink VCIs never collide across boxes.

use pandora_atm::Vci;

/// A directory handle for one registered endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(pub u32);

/// An endpoint's capability descriptor — the budgets its admission
/// controller enforces.
#[derive(Debug, Clone, Copy)]
pub struct Capabilities {
    /// Concurrent audio sinks the audio transputer can fully process
    /// ("three audio streams with full processing", §4.2).
    pub audio_sinks_max: u32,
    /// Concurrent video sinks the mixer board will composite.
    pub video_sinks_max: u32,
    /// Cell bandwidth of the box's ATM attachment, in cells/sec, shared
    /// by each direction.
    pub link_cps: u64,
}

impl Capabilities {
    /// The standard box: 3 full audio sinks (§4.2), 2 video windows, a
    /// 50 Mbit/s attachment (≈117k cells/sec).
    pub fn standard() -> Capabilities {
        Capabilities {
            audio_sinks_max: 3,
            video_sinks_max: 2,
            link_cps: 50_000_000 / (8 * pandora_atm::CELL_BYTES as u64),
        }
    }
}

/// A directory record: name, attachment and capabilities.
#[derive(Debug, Clone)]
pub struct EndpointRecord {
    /// Human-readable endpoint name (the box's configured name).
    pub name: String,
    /// Capability descriptor.
    pub caps: Capabilities,
    /// The endpoint's port on the session fabric switch.
    pub port: usize,
    /// Well-known VCI on which the endpoint's agent receives control.
    pub control_vci: Vci,
    /// Well-known VCI on which the endpoint's agent sends replies.
    pub reply_vci: Vci,
}

/// The registry of endpoints reachable through one controller.
#[derive(Debug, Default)]
pub struct Directory {
    records: Vec<EndpointRecord>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Registers an endpoint; returns its id.
    pub fn register(&mut self, record: EndpointRecord) -> EndpointId {
        self.records.push(record);
        EndpointId(self.records.len() as u32 - 1)
    }

    /// Looks up an endpoint.
    pub fn get(&self, id: EndpointId) -> Option<&EndpointRecord> {
        self.records.get(id.0 as usize)
    }

    /// Finds an endpoint by name.
    pub fn find(&self, name: &str) -> Option<EndpointId> {
        self.records
            .iter()
            .position(|r| r.name == name)
            .map(|i| EndpointId(i as u32))
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, port: usize) -> EndpointRecord {
        EndpointRecord {
            name: name.to_string(),
            caps: Capabilities::standard(),
            port,
            control_vci: Vci(0x7F00 + port as u32),
            reply_vci: Vci(0x7E00 + port as u32),
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut d = Directory::new();
        assert!(d.is_empty());
        let a = d.register(rec("alpha", 0));
        let b = d.register(rec("beta", 1));
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(a).map(|r| r.port), Some(0));
        assert_eq!(d.find("beta"), Some(b));
        assert_eq!(d.find("gamma"), None);
        assert_eq!(d.get(EndpointId(9)).map(|r| r.port), None);
    }

    #[test]
    fn standard_caps_match_paper() {
        let c = Capabilities::standard();
        assert_eq!(c.audio_sinks_max, 3);
        assert!(c.link_cps > 100_000);
    }
}
