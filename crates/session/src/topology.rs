//! Topology builders: conference stars and point-to-point calls over
//! the ATM fabric.
//!
//! A [`Star`] attaches `n` Pandora's Boxes and one controller to a
//! central VCI-routed cell switch, each over its own full-duplex
//! multi-hop path. The well-known control circuits are installed at
//! build time; everything else — stream routes, splits, sinks — is
//! installed and removed live by the [`Controller`].

use std::rc::Rc;

use pandora::{BoxConfig, PandoraBox};
use pandora_atm::{build_duplex_path, HopConfig, PathControl, Switch, Vci};
use pandora_sim::Spawner;

use crate::control::{spawn_agent, AgentStats, Controller, ControllerConfig};
use crate::directory::{Capabilities, Directory, EndpointId, EndpointRecord};

/// Base of the well-known VCIs on which each box's agent receives
/// control (`CONTROL_VCI_BASE + port`).
pub const CONTROL_VCI_BASE: u32 = 0x7F00;

/// Base of the well-known VCIs on which each box's agent replies
/// (`REPLY_VCI_BASE + port`). Distinct per box so the controller's
/// reassembler never interleaves two agents' frames on one circuit.
pub const REPLY_VCI_BASE: u32 = 0x7E00;

/// Parameters of a [`Star`] conference fabric.
#[derive(Clone)]
pub struct StarConfig {
    /// Hop profile of every attachment (both directions).
    pub hops: Vec<HopConfig>,
    /// Master seed; each attachment derives its own.
    pub seed: u64,
    /// Capability descriptor every endpoint advertises.
    pub caps: Capabilities,
    /// Controller signalling tunables.
    pub controller: ControllerConfig,
    /// Builds each box's configuration from its generated name.
    pub box_config: fn(&'static str) -> BoxConfig,
    /// Cell capacity of each fabric output port. Jitter bursts on an
    /// attachment can release many cells back-to-back; the port queue
    /// must absorb such a burst or drop (P5: drop, never block).
    pub port_queue: usize,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            hops: vec![HopConfig::clean(100_000_000)],
            seed: 1,
            caps: Capabilities::standard(),
            controller: ControllerConfig::default(),
            box_config: BoxConfig::standard,
            port_queue: 2_048,
        }
    }
}

/// One endpoint of a [`Star`]: the box, its directory id and its
/// agent's admission state.
pub struct StarNode {
    /// The box itself.
    pub boxy: Rc<PandoraBox>,
    /// The endpoint's directory id.
    pub endpoint: EndpointId,
    /// The box agent's admission statistics.
    pub agent: AgentStats,
}

/// A conference star: `n` boxes and a controller around one cell
/// switch.
pub struct Star {
    /// The attached endpoints, in port order.
    pub nodes: Vec<StarNode>,
    /// The control plane (shared so drivers can clone it into tasks).
    pub controller: Rc<Controller>,
    /// The central fabric switch.
    pub switch: Rc<Switch>,
    path_controls: Vec<(String, PathControl)>,
}

impl Star {
    /// Builds a star of `n` boxes named `node0..` plus a controller on
    /// port `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build(spawner: &Spawner, n: usize, config: StarConfig) -> Star {
        assert!(n > 0, "a star needs at least one box");
        let mut inputs = Vec::new();
        let mut box_sides = Vec::new();
        let mut path_controls = Vec::new();
        // Attachment i: the box (or controller) is the A side, the
        // switch the B side.
        for i in 0..=n {
            let name: &'static str = if i == n {
                "controller"
            } else {
                Box::leak(format!("node{i}").into_boxed_str())
            };
            let duplex = build_duplex_path(
                spawner,
                name,
                &config.hops,
                config.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            );
            inputs.push(duplex.b_rx);
            path_controls.push((format!("{name}.ab"), duplex.a_to_b_ctrl));
            path_controls.push((format!("{name}.ba"), duplex.b_to_a_ctrl));
            box_sides.push((name, duplex.a_tx, duplex.a_rx, duplex.b_tx));
        }
        let (switch, port_rxs) = Switch::spawn(spawner, "star", inputs, n + 1, config.port_queue);
        let switch = Rc::new(switch);
        let mut directory = Directory::new();
        let mut pending_agents = Vec::new();
        let mut controller_side = None;
        for (i, ((name, a_tx, a_rx, b_tx), port_rx)) in
            box_sides.into_iter().zip(port_rxs).enumerate()
        {
            // Pump the switch's output port back toward the endpoint.
            spawner.spawn(&format!("star:port{i}"), async move {
                while let Ok(cell) = port_rx.recv().await {
                    if b_tx.send(cell).await.is_err() {
                        return;
                    }
                }
            });
            if i == n {
                controller_side = Some((a_tx, a_rx));
                continue;
            }
            let control_vci = Vci(CONTROL_VCI_BASE + i as u32);
            let reply_vci = Vci(REPLY_VCI_BASE + i as u32);
            // The well-known control circuits: controller → box i, and
            // box i's replies → controller port.
            switch.route(control_vci, i, control_vci);
            switch.route(reply_vci, n, reply_vci);
            let boxy = Rc::new(PandoraBox::new(
                spawner,
                (config.box_config)(name),
                a_tx,
                a_rx,
            ));
            let endpoint = directory.register(EndpointRecord {
                name: name.to_string(),
                caps: config.caps,
                port: i,
                control_vci,
                reply_vci,
            });
            pending_agents.push((boxy, endpoint, control_vci, reply_vci));
        }
        let (ctl_tx, ctl_rx) = controller_side.expect("controller attachment missing");
        let controller = Controller::spawn(
            spawner,
            directory,
            switch.clone(),
            ctl_tx,
            ctl_rx,
            config.controller,
        );
        let nodes = pending_agents
            .into_iter()
            .map(|(boxy, endpoint, control_vci, reply_vci)| {
                let agent = spawn_agent(spawner, boxy.clone(), config.caps, control_vci, reply_vci);
                StarNode {
                    boxy,
                    endpoint,
                    agent,
                }
            })
            .collect();
        let controller = Rc::new(controller);
        // Failure detection is opt-in: with a lease config the
        // controller probes every box on the command path and
        // reconverges conferences around crashes.
        if config.controller.lease.is_some() {
            controller.spawn_lease_probes(spawner);
        }
        Star {
            nodes,
            controller,
            switch,
            path_controls,
        }
    }

    /// Fault-injection controls of every attachment direction, named
    /// `node<i>.ab` / `node<i>.ba` / `controller.ab` / `controller.ba`
    /// — register these with a `pandora-faults` plan to disturb the
    /// signalling or media paths.
    pub fn path_controls(&self) -> &[(String, PathControl)] {
        &self.path_controls
    }
}

/// A two-box star — the videophone's point-to-point call fabric.
pub fn point_to_point(spawner: &Spawner, config: StarConfig) -> Star {
    Star::build(spawner, 2, config)
}
