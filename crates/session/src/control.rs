//! The session controller and per-box agents.
//!
//! One [`Controller`] owns a star fabric's routing table and directory;
//! each participating box runs an agent task (spawned by
//! [`spawn_agent`]) that executes control requests locally — admission
//! through its [`AdmissionController`], route changes through the box's
//! switch-command channel, which the switch takes via PRI ALT between
//! segments (Principles 4 and 6).
//!
//! ## Reconfiguration ordering (glitch-free growth and shrink)
//!
//! Growing a split installs state strictly downstream-first:
//!
//! 1. `OpenSink` at the destination — admission, then the sink's switch
//!    route, before a single cell can arrive;
//! 2. the fabric VCI route — the path now exists end-to-end, unused;
//! 3. `AddDest` at the source — the switch table grows between two
//!    segments, so the new copy starts on a segment boundary and the
//!    stream's existing copies are untouched (Principle 6) and remain
//!    upstream-independent (Principle 5).
//!
//! Shrinking reverses the order (source first, then fabric, then sink),
//! so cells are never in flight toward missing state. Requests are
//! idempotent at the agents, which makes the controller's
//! timeout-and-retry loop safe under signalling faults (Principle 4
//! keeps the command path live; retries cover lost cells). Retries back
//! off exponentially with seeded jitter so a congested command path is
//! not hammered in lock-step.
//!
//! ## Failure recovery (leases and reconvergence)
//!
//! When [`ControllerConfig::lease`] is set, the controller probes every
//! endpoint with `Ping`/`Pong` heartbeats on the ordinary command path
//! and holds a [`LeaseTable`]. A lease that misses enough renewals dies,
//! and the controller reconverges the surviving conference:
//!
//! 1. sessions where the dead box was a *listener* shrink upstream-first
//!    (RemoveDest at the live source, fabric route out) — the source's
//!    transmit budget is released and its other copies never glitch;
//! 2. sessions where the dead box was the *source* tear down whole:
//!    fabric route out, then CloseSink at each surviving listener so
//!    their admission charges are refunded;
//! 3. a fabric backstop ([`Switch::unroute_port`]) sweeps any stray legs
//!    toward the dead port, then the well-known control circuit is
//!    re-installed so a restarted box is reachable again.
//!
//! The dead box's own half of the state (its local routes and admission
//!    charges) cannot be released over the wire — it is recorded as
//! *stale debt* and settled with idempotent CloseSink/RemoveDest
//! requests when the lease revives (the rejoin path). Rejoined boxes
//! re-enter conferences through the normal admission path.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use pandora::{OutputId, PandoraBox, StreamKind};
use pandora_atm::{segment_to_cells, Cell, Reassembler, Switch, Vci};
use pandora_metrics::{Histogram, StateTimeline, Table};
use pandora_recover::{LeaseConfig, LeaseEvent, LeaseState, LeaseTable};
use pandora_segment::{wire, StreamId};
use pandora_sim::{
    alt2_deadline, Either2, LinkSender, Receiver, Sender, SimDuration, SimTime, Spawner,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::admission::{AdmissionController, Decision};
use crate::directory::{Capabilities, Directory, EndpointId};
use crate::proto::{RejectReason, SessionMsg, StreamClass};

/// A control-plane operation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The remote agent refused admission.
    Rejected(RejectReason),
    /// No reply within the configured timeout, after retries.
    Timeout,
    /// The session id is not registered.
    UnknownSession,
    /// The endpoint id is not in the directory.
    UnknownEndpoint,
    /// The named destination has no sink in this session.
    UnknownListener,
    /// The signalling attachment is closed.
    Closed,
    /// The agent replied with an unexpected message.
    Protocol,
}

/// A granted sink: where the stream will arrive and at what rate.
#[derive(Debug, Clone, Copy)]
pub struct Admitted {
    /// The fabric VCI carrying the stream to the new listener.
    pub vci: Vci,
    /// Granted rate in thousandths of full rate (1000 unless the video
    /// was degraded at admission).
    pub rate_permille: u32,
}

/// Controller tunables.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How long to wait for an agent's reply on the first attempt.
    pub reply_timeout: SimDuration,
    /// Retries after the first attempt times out.
    pub retries: u32,
    /// Upper bound on the backed-off per-attempt reply wait
    /// (`reply_timeout * 2^attempt`, capped here).
    pub backoff_cap: SimDuration,
    /// Jitter added to each attempt's wait, as thousandths of the
    /// backed-off wait (0 disables jitter). Jitter keeps lock-step
    /// retries from re-colliding on a congested command path.
    pub jitter_permille: u32,
    /// Seed for the jitter generator — same seed, same retry schedule,
    /// so runs replay byte-identically.
    pub seed: u64,
    /// Lease/heartbeat tunables; `None` disables failure detection (no
    /// probe tasks, no reconvergence — crashed boxes leak their state).
    pub lease: Option<LeaseConfig>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            reply_timeout: SimDuration::from_millis(500),
            retries: 2,
            backoff_cap: SimDuration::from_millis(4_000),
            jitter_permille: 200,
            seed: 0x5EA5_1DE5,
            lease: None,
        }
    }
}

/// One dead source's teardown work: session id, source stream and the
/// surviving sinks that must close, in leg order.
type SourceTeardown = (u32, StreamId, Vec<(EndpointId, Vci)>);

struct SinkRec {
    dst: EndpointId,
    vci: Vci,
    rate_permille: u32,
}

struct SessionRec {
    src: EndpointId,
    src_stream: StreamId,
    class: StreamClass,
    sinks: Vec<SinkRec>,
}

#[derive(Default)]
struct ControlStats {
    setups: u64,
    reconfigs: u64,
    rejections: u64,
    timeouts: u64,
    setup_latency_ns: Histogram,
    reconfig_gap_ns: Histogram,
    attempt_delay_ns: Histogram,
}

/// Wire-unreleasable state a dead box still holds locally: settled with
/// idempotent requests when it rejoins.
#[derive(Default)]
struct StaleDebt {
    // CloseSink owed: (session, sink vci).
    sinks: Vec<(u32, Vci)>,
    // RemoveDest owed: (session, source stream, dest vci).
    sources: Vec<(u32, StreamId, Vci)>,
}

#[derive(Default)]
struct RecoveryStats {
    crashes: u64,
    rejoins: u64,
    probe_misses: u64,
    detect_ns: Histogram,
    reconverge_ns: Histogram,
    timeline: StateTimeline,
}

struct CtlInner {
    directory: Directory,
    sessions: HashMap<u32, SessionRec>,
    pending: HashMap<u32, Sender<SessionMsg>>,
    cell_seq: HashMap<Vci, u32>,
    next_session: u32,
    next_txn: u32,
    next_vci: u32,
    next_seg_seq: u32,
    stats: ControlStats,
    jitter_rng: SmallRng,
    leases: LeaseTable,
    stale: BTreeMap<u32, StaleDebt>,
    recovery: RecoveryStats,
}

/// The control plane of one conference fabric: directory, signalling,
/// session registry and the reconfiguration engine.
pub struct Controller {
    inner: Rc<RefCell<CtlInner>>,
    switch: Rc<Switch>,
    tx: LinkSender<Cell>,
    never_rx: Receiver<SessionMsg>,
    _never_tx: Sender<SessionMsg>,
    config: ControllerConfig,
}

impl Controller {
    /// Spawns the controller on its signalling attachment: `tx` injects
    /// cells into the fabric, `rx` receives the agents' replies, and
    /// `switch` is the fabric's routing table the reconfiguration engine
    /// edits.
    pub fn spawn(
        spawner: &Spawner,
        directory: Directory,
        switch: Rc<Switch>,
        tx: LinkSender<Cell>,
        rx: Receiver<Cell>,
        config: ControllerConfig,
    ) -> Controller {
        let inner = Rc::new(RefCell::new(CtlInner {
            directory,
            sessions: HashMap::new(),
            pending: HashMap::new(),
            cell_seq: HashMap::new(),
            next_session: 1,
            next_txn: 1,
            // Sink VCIs sit far above box-local stream numbers (which
            // start at 1) and below the well-known control VCIs.
            next_vci: 0x1000,
            next_seg_seq: 1,
            stats: ControlStats::default(),
            jitter_rng: SmallRng::seed_from_u64(config.seed),
            leases: LeaseTable::new(),
            stale: BTreeMap::new(),
            recovery: RecoveryStats::default(),
        }));
        let dispatch = inner.clone();
        spawner.spawn("session:controller-rx", async move {
            let mut reasm = Reassembler::new();
            while let Ok(cell) = rx.recv().await {
                let Some((_vci, frame)) = reasm.push(cell) else {
                    continue;
                };
                let Ok(seg) = wire::decode(&frame) else {
                    continue;
                };
                let Some(msg) = SessionMsg::from_segment(&seg) else {
                    continue;
                };
                let waiter = dispatch.borrow_mut().pending.remove(&msg.txn());
                if let Some(w) = waiter {
                    let _ = w.try_send(msg);
                }
            }
        });
        let (never_tx, never_rx) = pandora_sim::channel::<SessionMsg>();
        Controller {
            inner,
            switch,
            tx,
            never_rx,
            _never_tx: never_tx,
            config,
        }
    }

    /// Registers a new session for a source stream the application has
    /// already started at `src`. No sinks yet: grow the session with
    /// [`Controller::add_listener`].
    pub fn open(
        &self,
        src: EndpointId,
        src_stream: StreamId,
        class: StreamClass,
    ) -> Result<u32, SessionError> {
        let mut inner = self.inner.borrow_mut();
        if inner.directory.get(src).is_none() {
            return Err(SessionError::UnknownEndpoint);
        }
        let id = inner.next_session;
        inner.next_session += 1;
        inner.sessions.insert(
            id,
            SessionRec {
                src,
                src_stream,
                class,
                sinks: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Grows the session to one more listener, downstream-first (see the
    /// module docs). The first listener of a session is its call setup
    /// (recorded in the setup-latency histogram); later ones are live
    /// reconfigurations (recorded in the reconfiguration-gap histogram).
    pub async fn add_listener(
        &self,
        session: u32,
        dst: EndpointId,
    ) -> Result<Admitted, SessionError> {
        let t0 = pandora_sim::now();
        let (src, src_stream, class, first) = {
            let inner = self.inner.borrow();
            let s = inner
                .sessions
                .get(&session)
                .ok_or(SessionError::UnknownSession)?;
            (s.src, s.src_stream, s.class, s.sinks.is_empty())
        };
        let (dst_port, dst_ctl) = self.endpoint(dst)?;
        let (_src_port, src_ctl) = self.endpoint(src)?;
        let vci = {
            let mut inner = self.inner.borrow_mut();
            let v = Vci(inner.next_vci);
            inner.next_vci += 1;
            v
        };
        // 1. Downstream: admit and install the sink before any cell can
        //    arrive.
        let reply = self
            .request(dst_ctl, |txn| SessionMsg::OpenSink {
                txn,
                session,
                class,
                vci,
            })
            .await?;
        let granted = match reply {
            SessionMsg::Accept { rate_permille, .. } => rate_permille,
            SessionMsg::Reject { reason, .. } => {
                self.inner.borrow_mut().stats.rejections += 1;
                return Err(SessionError::Rejected(reason));
            }
            _ => return Err(SessionError::Protocol),
        };
        // 2. Fabric route: the path now exists end-to-end, still unused.
        self.switch.route(vci, dst_port, vci);
        // 3. Upstream: grow the source's split on a segment boundary.
        let granted_class = match class {
            StreamClass::Audio => StreamClass::Audio,
            StreamClass::Video { .. } => StreamClass::Video {
                rate_permille: granted,
            },
        };
        let reply = self
            .request(src_ctl, |txn| SessionMsg::AddDest {
                txn,
                session,
                stream: src_stream,
                vci,
                class: granted_class,
            })
            .await;
        match reply {
            Ok(SessionMsg::Done { .. }) => {}
            Ok(SessionMsg::Reject { reason, .. }) => {
                self.rollback_sink(session, dst_ctl, vci).await;
                self.inner.borrow_mut().stats.rejections += 1;
                return Err(SessionError::Rejected(reason));
            }
            Ok(_) => return Err(SessionError::Protocol),
            Err(e) => {
                self.rollback_sink(session, dst_ctl, vci).await;
                return Err(e);
            }
        }
        let elapsed = (pandora_sim::now().as_nanos() - t0.as_nanos()) as f64;
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(s) = inner.sessions.get_mut(&session) {
                s.sinks.push(SinkRec {
                    dst,
                    vci,
                    rate_permille: granted,
                });
            }
            if first {
                inner.stats.setups += 1;
                inner.stats.setup_latency_ns.record(elapsed);
            } else {
                inner.stats.reconfigs += 1;
                inner.stats.reconfig_gap_ns.record(elapsed);
            }
        }
        Ok(Admitted {
            vci,
            rate_permille: granted,
        })
    }

    /// Shrinks the session: removes `dst`'s sink, upstream-first so no
    /// cell is ever in flight toward torn-down state, and the session's
    /// other listeners never glitch (Principle 6).
    pub async fn remove_listener(&self, session: u32, dst: EndpointId) -> Result<(), SessionError> {
        let t0 = pandora_sim::now();
        let (src, src_stream, vci) = {
            let inner = self.inner.borrow();
            let s = inner
                .sessions
                .get(&session)
                .ok_or(SessionError::UnknownSession)?;
            let sink = s
                .sinks
                .iter()
                .find(|k| k.dst == dst)
                .ok_or(SessionError::UnknownListener)?;
            (s.src, s.src_stream, sink.vci)
        };
        let (_src_port, src_ctl) = self.endpoint(src)?;
        let (_dst_port, dst_ctl) = self.endpoint(dst)?;
        // 1. Upstream: stop the copy at the source switch.
        match self
            .request(src_ctl, |txn| SessionMsg::RemoveDest {
                txn,
                session,
                stream: src_stream,
                vci,
            })
            .await?
        {
            SessionMsg::Done { .. } => {}
            _ => return Err(SessionError::Protocol),
        }
        // 2. Fabric route out.
        self.switch.unroute(vci);
        // 3. Downstream: drop the sink and release its admission charge.
        match self
            .request(dst_ctl, |txn| SessionMsg::CloseSink { txn, session, vci })
            .await?
        {
            SessionMsg::Done { .. } => {}
            _ => return Err(SessionError::Protocol),
        }
        let elapsed = (pandora_sim::now().as_nanos() - t0.as_nanos()) as f64;
        let mut inner = self.inner.borrow_mut();
        if let Some(s) = inner.sessions.get_mut(&session) {
            s.sinks.retain(|k| k.vci != vci);
        }
        inner.stats.reconfigs += 1;
        inner.stats.reconfig_gap_ns.record(elapsed);
        Ok(())
    }

    /// Tears the whole session down (every listener, upstream-first),
    /// then forgets it.
    pub async fn close(&self, session: u32) -> Result<(), SessionError> {
        loop {
            let dst = {
                let inner = self.inner.borrow();
                let s = inner
                    .sessions
                    .get(&session)
                    .ok_or(SessionError::UnknownSession)?;
                s.sinks.last().map(|k| k.dst)
            };
            match dst {
                Some(dst) => self.remove_listener(session, dst).await?,
                None => break,
            }
        }
        self.inner.borrow_mut().sessions.remove(&session);
        Ok(())
    }

    /// The rate granted to `dst`'s sink in a session, if present.
    pub fn granted_rate(&self, session: u32, dst: EndpointId) -> Option<u32> {
        self.inner
            .borrow()
            .sessions
            .get(&session)?
            .sinks
            .iter()
            .find(|k| k.dst == dst)
            .map(|k| k.rate_permille)
    }

    /// Number of active listeners in a session (0 for unknown ids).
    pub fn listeners(&self, session: u32) -> usize {
        self.inner
            .borrow()
            .sessions
            .get(&session)
            .map_or(0, |s| s.sinks.len())
    }

    /// Calls set up (first listener added) so far.
    pub fn setups(&self) -> u64 {
        self.inner.borrow().stats.setups
    }

    /// Live reconfigurations (grow beyond the first listener, shrink) so
    /// far.
    pub fn reconfigs(&self) -> u64 {
        self.inner.borrow().stats.reconfigs
    }

    /// Requests refused by agents' admission controllers.
    pub fn rejections(&self) -> u64 {
        self.inner.borrow().stats.rejections
    }

    /// Request attempts that timed out (each retry counts).
    pub fn timeouts(&self) -> u64 {
        self.inner.borrow().stats.timeouts
    }

    /// Renders the control-plane metrics through the shared table
    /// format: session-setup latency and reconfiguration gap, in
    /// milliseconds.
    pub fn metrics_table(&self) -> Table {
        let mut t = Table::new(
            "session control plane",
            &["metric", "n", "p50 ms", "p95 ms", "max ms"],
        );
        let mut inner = self.inner.borrow_mut();
        let stats = &mut inner.stats;
        t.histogram_row("setup latency", &mut stats.setup_latency_ns, 1e6);
        t.histogram_row("reconfig gap", &mut stats.reconfig_gap_ns, 1e6);
        t.histogram_row("attempt delay", &mut stats.attempt_delay_ns, 1e6);
        let recovery = &mut inner.recovery;
        t.histogram_row("crash detect", &mut recovery.detect_ns, 1e6);
        t.histogram_row("reconverge", &mut recovery.reconverge_ns, 1e6);
        t
    }

    /// A deterministic one-line digest of the controller's counters and
    /// histograms, for replay-equality assertions.
    pub fn digest(&self) -> String {
        let mut inner = self.inner.borrow_mut();
        let stats = &mut inner.stats;
        format!(
            "setups={} reconfigs={} rejections={} timeouts={} setup[{};{:.0}] gap[{};{:.0}] attempt[{};{:.0}]",
            stats.setups,
            stats.reconfigs,
            stats.rejections,
            stats.timeouts,
            stats.setup_latency_ns.count(),
            stats.setup_latency_ns.mean(),
            stats.reconfig_gap_ns.count(),
            stats.reconfig_gap_ns.mean(),
            stats.attempt_delay_ns.count(),
            stats.attempt_delay_ns.mean(),
        )
    }

    /// Spawns one lease-probe task per directory endpoint (task
    /// `session:lease:<name>`). Each probe sleeps for the lease's
    /// current backoff, sends a single-attempt `Ping` on the command
    /// path and reports the outcome to the lease; deaths trigger
    /// [`Controller::reconverge`] and revivals from dead trigger the
    /// rejoin cleanup.
    ///
    /// # Panics
    ///
    /// Panics if [`ControllerConfig::lease`] is `None`.
    pub fn spawn_lease_probes(self: &Rc<Self>, spawner: &Spawner) {
        let lcfg = self
            .config
            .lease
            .expect("spawn_lease_probes requires ControllerConfig::lease");
        let endpoints: Vec<(EndpointId, String)> = {
            let inner = self.inner.borrow();
            (0..inner.directory.len() as u32)
                .filter_map(|i| {
                    let id = EndpointId(i);
                    inner.directory.get(id).map(|r| (id, r.name.clone()))
                })
                .collect()
        };
        for (ep, name) in endpoints {
            let ctl = self.clone();
            {
                let mut inner = ctl.inner.borrow_mut();
                inner.leases.grant(ep.0, lcfg);
                // Granting happens during topology build, outside any
                // task, where the executor clock is not yet current.
                let now = pandora_sim::try_now().unwrap_or(SimTime::ZERO).as_nanos();
                inner.recovery.timeline.record(now, &name, "live");
            }
            spawner.spawn(&format!("session:lease:{name}"), async move {
                let mut last_renewal = pandora_sim::now();
                loop {
                    let wait = ctl
                        .inner
                        .borrow()
                        .leases
                        .get(ep.0)
                        .map_or(lcfg.interval, |l| l.next_probe_in());
                    pandora_sim::delay(wait).await;
                    let Ok((_port, target)) = ctl.endpoint(ep) else {
                        return;
                    };
                    let outcome = ctl
                        .request_once(target, &|txn| SessionMsg::Ping { txn }, lcfg.interval)
                        .await;
                    match outcome {
                        Ok(SessionMsg::Pong { .. }) => {
                            last_renewal = pandora_sim::now();
                            let event = {
                                let mut inner = ctl.inner.borrow_mut();
                                let event = inner.leases.get_mut(ep.0).and_then(|l| l.renew());
                                if event.is_some() {
                                    let now = pandora_sim::now().as_nanos();
                                    inner.recovery.timeline.record(now, &name, "live");
                                }
                                event
                            };
                            if let Some(LeaseEvent::Revived { was_dead: true }) = event {
                                ctl.settle_rejoin(ep).await;
                            }
                        }
                        Err(SessionError::Closed) => return,
                        // A wrong-typed reply counts as a miss, like a
                        // timeout: the probe only trusts a Pong.
                        Ok(_) | Err(_) => {
                            let event = {
                                let mut inner = ctl.inner.borrow_mut();
                                inner.recovery.probe_misses += 1;
                                let event = inner.leases.get_mut(ep.0).and_then(|l| l.miss());
                                let now = pandora_sim::now().as_nanos();
                                match event {
                                    Some(LeaseEvent::Suspected) => {
                                        inner.recovery.timeline.record(now, &name, "suspect");
                                    }
                                    Some(LeaseEvent::Died) => {
                                        inner.recovery.timeline.record(now, &name, "dead");
                                        let detect = now.saturating_sub(last_renewal.as_nanos());
                                        inner.recovery.detect_ns.record(detect as f64);
                                    }
                                    _ => {}
                                }
                                event
                            };
                            if let Some(LeaseEvent::Died) = event {
                                ctl.reconverge(ep).await;
                            }
                        }
                    }
                }
            });
        }
    }

    /// Crash reconvergence: tears the dead box out of every session it
    /// participates in, shrinking upstream-first so surviving streams
    /// never glitch (Principle 6), releases the survivors' admission
    /// charges, sweeps the fabric port and records the dead box's own
    /// unreleasable state as stale debt for the rejoin path.
    pub async fn reconverge(&self, dead: EndpointId) {
        let t0 = pandora_sim::now();
        let Ok((dead_port, dead_ctl)) = self.endpoint(dead) else {
            return;
        };
        // Snapshot the work in ascending session order (determinism),
        // then signal without holding the borrow across awaits.
        let mut as_listener: Vec<(u32, EndpointId, StreamId, Vci)> = Vec::new();
        let mut as_source: Vec<SourceTeardown> = Vec::new();
        {
            let inner = self.inner.borrow();
            let mut ids: Vec<u32> = inner.sessions.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let s = &inner.sessions[&id];
                if s.src == dead {
                    as_source.push((
                        id,
                        s.src_stream,
                        s.sinks.iter().map(|k| (k.dst, k.vci)).collect(),
                    ));
                } else {
                    for k in s.sinks.iter().filter(|k| k.dst == dead) {
                        as_listener.push((id, s.src, s.src_stream, k.vci));
                    }
                }
            }
        }
        // Dead box was a listener: upstream-first shrink, skipping the
        // unreachable CloseSink (owed as stale debt instead).
        for (session, src, src_stream, vci) in as_listener {
            if let Ok((_p, src_ctl)) = self.endpoint(src) {
                let _ = self
                    .request(src_ctl, |txn| SessionMsg::RemoveDest {
                        txn,
                        session,
                        stream: src_stream,
                        vci,
                    })
                    .await;
            }
            self.switch.unroute(vci);
            let mut inner = self.inner.borrow_mut();
            if let Some(s) = inner.sessions.get_mut(&session) {
                s.sinks.retain(|k| k.vci != vci);
            }
            inner.stats.reconfigs += 1;
            inner
                .stale
                .entry(dead.0)
                .or_default()
                .sinks
                .push((session, vci));
        }
        // Dead box was the source: the stream is gone; drop each leg's
        // fabric route, refund each surviving listener, forget the
        // session. The dead source's own per-copy charges become debt.
        for (session, src_stream, sinks) in as_source {
            for (dst, vci) in sinks {
                self.switch.unroute(vci);
                if let Ok((_p, dst_ctl)) = self.endpoint(dst) {
                    let _ = self
                        .request(dst_ctl, |txn| SessionMsg::CloseSink { txn, session, vci })
                        .await;
                }
                let mut inner = self.inner.borrow_mut();
                inner.stats.reconfigs += 1;
                inner
                    .stale
                    .entry(dead.0)
                    .or_default()
                    .sources
                    .push((session, src_stream, vci));
            }
            self.inner.borrow_mut().sessions.remove(&session);
        }
        // Fabric backstop: sweep any stray legs toward the dead port,
        // then re-install the well-known control circuit so the rejoin
        // Pings can reach a restarted box.
        self.switch.unroute_port(dead_port);
        self.switch.route(dead_ctl, dead_port, dead_ctl);
        let mut inner = self.inner.borrow_mut();
        inner.recovery.crashes += 1;
        let elapsed = (pandora_sim::now().as_nanos() - t0.as_nanos()) as f64;
        inner.recovery.reconverge_ns.record(elapsed);
    }

    /// Settles a rejoined box's stale debt: the sinks and source copies
    /// it still holds from before the crash are released with idempotent
    /// CloseSink/RemoveDest requests, refunding its admission budgets.
    /// The box then re-enters conferences through the normal
    /// [`Controller::add_listener`] path.
    async fn settle_rejoin(&self, ep: EndpointId) {
        let Ok((_port, target)) = self.endpoint(ep) else {
            return;
        };
        let debt = self.inner.borrow_mut().stale.remove(&ep.0);
        if let Some(debt) = debt {
            for (session, vci) in debt.sinks {
                let _ = self
                    .request(target, |txn| SessionMsg::CloseSink { txn, session, vci })
                    .await;
            }
            for (session, stream, vci) in debt.sources {
                let _ = self
                    .request(target, |txn| SessionMsg::RemoveDest {
                        txn,
                        session,
                        stream,
                        vci,
                    })
                    .await;
            }
        }
        self.inner.borrow_mut().recovery.rejoins += 1;
    }

    /// The lease state of an endpoint, if the controller holds one.
    pub fn lease_state(&self, ep: EndpointId) -> Option<LeaseState> {
        self.inner.borrow().leases.get(ep.0).map(|l| l.state())
    }

    /// Deterministic multi-line digest of every lease's counters.
    pub fn lease_digest(&self) -> String {
        self.inner.borrow().leases.digest()
    }

    /// Lease deaths reconverged so far.
    pub fn crashes(&self) -> u64 {
        self.inner.borrow().recovery.crashes
    }

    /// Dead leases revived (stale debt settled) so far.
    pub fn rejoins(&self) -> u64 {
        self.inner.borrow().recovery.rejoins
    }

    /// Heartbeat probes that went unanswered.
    pub fn probe_misses(&self) -> u64 {
        self.inner.borrow().recovery.probe_misses
    }

    /// Outstanding stale-debt entries owed by an endpoint (0 once its
    /// rejoin has settled).
    pub fn stale_debt(&self, ep: EndpointId) -> usize {
        self.inner
            .borrow()
            .stale
            .get(&ep.0)
            .map_or(0, |d| d.sinks.len() + d.sources.len())
    }

    /// Deterministic one-line digest of the recovery counters and
    /// histograms, for replay-equality assertions.
    pub fn recovery_digest(&self) -> String {
        let mut inner = self.inner.borrow_mut();
        let r = &mut inner.recovery;
        format!(
            "crashes={} rejoins={} probe_misses={} detect[{};{:.0}] reconverge[{};{:.0}]",
            r.crashes,
            r.rejoins,
            r.probe_misses,
            r.detect_ns.count(),
            r.detect_ns.mean(),
            r.reconverge_ns.count(),
            r.reconverge_ns.mean(),
        )
    }

    /// The lease state timeline (`t=<ns> <name> -> <state>` lines), for
    /// recovery-ordering assertions.
    pub fn recovery_timeline(&self) -> String {
        self.inner.borrow().recovery.timeline.to_text()
    }

    /// Mean crash-detection latency (last renewal → death declared) in
    /// virtual nanoseconds; 0 before the first detection. Deterministic:
    /// the histogram is fed from the sim clock.
    pub fn detect_latency_mean_ns(&self) -> f64 {
        self.inner.borrow().recovery.detect_ns.mean()
    }

    /// Mean reconvergence time (death declared → fabric swept) in
    /// virtual nanoseconds; 0 before the first crash.
    pub fn reconverge_mean_ns(&self) -> f64 {
        self.inner.borrow().recovery.reconverge_ns.mean()
    }

    fn endpoint(&self, id: EndpointId) -> Result<(usize, Vci), SessionError> {
        let inner = self.inner.borrow();
        let rec = inner
            .directory
            .get(id)
            .ok_or(SessionError::UnknownEndpoint)?;
        Ok((rec.port, rec.control_vci))
    }

    async fn rollback_sink(&self, session: u32, dst_ctl: Vci, vci: Vci) {
        self.switch.unroute(vci);
        let _ = self
            .request(dst_ctl, |txn| SessionMsg::CloseSink { txn, session, vci })
            .await;
    }

    /// One request-reply exchange with timeout and exponential-backoff
    /// retry. Fresh transaction ids per attempt; agent idempotency makes
    /// retries safe.
    async fn request<F: Fn(u32) -> SessionMsg>(
        &self,
        target: Vci,
        build: F,
    ) -> Result<SessionMsg, SessionError> {
        for attempt in 0..=self.config.retries {
            let wait = self.attempt_wait(attempt);
            match self.request_once(target, &build, wait).await {
                Err(SessionError::Timeout) => continue,
                other => return other,
            }
        }
        Err(SessionError::Timeout)
    }

    /// The reply wait for a given attempt: `reply_timeout * 2^attempt`
    /// capped at `backoff_cap`, plus up to `jitter_permille` thousandths
    /// of seeded jitter. Every computed wait is recorded in the
    /// per-attempt delay histogram.
    fn attempt_wait(&self, attempt: u32) -> SimDuration {
        let base = self.config.reply_timeout.as_nanos();
        let cap = self.config.backoff_cap.as_nanos().max(base);
        let backed = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let span = backed / 1_000 * u64::from(self.config.jitter_permille);
        let mut inner = self.inner.borrow_mut();
        let jitter = if span == 0 {
            0
        } else {
            inner.jitter_rng.gen_range(0..=span)
        };
        let wait = SimDuration(backed.saturating_add(jitter));
        inner.stats.attempt_delay_ns.record(wait.as_nanos() as f64);
        wait
    }

    /// A single request attempt with an explicit reply wait. The lease
    /// probes use this directly (one attempt per heartbeat — a missed
    /// probe is lease evidence, not something to retry past).
    async fn request_once<F: Fn(u32) -> SessionMsg>(
        &self,
        target: Vci,
        build: &F,
        wait: SimDuration,
    ) -> Result<SessionMsg, SessionError> {
        let (txn, reply_rx) = {
            let mut inner = self.inner.borrow_mut();
            let txn = inner.next_txn;
            inner.next_txn += 1;
            let (tx, rx) = pandora_sim::buffered::<SessionMsg>(1);
            inner.pending.insert(txn, tx);
            (txn, rx)
        };
        self.send_control(target, &build(txn)).await?;
        let deadline = pandora_sim::now() + wait;
        match alt2_deadline(&reply_rx, &self.never_rx, deadline).await {
            Some(Ok(Either2::A(reply))) => Ok(reply),
            None => {
                let mut inner = self.inner.borrow_mut();
                inner.pending.remove(&txn);
                inner.stats.timeouts += 1;
                Err(SessionError::Timeout)
            }
            _ => Err(SessionError::Closed),
        }
    }

    async fn send_control(&self, vci: Vci, msg: &SessionMsg) -> Result<(), SessionError> {
        let (bytes, first_seq) = {
            let mut inner = self.inner.borrow_mut();
            let seq = inner.next_seg_seq;
            inner.next_seg_seq += 1;
            let bytes = wire::encode(&msg.to_segment(seq));
            let first_seq = *inner.cell_seq.entry(vci).or_insert(0);
            (bytes, first_seq)
        };
        let cells = segment_to_cells(vci, &bytes, first_seq);
        self.inner
            .borrow_mut()
            .cell_seq
            .insert(vci, first_seq.wrapping_add(cells.len() as u32));
        for cell in cells {
            self.tx.send(cell).await.map_err(|_| SessionError::Closed)?;
        }
        Ok(())
    }
}

struct AgentInner {
    admission: AdmissionController,
    // Granted sinks by VCI (value = granted class, for the refund).
    sinks: HashMap<Vci, StreamClass>,
    // Charged source copies by (stream, vci).
    sources: HashMap<(StreamId, Vci), StreamClass>,
    handled: u64,
}

/// Shared view of one box agent's admission state.
#[derive(Clone)]
pub struct AgentStats {
    inner: Rc<RefCell<AgentInner>>,
}

impl AgentStats {
    /// Requests admitted (including degraded) by this agent.
    pub fn admitted(&self) -> u64 {
        self.inner.borrow().admission.admitted()
    }

    /// Requests admitted only after degrading.
    pub fn degraded(&self) -> u64 {
        self.inner.borrow().admission.degraded()
    }

    /// Requests rejected by this agent.
    pub fn rejected(&self) -> u64 {
        self.inner.borrow().admission.rejected()
    }

    /// Control messages handled.
    pub fn handled(&self) -> u64 {
        self.inner.borrow().handled
    }

    /// Sinks currently installed.
    pub fn active_sinks(&self) -> usize {
        self.inner.borrow().sinks.len()
    }
}

/// Spawns a box's session agent: routes inbound control (arriving on
/// `control_vci`) to the box's session tap, executes requests against
/// the local switch and admission budgets, and replies on `reply_vci`.
///
/// # Panics
///
/// Panics if the box's session tap was already taken.
pub fn spawn_agent(
    spawner: &Spawner,
    boxy: Rc<PandoraBox>,
    caps: Capabilities,
    control_vci: Vci,
    reply_vci: Vci,
) -> AgentStats {
    let rx = boxy
        .take_session_rx()
        .expect("session tap already taken — one agent per box");
    // Inbound control lands on the session output handler…
    boxy.set_route(
        control_vci.stream(),
        StreamKind::Control,
        vec![OutputId::Session],
    );
    // …and replies leave on a dedicated control stream toward the
    // controller's well-known reply VCI.
    let out_stream = boxy.alloc_stream();
    boxy.set_route(
        out_stream,
        StreamKind::Control,
        vec![OutputId::Network(reply_vci)],
    );
    let injector = boxy.injector();
    let stats = AgentStats {
        inner: Rc::new(RefCell::new(AgentInner {
            admission: AdmissionController::new(caps),
            sinks: HashMap::new(),
            sources: HashMap::new(),
            handled: 0,
        })),
    };
    let st = stats.clone();
    let name = boxy.config.name;
    spawner.spawn(&format!("{name}:session-agent"), async move {
        let mut seq: u32 = 0;
        while let Ok((_stream, seg)) = rx.recv().await {
            let Some(msg) = SessionMsg::from_segment(&seg) else {
                continue;
            };
            st.inner.borrow_mut().handled += 1;
            let Some(reply) = handle(&boxy, &st, msg) else {
                continue;
            };
            seq += 1;
            if injector
                .send((out_stream, reply.to_segment(seq)))
                .await
                .is_err()
            {
                return;
            }
        }
    });
    stats
}

/// Executes one request against the local box; `None` for messages that
/// need no reply (a controller-side message echoed back to us).
fn handle(boxy: &PandoraBox, stats: &AgentStats, msg: SessionMsg) -> Option<SessionMsg> {
    let mut inner = stats.inner.borrow_mut();
    match msg {
        SessionMsg::OpenSink {
            txn,
            session,
            class,
            vci,
        } => {
            // Idempotent: a retried request for an installed sink is
            // re-acknowledged without a second charge.
            if let Some(granted) = inner.sinks.get(&vci) {
                return Some(SessionMsg::Accept {
                    txn,
                    session,
                    vci,
                    rate_permille: granted.rate_permille(),
                });
            }
            let decision = inner.admission.admit_sink(class);
            let granted_rate = match decision {
                Decision::Admit => class.rate_permille(),
                Decision::Degrade { rate_permille } => rate_permille,
                Decision::Reject(reason) => {
                    return Some(SessionMsg::Reject {
                        txn,
                        session,
                        reason,
                    })
                }
            };
            let (kind, dest, granted) = match class {
                StreamClass::Audio => (StreamKind::Audio, OutputId::Audio, StreamClass::Audio),
                StreamClass::Video { .. } => (
                    StreamKind::Video,
                    OutputId::Mixer,
                    StreamClass::Video {
                        rate_permille: granted_rate,
                    },
                ),
            };
            boxy.set_route(vci.stream(), kind, vec![dest]);
            inner.sinks.insert(vci, granted);
            Some(SessionMsg::Accept {
                txn,
                session,
                vci,
                rate_permille: granted_rate,
            })
        }
        SessionMsg::AddDest {
            txn,
            session,
            stream,
            vci,
            class,
        } => {
            if inner.sources.contains_key(&(stream, vci)) {
                return Some(SessionMsg::Done { txn, session });
            }
            match inner.admission.admit_source(class) {
                Decision::Admit | Decision::Degrade { .. } => {
                    // The session layer owns a managed source stream's
                    // routing: the first copy installs the table entry
                    // (AddDest on a routeless stream is a no-op), later
                    // copies grow it between segments (Principle 6).
                    let first = !inner.sources.keys().any(|&(s, _)| s == stream);
                    if first {
                        let kind = match class {
                            StreamClass::Audio => StreamKind::Audio,
                            StreamClass::Video { .. } => StreamKind::Video,
                        };
                        boxy.set_route(stream, kind, vec![OutputId::Network(vci)]);
                    } else {
                        boxy.add_dest(stream, OutputId::Network(vci));
                    }
                    inner.sources.insert((stream, vci), class);
                    Some(SessionMsg::Done { txn, session })
                }
                Decision::Reject(reason) => Some(SessionMsg::Reject {
                    txn,
                    session,
                    reason,
                }),
            }
        }
        SessionMsg::RemoveDest {
            txn,
            session,
            stream,
            vci,
        } => {
            if let Some(class) = inner.sources.remove(&(stream, vci)) {
                inner.admission.release_source(class);
                boxy.remove_dest(stream, OutputId::Network(vci));
            }
            Some(SessionMsg::Done { txn, session })
        }
        SessionMsg::CloseSink { txn, session, vci } => {
            if let Some(class) = inner.sinks.remove(&vci) {
                inner.admission.release_sink(class);
                boxy.clear_route(vci.stream());
            }
            Some(SessionMsg::Done { txn, session })
        }
        // A heartbeat needs no local state: answering proves the whole
        // box-side control pipeline (network in, switch PRI-ALT, agent
        // task, network out) is alive.
        SessionMsg::Ping { txn } => Some(SessionMsg::Pong { txn }),
        // Controller-side messages need no agent reply.
        SessionMsg::Accept { .. }
        | SessionMsg::Reject { .. }
        | SessionMsg::Done { .. }
        | SessionMsg::Pong { .. } => None,
    }
}
