//! The session controller and per-box agents.
//!
//! One [`Controller`] owns a star fabric's routing table and directory;
//! each participating box runs an agent task (spawned by
//! [`spawn_agent`]) that executes control requests locally — admission
//! through its [`AdmissionController`], route changes through the box's
//! switch-command channel, which the switch takes via PRI ALT between
//! segments (Principles 4 and 6).
//!
//! ## Reconfiguration ordering (glitch-free growth and shrink)
//!
//! Growing a split installs state strictly downstream-first:
//!
//! 1. `OpenSink` at the destination — admission, then the sink's switch
//!    route, before a single cell can arrive;
//! 2. the fabric VCI route — the path now exists end-to-end, unused;
//! 3. `AddDest` at the source — the switch table grows between two
//!    segments, so the new copy starts on a segment boundary and the
//!    stream's existing copies are untouched (Principle 6) and remain
//!    upstream-independent (Principle 5).
//!
//! Shrinking reverses the order (source first, then fabric, then sink),
//! so cells are never in flight toward missing state. Requests are
//! idempotent at the agents, which makes the controller's
//! timeout-and-retry loop safe under signalling faults (Principle 4
//! keeps the command path live; retries cover lost cells).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pandora::{OutputId, PandoraBox, StreamKind};
use pandora_atm::{segment_to_cells, Cell, Reassembler, Switch, Vci};
use pandora_metrics::{Histogram, Table};
use pandora_segment::{wire, StreamId};
use pandora_sim::{alt2_deadline, Either2, LinkSender, Receiver, Sender, SimDuration, Spawner};

use crate::admission::{AdmissionController, Decision};
use crate::directory::{Capabilities, Directory, EndpointId};
use crate::proto::{RejectReason, SessionMsg, StreamClass};

/// A control-plane operation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The remote agent refused admission.
    Rejected(RejectReason),
    /// No reply within the configured timeout, after retries.
    Timeout,
    /// The session id is not registered.
    UnknownSession,
    /// The endpoint id is not in the directory.
    UnknownEndpoint,
    /// The named destination has no sink in this session.
    UnknownListener,
    /// The signalling attachment is closed.
    Closed,
    /// The agent replied with an unexpected message.
    Protocol,
}

/// A granted sink: where the stream will arrive and at what rate.
#[derive(Debug, Clone, Copy)]
pub struct Admitted {
    /// The fabric VCI carrying the stream to the new listener.
    pub vci: Vci,
    /// Granted rate in thousandths of full rate (1000 unless the video
    /// was degraded at admission).
    pub rate_permille: u32,
}

/// Controller tunables.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How long to wait for an agent's reply before retrying.
    pub reply_timeout: SimDuration,
    /// Retries after the first attempt times out.
    pub retries: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            reply_timeout: SimDuration::from_millis(500),
            retries: 2,
        }
    }
}

struct SinkRec {
    dst: EndpointId,
    vci: Vci,
    rate_permille: u32,
}

struct SessionRec {
    src: EndpointId,
    src_stream: StreamId,
    class: StreamClass,
    sinks: Vec<SinkRec>,
}

#[derive(Default)]
struct ControlStats {
    setups: u64,
    reconfigs: u64,
    rejections: u64,
    timeouts: u64,
    setup_latency_ns: Histogram,
    reconfig_gap_ns: Histogram,
}

struct CtlInner {
    directory: Directory,
    sessions: HashMap<u32, SessionRec>,
    pending: HashMap<u32, Sender<SessionMsg>>,
    cell_seq: HashMap<Vci, u32>,
    next_session: u32,
    next_txn: u32,
    next_vci: u32,
    next_seg_seq: u32,
    stats: ControlStats,
}

/// The control plane of one conference fabric: directory, signalling,
/// session registry and the reconfiguration engine.
pub struct Controller {
    inner: Rc<RefCell<CtlInner>>,
    switch: Rc<Switch>,
    tx: LinkSender<Cell>,
    never_rx: Receiver<SessionMsg>,
    _never_tx: Sender<SessionMsg>,
    config: ControllerConfig,
}

impl Controller {
    /// Spawns the controller on its signalling attachment: `tx` injects
    /// cells into the fabric, `rx` receives the agents' replies, and
    /// `switch` is the fabric's routing table the reconfiguration engine
    /// edits.
    pub fn spawn(
        spawner: &Spawner,
        directory: Directory,
        switch: Rc<Switch>,
        tx: LinkSender<Cell>,
        rx: Receiver<Cell>,
        config: ControllerConfig,
    ) -> Controller {
        let inner = Rc::new(RefCell::new(CtlInner {
            directory,
            sessions: HashMap::new(),
            pending: HashMap::new(),
            cell_seq: HashMap::new(),
            next_session: 1,
            next_txn: 1,
            // Sink VCIs sit far above box-local stream numbers (which
            // start at 1) and below the well-known control VCIs.
            next_vci: 0x1000,
            next_seg_seq: 1,
            stats: ControlStats::default(),
        }));
        let dispatch = inner.clone();
        spawner.spawn("session:controller-rx", async move {
            let mut reasm = Reassembler::new();
            while let Ok(cell) = rx.recv().await {
                let Some((_vci, frame)) = reasm.push(cell) else {
                    continue;
                };
                let Ok(seg) = wire::decode(&frame) else {
                    continue;
                };
                let Some(msg) = SessionMsg::from_segment(&seg) else {
                    continue;
                };
                let waiter = dispatch.borrow_mut().pending.remove(&msg.txn());
                if let Some(w) = waiter {
                    let _ = w.try_send(msg);
                }
            }
        });
        let (never_tx, never_rx) = pandora_sim::channel::<SessionMsg>();
        Controller {
            inner,
            switch,
            tx,
            never_rx,
            _never_tx: never_tx,
            config,
        }
    }

    /// Registers a new session for a source stream the application has
    /// already started at `src`. No sinks yet: grow the session with
    /// [`Controller::add_listener`].
    pub fn open(
        &self,
        src: EndpointId,
        src_stream: StreamId,
        class: StreamClass,
    ) -> Result<u32, SessionError> {
        let mut inner = self.inner.borrow_mut();
        if inner.directory.get(src).is_none() {
            return Err(SessionError::UnknownEndpoint);
        }
        let id = inner.next_session;
        inner.next_session += 1;
        inner.sessions.insert(
            id,
            SessionRec {
                src,
                src_stream,
                class,
                sinks: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Grows the session to one more listener, downstream-first (see the
    /// module docs). The first listener of a session is its call setup
    /// (recorded in the setup-latency histogram); later ones are live
    /// reconfigurations (recorded in the reconfiguration-gap histogram).
    pub async fn add_listener(
        &self,
        session: u32,
        dst: EndpointId,
    ) -> Result<Admitted, SessionError> {
        let t0 = pandora_sim::now();
        let (src, src_stream, class, first) = {
            let inner = self.inner.borrow();
            let s = inner
                .sessions
                .get(&session)
                .ok_or(SessionError::UnknownSession)?;
            (s.src, s.src_stream, s.class, s.sinks.is_empty())
        };
        let (dst_port, dst_ctl) = self.endpoint(dst)?;
        let (_src_port, src_ctl) = self.endpoint(src)?;
        let vci = {
            let mut inner = self.inner.borrow_mut();
            let v = Vci(inner.next_vci);
            inner.next_vci += 1;
            v
        };
        // 1. Downstream: admit and install the sink before any cell can
        //    arrive.
        let reply = self
            .request(dst_ctl, |txn| SessionMsg::OpenSink {
                txn,
                session,
                class,
                vci,
            })
            .await?;
        let granted = match reply {
            SessionMsg::Accept { rate_permille, .. } => rate_permille,
            SessionMsg::Reject { reason, .. } => {
                self.inner.borrow_mut().stats.rejections += 1;
                return Err(SessionError::Rejected(reason));
            }
            _ => return Err(SessionError::Protocol),
        };
        // 2. Fabric route: the path now exists end-to-end, still unused.
        self.switch.route(vci, dst_port, vci);
        // 3. Upstream: grow the source's split on a segment boundary.
        let granted_class = match class {
            StreamClass::Audio => StreamClass::Audio,
            StreamClass::Video { .. } => StreamClass::Video {
                rate_permille: granted,
            },
        };
        let reply = self
            .request(src_ctl, |txn| SessionMsg::AddDest {
                txn,
                session,
                stream: src_stream,
                vci,
                class: granted_class,
            })
            .await;
        match reply {
            Ok(SessionMsg::Done { .. }) => {}
            Ok(SessionMsg::Reject { reason, .. }) => {
                self.rollback_sink(session, dst_ctl, vci).await;
                self.inner.borrow_mut().stats.rejections += 1;
                return Err(SessionError::Rejected(reason));
            }
            Ok(_) => return Err(SessionError::Protocol),
            Err(e) => {
                self.rollback_sink(session, dst_ctl, vci).await;
                return Err(e);
            }
        }
        let elapsed = (pandora_sim::now().as_nanos() - t0.as_nanos()) as f64;
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(s) = inner.sessions.get_mut(&session) {
                s.sinks.push(SinkRec {
                    dst,
                    vci,
                    rate_permille: granted,
                });
            }
            if first {
                inner.stats.setups += 1;
                inner.stats.setup_latency_ns.record(elapsed);
            } else {
                inner.stats.reconfigs += 1;
                inner.stats.reconfig_gap_ns.record(elapsed);
            }
        }
        Ok(Admitted {
            vci,
            rate_permille: granted,
        })
    }

    /// Shrinks the session: removes `dst`'s sink, upstream-first so no
    /// cell is ever in flight toward torn-down state, and the session's
    /// other listeners never glitch (Principle 6).
    pub async fn remove_listener(&self, session: u32, dst: EndpointId) -> Result<(), SessionError> {
        let t0 = pandora_sim::now();
        let (src, src_stream, vci) = {
            let inner = self.inner.borrow();
            let s = inner
                .sessions
                .get(&session)
                .ok_or(SessionError::UnknownSession)?;
            let sink = s
                .sinks
                .iter()
                .find(|k| k.dst == dst)
                .ok_or(SessionError::UnknownListener)?;
            (s.src, s.src_stream, sink.vci)
        };
        let (_src_port, src_ctl) = self.endpoint(src)?;
        let (_dst_port, dst_ctl) = self.endpoint(dst)?;
        // 1. Upstream: stop the copy at the source switch.
        match self
            .request(src_ctl, |txn| SessionMsg::RemoveDest {
                txn,
                session,
                stream: src_stream,
                vci,
            })
            .await?
        {
            SessionMsg::Done { .. } => {}
            _ => return Err(SessionError::Protocol),
        }
        // 2. Fabric route out.
        self.switch.unroute(vci);
        // 3. Downstream: drop the sink and release its admission charge.
        match self
            .request(dst_ctl, |txn| SessionMsg::CloseSink { txn, session, vci })
            .await?
        {
            SessionMsg::Done { .. } => {}
            _ => return Err(SessionError::Protocol),
        }
        let elapsed = (pandora_sim::now().as_nanos() - t0.as_nanos()) as f64;
        let mut inner = self.inner.borrow_mut();
        if let Some(s) = inner.sessions.get_mut(&session) {
            s.sinks.retain(|k| k.vci != vci);
        }
        inner.stats.reconfigs += 1;
        inner.stats.reconfig_gap_ns.record(elapsed);
        Ok(())
    }

    /// Tears the whole session down (every listener, upstream-first),
    /// then forgets it.
    pub async fn close(&self, session: u32) -> Result<(), SessionError> {
        loop {
            let dst = {
                let inner = self.inner.borrow();
                let s = inner
                    .sessions
                    .get(&session)
                    .ok_or(SessionError::UnknownSession)?;
                s.sinks.last().map(|k| k.dst)
            };
            match dst {
                Some(dst) => self.remove_listener(session, dst).await?,
                None => break,
            }
        }
        self.inner.borrow_mut().sessions.remove(&session);
        Ok(())
    }

    /// The rate granted to `dst`'s sink in a session, if present.
    pub fn granted_rate(&self, session: u32, dst: EndpointId) -> Option<u32> {
        self.inner
            .borrow()
            .sessions
            .get(&session)?
            .sinks
            .iter()
            .find(|k| k.dst == dst)
            .map(|k| k.rate_permille)
    }

    /// Number of active listeners in a session (0 for unknown ids).
    pub fn listeners(&self, session: u32) -> usize {
        self.inner
            .borrow()
            .sessions
            .get(&session)
            .map_or(0, |s| s.sinks.len())
    }

    /// Calls set up (first listener added) so far.
    pub fn setups(&self) -> u64 {
        self.inner.borrow().stats.setups
    }

    /// Live reconfigurations (grow beyond the first listener, shrink) so
    /// far.
    pub fn reconfigs(&self) -> u64 {
        self.inner.borrow().stats.reconfigs
    }

    /// Requests refused by agents' admission controllers.
    pub fn rejections(&self) -> u64 {
        self.inner.borrow().stats.rejections
    }

    /// Request attempts that timed out (each retry counts).
    pub fn timeouts(&self) -> u64 {
        self.inner.borrow().stats.timeouts
    }

    /// Renders the control-plane metrics through the shared table
    /// format: session-setup latency and reconfiguration gap, in
    /// milliseconds.
    pub fn metrics_table(&self) -> Table {
        let mut t = Table::new(
            "session control plane",
            &["metric", "n", "p50 ms", "p95 ms", "max ms"],
        );
        let mut inner = self.inner.borrow_mut();
        let stats = &mut inner.stats;
        t.histogram_row("setup latency", &mut stats.setup_latency_ns, 1e6);
        t.histogram_row("reconfig gap", &mut stats.reconfig_gap_ns, 1e6);
        t
    }

    /// A deterministic one-line digest of the controller's counters and
    /// histograms, for replay-equality assertions.
    pub fn digest(&self) -> String {
        let mut inner = self.inner.borrow_mut();
        let stats = &mut inner.stats;
        format!(
            "setups={} reconfigs={} rejections={} timeouts={} setup[{};{:.0}] gap[{};{:.0}]",
            stats.setups,
            stats.reconfigs,
            stats.rejections,
            stats.timeouts,
            stats.setup_latency_ns.count(),
            stats.setup_latency_ns.mean(),
            stats.reconfig_gap_ns.count(),
            stats.reconfig_gap_ns.mean(),
        )
    }

    fn endpoint(&self, id: EndpointId) -> Result<(usize, Vci), SessionError> {
        let inner = self.inner.borrow();
        let rec = inner
            .directory
            .get(id)
            .ok_or(SessionError::UnknownEndpoint)?;
        Ok((rec.port, rec.control_vci))
    }

    async fn rollback_sink(&self, session: u32, dst_ctl: Vci, vci: Vci) {
        self.switch.unroute(vci);
        let _ = self
            .request(dst_ctl, |txn| SessionMsg::CloseSink { txn, session, vci })
            .await;
    }

    /// One request-reply exchange with timeout and retry. Fresh
    /// transaction ids per attempt; agent idempotency makes retries safe.
    async fn request<F: Fn(u32) -> SessionMsg>(
        &self,
        target: Vci,
        build: F,
    ) -> Result<SessionMsg, SessionError> {
        for _attempt in 0..=self.config.retries {
            let (txn, reply_rx) = {
                let mut inner = self.inner.borrow_mut();
                let txn = inner.next_txn;
                inner.next_txn += 1;
                let (tx, rx) = pandora_sim::buffered::<SessionMsg>(1);
                inner.pending.insert(txn, tx);
                (txn, rx)
            };
            self.send_control(target, &build(txn)).await?;
            let deadline = pandora_sim::now() + self.config.reply_timeout;
            match alt2_deadline(&reply_rx, &self.never_rx, deadline).await {
                Some(Ok(Either2::A(reply))) => return Ok(reply),
                None => {
                    let mut inner = self.inner.borrow_mut();
                    inner.pending.remove(&txn);
                    inner.stats.timeouts += 1;
                }
                _ => return Err(SessionError::Closed),
            }
        }
        Err(SessionError::Timeout)
    }

    async fn send_control(&self, vci: Vci, msg: &SessionMsg) -> Result<(), SessionError> {
        let (bytes, first_seq) = {
            let mut inner = self.inner.borrow_mut();
            let seq = inner.next_seg_seq;
            inner.next_seg_seq += 1;
            let bytes = wire::encode(&msg.to_segment(seq));
            let first_seq = *inner.cell_seq.entry(vci).or_insert(0);
            (bytes, first_seq)
        };
        let cells = segment_to_cells(vci, &bytes, first_seq);
        self.inner
            .borrow_mut()
            .cell_seq
            .insert(vci, first_seq.wrapping_add(cells.len() as u32));
        for cell in cells {
            self.tx.send(cell).await.map_err(|_| SessionError::Closed)?;
        }
        Ok(())
    }
}

struct AgentInner {
    admission: AdmissionController,
    // Granted sinks by VCI (value = granted class, for the refund).
    sinks: HashMap<Vci, StreamClass>,
    // Charged source copies by (stream, vci).
    sources: HashMap<(StreamId, Vci), StreamClass>,
    handled: u64,
}

/// Shared view of one box agent's admission state.
#[derive(Clone)]
pub struct AgentStats {
    inner: Rc<RefCell<AgentInner>>,
}

impl AgentStats {
    /// Requests admitted (including degraded) by this agent.
    pub fn admitted(&self) -> u64 {
        self.inner.borrow().admission.admitted()
    }

    /// Requests admitted only after degrading.
    pub fn degraded(&self) -> u64 {
        self.inner.borrow().admission.degraded()
    }

    /// Requests rejected by this agent.
    pub fn rejected(&self) -> u64 {
        self.inner.borrow().admission.rejected()
    }

    /// Control messages handled.
    pub fn handled(&self) -> u64 {
        self.inner.borrow().handled
    }

    /// Sinks currently installed.
    pub fn active_sinks(&self) -> usize {
        self.inner.borrow().sinks.len()
    }
}

/// Spawns a box's session agent: routes inbound control (arriving on
/// `control_vci`) to the box's session tap, executes requests against
/// the local switch and admission budgets, and replies on `reply_vci`.
///
/// # Panics
///
/// Panics if the box's session tap was already taken.
pub fn spawn_agent(
    spawner: &Spawner,
    boxy: Rc<PandoraBox>,
    caps: Capabilities,
    control_vci: Vci,
    reply_vci: Vci,
) -> AgentStats {
    let rx = boxy
        .take_session_rx()
        .expect("session tap already taken — one agent per box");
    // Inbound control lands on the session output handler…
    boxy.set_route(
        control_vci.stream(),
        StreamKind::Control,
        vec![OutputId::Session],
    );
    // …and replies leave on a dedicated control stream toward the
    // controller's well-known reply VCI.
    let out_stream = boxy.alloc_stream();
    boxy.set_route(
        out_stream,
        StreamKind::Control,
        vec![OutputId::Network(reply_vci)],
    );
    let injector = boxy.injector();
    let stats = AgentStats {
        inner: Rc::new(RefCell::new(AgentInner {
            admission: AdmissionController::new(caps),
            sinks: HashMap::new(),
            sources: HashMap::new(),
            handled: 0,
        })),
    };
    let st = stats.clone();
    let name = boxy.config.name;
    spawner.spawn(&format!("{name}:session-agent"), async move {
        let mut seq: u32 = 0;
        while let Ok((_stream, seg)) = rx.recv().await {
            let Some(msg) = SessionMsg::from_segment(&seg) else {
                continue;
            };
            st.inner.borrow_mut().handled += 1;
            let Some(reply) = handle(&boxy, &st, msg) else {
                continue;
            };
            seq += 1;
            if injector
                .send((out_stream, reply.to_segment(seq)))
                .await
                .is_err()
            {
                return;
            }
        }
    });
    stats
}

/// Executes one request against the local box; `None` for messages that
/// need no reply (a controller-side message echoed back to us).
fn handle(boxy: &PandoraBox, stats: &AgentStats, msg: SessionMsg) -> Option<SessionMsg> {
    let mut inner = stats.inner.borrow_mut();
    match msg {
        SessionMsg::OpenSink {
            txn,
            session,
            class,
            vci,
        } => {
            // Idempotent: a retried request for an installed sink is
            // re-acknowledged without a second charge.
            if let Some(granted) = inner.sinks.get(&vci) {
                return Some(SessionMsg::Accept {
                    txn,
                    session,
                    vci,
                    rate_permille: granted.rate_permille(),
                });
            }
            let decision = inner.admission.admit_sink(class);
            let granted_rate = match decision {
                Decision::Admit => class.rate_permille(),
                Decision::Degrade { rate_permille } => rate_permille,
                Decision::Reject(reason) => {
                    return Some(SessionMsg::Reject {
                        txn,
                        session,
                        reason,
                    })
                }
            };
            let (kind, dest, granted) = match class {
                StreamClass::Audio => (StreamKind::Audio, OutputId::Audio, StreamClass::Audio),
                StreamClass::Video { .. } => (
                    StreamKind::Video,
                    OutputId::Mixer,
                    StreamClass::Video {
                        rate_permille: granted_rate,
                    },
                ),
            };
            boxy.set_route(vci.stream(), kind, vec![dest]);
            inner.sinks.insert(vci, granted);
            Some(SessionMsg::Accept {
                txn,
                session,
                vci,
                rate_permille: granted_rate,
            })
        }
        SessionMsg::AddDest {
            txn,
            session,
            stream,
            vci,
            class,
        } => {
            if inner.sources.contains_key(&(stream, vci)) {
                return Some(SessionMsg::Done { txn, session });
            }
            match inner.admission.admit_source(class) {
                Decision::Admit | Decision::Degrade { .. } => {
                    // The session layer owns a managed source stream's
                    // routing: the first copy installs the table entry
                    // (AddDest on a routeless stream is a no-op), later
                    // copies grow it between segments (Principle 6).
                    let first = !inner.sources.keys().any(|&(s, _)| s == stream);
                    if first {
                        let kind = match class {
                            StreamClass::Audio => StreamKind::Audio,
                            StreamClass::Video { .. } => StreamKind::Video,
                        };
                        boxy.set_route(stream, kind, vec![OutputId::Network(vci)]);
                    } else {
                        boxy.add_dest(stream, OutputId::Network(vci));
                    }
                    inner.sources.insert((stream, vci), class);
                    Some(SessionMsg::Done { txn, session })
                }
                Decision::Reject(reason) => Some(SessionMsg::Reject {
                    txn,
                    session,
                    reason,
                }),
            }
        }
        SessionMsg::RemoveDest {
            txn,
            session,
            stream,
            vci,
        } => {
            if let Some(class) = inner.sources.remove(&(stream, vci)) {
                inner.admission.release_source(class);
                boxy.remove_dest(stream, OutputId::Network(vci));
            }
            Some(SessionMsg::Done { txn, session })
        }
        SessionMsg::CloseSink { txn, session, vci } => {
            if let Some(class) = inner.sinks.remove(&vci) {
                inner.admission.release_sink(class);
                boxy.clear_route(vci.stream());
            }
            Some(SessionMsg::Done { txn, session })
        }
        // Controller-side messages need no agent reply.
        SessionMsg::Accept { .. } | SessionMsg::Reject { .. } | SessionMsg::Done { .. } => None,
    }
}
