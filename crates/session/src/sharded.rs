//! Sharded topology builders: the [`crate::Star`] and point-to-point
//! call fabrics, partitioned over a `pandora-shard` [`Cluster`] so every
//! box runs on the shard the placement function assigns it, with the
//! switch and controller on shard 0 (the hub).
//!
//! Every attachment crosses the cluster through a pair of ports —
//! `att{i}.in` (box → hub) and `att{i}.out` (hub → box) — **including**
//! attachments whose box is colocated with the hub, which use loopback
//! ports with the same latency. The port list, creation order, per-box
//! names and seeds depend only on the box index, never on the placement,
//! so the schedule every box observes is byte-identical across shard
//! counts (DESIGN.md §13). With `Cluster::new(1)` these builders are the
//! single-threaded baseline the equivalence suite compares against.

use std::rc::Rc;

use pandora::{BoxConfig, PandoraBox};
use pandora_atm::{
    build_duplex_path, build_path_controlled, Cell, HopConfig, PathControl, Switch, Vci,
};
use pandora_shard::{Cluster, Egress, Ingress, ShardEnv};
use pandora_sim::{unbounded, LinkSender, Receiver, SimDuration};

use crate::control::{spawn_agent, AgentStats, Controller, ControllerConfig};
use crate::directory::{Capabilities, Directory, EndpointId, EndpointRecord};
use crate::topology::{CONTROL_VCI_BASE, REPLY_VCI_BASE};

/// Parameters of a sharded point-to-point call fabric.
#[derive(Clone)]
pub struct ShardedPairConfig {
    /// Hop profile of each direction's path.
    pub hops: Vec<HopConfig>,
    /// Master seed; the two directions derive theirs exactly as
    /// [`pandora_atm::build_duplex_path`] does.
    pub seed: u64,
    /// Builds each box's configuration from its name (`"a"` / `"b"`).
    pub box_config: fn(&'static str) -> BoxConfig,
    /// Latency of the cluster port between the two premises — the
    /// conservative-lookahead window, so it must be positive.
    pub link_latency: SimDuration,
}

/// One side of a sharded pair, handed to its hook during setup.
pub struct PairSeat {
    /// The box on this side.
    pub boxy: Rc<PandoraBox>,
    /// Fault control of this side's *outbound* path.
    pub ctrl: PathControl,
    /// The outbound path's registered fault name (`pair.ab` / `pair.ba`).
    pub path_name: &'static str,
}

type PairHook = Box<dyn FnOnce(&mut ShardEnv, &PairSeat) + Send>;

/// Builds a two-box call over `cluster`: box `a` on shard 0, box `b` on
/// shard `shard_b`. Each hook runs during its shard's setup with the
/// side's [`PairSeat`] — spawn call drivers and register `on_finish`
/// reporters there.
pub fn build_sharded_pair(
    cluster: &mut Cluster,
    config: ShardedPairConfig,
    shard_b: usize,
    on_a: impl FnOnce(&mut ShardEnv, &PairSeat) + Send + 'static,
    on_b: impl FnOnce(&mut ShardEnv, &PairSeat) + Send + 'static,
) {
    let (ab_eg, ab_in) = cluster.port::<Cell>(0, shard_b, config.link_latency, "pair.ab");
    let (ba_eg, ba_in) = cluster.port::<Cell>(shard_b, 0, config.link_latency, "pair.ba");

    let side = |name: &'static str,
                path_name: &'static str,
                seed: u64,
                egress: Egress<Cell>,
                ingress: Ingress<Cell>,
                hook: PairHook| {
        let hops = config.hops.clone();
        let box_config = config.box_config;
        move |env: &mut ShardEnv| {
            let spawner = env.spawner().clone();
            let (net_tx, path_out, _stats, ctrl) =
                build_path_controlled(&spawner, path_name, &hops, seed);
            let (up_tx, up_rx) = unbounded::<Cell>();
            env.bind_egress(egress, up_rx);
            spawner.spawn(&format!("pair:uplink:{name}"), async move {
                while let Ok(cell) = path_out.recv().await {
                    if up_tx.try_send(cell).is_err() {
                        return;
                    }
                }
            });
            let net_rx = env.bind_ingress(ingress);
            let boxy = Rc::new(PandoraBox::new(&spawner, box_config(name), net_tx, net_rx));
            hook(
                env,
                &PairSeat {
                    boxy,
                    ctrl,
                    path_name,
                },
            );
        }
    };

    let a = side("a", "pair.ab", config.seed, ab_eg, ba_in, Box::new(on_a));
    let b = side(
        "b",
        "pair.ba",
        config.seed ^ 0xDEAD,
        ba_eg,
        ab_in,
        Box::new(on_b),
    );
    cluster.setup(0, a);
    cluster.setup(shard_b, b);
}

/// Parameters of a sharded conference star.
#[derive(Clone)]
pub struct ShardedStarConfig {
    /// Hop profile of every attachment (both directions).
    pub hops: Vec<HopConfig>,
    /// Master seed; attachment `i` derives its seed exactly as
    /// [`crate::Star::build`] does.
    pub seed: u64,
    /// Capability descriptor every endpoint advertises.
    pub caps: Capabilities,
    /// Controller signalling tunables.
    pub controller: ControllerConfig,
    /// Builds each box's configuration from its generated name.
    pub box_config: fn(&'static str) -> BoxConfig,
    /// Cell capacity of each fabric output port.
    pub port_queue: usize,
    /// Latency of each attachment's cluster ports (both directions) —
    /// the lookahead window, so it must be positive.
    pub link_latency: SimDuration,
}

impl Default for ShardedStarConfig {
    fn default() -> Self {
        ShardedStarConfig {
            hops: vec![HopConfig::clean(100_000_000)],
            seed: 1,
            caps: Capabilities::standard(),
            controller: ControllerConfig::default(),
            box_config: BoxConfig::standard,
            port_queue: 2_048,
            link_latency: SimDuration::from_micros(50),
        }
    }
}

/// The hub's view of a sharded star, handed to `on_hub` during shard 0's
/// setup.
pub struct HubSeat {
    /// The control plane.
    pub controller: Rc<Controller>,
    /// The central fabric switch.
    pub switch: Rc<Switch>,
    /// Directory ids of `node0..`, in box order.
    pub endpoints: Vec<EndpointId>,
    /// Fault controls of the controller's own attachment
    /// (`controller.ab` / `controller.ba`).
    pub path_controls: Vec<(String, PathControl)>,
}

/// One box's view of a sharded star, handed to its hook during its
/// shard's setup.
pub struct NodeSeat {
    /// Box index (port number on the fabric).
    pub index: usize,
    /// The box's generated name (`node{index}`).
    pub name: &'static str,
    /// The box itself.
    pub boxy: Rc<PandoraBox>,
    /// The box agent's admission statistics.
    pub agent: AgentStats,
    /// The endpoint's directory id.
    pub endpoint: EndpointId,
    /// Fault controls of this attachment (`node{i}.ab` / `node{i}.ba`).
    pub path_controls: Vec<(String, PathControl)>,
}

/// Per-box hook of [`build_sharded_star`].
pub type NodeHook = Box<dyn FnOnce(&mut ShardEnv, &NodeSeat) + Send>;

/// Builds a conference star of `n` boxes over `cluster`: box `i` on
/// shard `place(i)`, switch and controller on shard 0. `node_hooks\[i\]`
/// runs during box `i`'s shard setup; `on_hub` runs during shard 0's
/// setup after the controller is live.
///
/// # Panics
///
/// Panics if `n` is zero, `node_hooks` is not `n` long, or `place`
/// returns an out-of-range shard.
pub fn build_sharded_star(
    cluster: &mut Cluster,
    n: usize,
    config: ShardedStarConfig,
    place: impl Fn(usize) -> usize,
    on_hub: impl FnOnce(&mut ShardEnv, &HubSeat) + Send + 'static,
    node_hooks: Vec<NodeHook>,
) {
    assert!(n > 0, "a star needs at least one box");
    assert!(node_hooks.len() == n, "one node hook per box required");

    // Attachment ports in canonical order: att{i}.in then att{i}.out,
    // boxes first, the controller's loopback pair last.
    let mut in_ports = Vec::with_capacity(n + 1);
    let mut out_ports = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let shard = if i == n { 0 } else { place(i) };
        let (in_eg, in_in) =
            cluster.port::<Cell>(shard, 0, config.link_latency, &format!("att{i}.in"));
        let (out_eg, out_in) =
            cluster.port::<Cell>(0, shard, config.link_latency, &format!("att{i}.out"));
        in_ports.push((in_eg, in_in));
        out_ports.push((out_eg, out_in));
    }

    // Every att{i}.in ingress is a switch input and every att{i}.out
    // egress a fabric pump — all on shard 0. The matching outer halves
    // (in egress, out ingress) go to the attachment's owner: box i, or
    // the hub itself for the controller's loopback pair.
    let mut switch_ins = Vec::with_capacity(n + 1);
    let mut fabric_outs = Vec::with_capacity(n + 1);
    let mut attachments = Vec::with_capacity(n + 1);
    for ((in_eg, in_in), (out_eg, out_in)) in in_ports.into_iter().zip(out_ports) {
        switch_ins.push(in_in);
        fabric_outs.push(out_eg);
        attachments.push((in_eg, out_in));
    }
    let (ctl_in_eg, ctl_out_in) = attachments.pop().expect("controller attachment");
    build_hub(
        cluster,
        n,
        &config,
        switch_ins,
        fabric_outs,
        ctl_in_eg,
        ctl_out_in,
        on_hub,
    );

    for ((i, (in_eg, out_in)), hook) in attachments.into_iter().enumerate().zip(node_hooks) {
        let shard = place(i);
        let name: &'static str = Box::leak(format!("node{i}").into_boxed_str());
        let hops = config.hops.clone();
        let seed = attachment_seed(config.seed, i);
        let caps = config.caps;
        let box_config = config.box_config;
        cluster.setup(shard, move |env| {
            let spawner = env.spawner().clone();
            let duplex = build_duplex_path(&spawner, name, &hops, seed);
            pump_attachment(env, i, in_eg, out_in, duplex.b_rx, duplex.b_tx);
            let boxy = Rc::new(PandoraBox::new(
                &spawner,
                box_config(name),
                duplex.a_tx,
                duplex.a_rx,
            ));
            let control_vci = Vci(CONTROL_VCI_BASE + i as u32);
            let reply_vci = Vci(REPLY_VCI_BASE + i as u32);
            let agent = spawn_agent(&spawner, boxy.clone(), caps, control_vci, reply_vci);
            let seat = NodeSeat {
                index: i,
                name,
                boxy,
                agent,
                endpoint: EndpointId(i as u32),
                path_controls: vec![
                    (format!("{name}.ab"), duplex.a_to_b_ctrl),
                    (format!("{name}.ba"), duplex.b_to_a_ctrl),
                ],
            };
            hook(env, &seat);
        });
    }
}

fn attachment_seed(master: u64, i: usize) -> u64 {
    master.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9)
}

/// Binds attachment `i`'s two cluster-port halves on the current shard:
/// the path's switch-side egress is pumped into `att{i}.in`, and
/// `att{i}.out` is pumped into the path's switch-side sender.
fn pump_attachment(
    env: &ShardEnv,
    i: usize,
    in_eg: Egress<Cell>,
    out_in: Ingress<Cell>,
    b_rx: Receiver<Cell>,
    b_tx: LinkSender<Cell>,
) {
    let spawner = env.spawner().clone();
    let (up_tx, up_rx) = unbounded::<Cell>();
    env.bind_egress(in_eg, up_rx);
    spawner.spawn(&format!("star:uplink{i}"), async move {
        while let Ok(cell) = b_rx.recv().await {
            if up_tx.try_send(cell).is_err() {
                return;
            }
        }
    });
    let down_rx = env.bind_ingress(out_in);
    spawner.spawn(&format!("star:port{i}"), async move {
        while let Ok(cell) = down_rx.recv().await {
            if b_tx.send(cell).await.is_err() {
                return;
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn build_hub(
    cluster: &mut Cluster,
    n: usize,
    config: &ShardedStarConfig,
    switch_ins: Vec<Ingress<Cell>>,
    fabric_outs: Vec<Egress<Cell>>,
    ctl_in_eg: Egress<Cell>,
    ctl_out_in: Ingress<Cell>,
    on_hub: impl FnOnce(&mut ShardEnv, &HubSeat) + Send + 'static,
) {
    let hops = config.hops.clone();
    let seed = attachment_seed(config.seed, n);
    let caps = config.caps;
    let controller_config = config.controller;
    let port_queue = config.port_queue;
    cluster.setup(0, move |env| {
        let spawner = env.spawner().clone();

        // The controller's own attachment: a duplex path plus the same
        // loopback port pumps every box attachment gets.
        let duplex = build_duplex_path(&spawner, "controller", &hops, seed);
        pump_attachment(env, n, ctl_in_eg, ctl_out_in, duplex.b_rx, duplex.b_tx);
        let path_controls = vec![
            ("controller.ab".to_string(), duplex.a_to_b_ctrl),
            ("controller.ba".to_string(), duplex.b_to_a_ctrl),
        ];

        // Fabric: inputs are the att{i}.in ingress receivers (box order,
        // controller last), outputs are pumped into att{i}.out.
        let inputs: Vec<Receiver<Cell>> = switch_ins
            .into_iter()
            .map(|ing| env.bind_ingress(ing))
            .collect();
        let (switch, port_rxs) = Switch::spawn(&spawner, "star", inputs, n + 1, port_queue);
        let switch = Rc::new(switch);
        for (i, (port_rx, out_eg)) in port_rxs.into_iter().zip(fabric_outs).enumerate() {
            let (tx, rx) = unbounded::<Cell>();
            env.bind_egress(out_eg, rx);
            spawner.spawn(&format!("star:fabric{i}"), async move {
                while let Ok(cell) = port_rx.recv().await {
                    if tx.try_send(cell).is_err() {
                        return;
                    }
                }
            });
        }

        let mut directory = Directory::new();
        let mut endpoints = Vec::with_capacity(n);
        for i in 0..n {
            let control_vci = Vci(CONTROL_VCI_BASE + i as u32);
            let reply_vci = Vci(REPLY_VCI_BASE + i as u32);
            switch.route(control_vci, i, control_vci);
            switch.route(reply_vci, n, reply_vci);
            endpoints.push(directory.register(EndpointRecord {
                name: format!("node{i}"),
                caps,
                port: i,
                control_vci,
                reply_vci,
            }));
        }

        let controller = Rc::new(Controller::spawn(
            &spawner,
            directory,
            switch.clone(),
            duplex.a_tx,
            duplex.a_rx,
            controller_config,
        ));
        if controller_config.lease.is_some() {
            controller.spawn_lease_probes(&spawner);
        }

        on_hub(
            env,
            &HubSeat {
                controller,
                switch,
                endpoints,
                path_controls,
            },
        );
    });
}
