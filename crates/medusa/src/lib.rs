//! # pandora-medusa — the exploded Pandora (§5.2)
//!
//! The paper's follow-on system: "one approach explodes Pandora by having
//! the camera, microphone, speaker and display as independent units linked
//! only by the LAN … the Pandora boards communicating over a network of
//! links and ATM rings have been replaced by Medusa boards communicating
//! over an ATM switch fabric, so that we have an exploded Pandora. The
//! software running in the ATM switches performs some of the tasks of the
//! Pandora server and network processes, and the same design principles
//! apply."
//!
//! Each unit is a tiny self-contained box: its own CPU, its own AAL
//! (cells ↔ segments), attached to a [`Fabric`] port. Streams go directly
//! unit-to-unit via VCI routes in the fabric switch. Speaker units reuse
//! the Pandora clawback/mixing playback path; display units reuse the
//! whole-frame assembly path — "the overall architecture is very similar
//! in terms of data description and buffering".
//!
//! §5.2 also notes that workstation streams "make it much easier to insert
//! special purpose processes such as face trackers into the video paths";
//! [`spawn_filter_unit`] demonstrates exactly that: a unit that sits on a
//! video path and transforms segments in flight.

use std::rc::Rc;

use pandora::audio_board::{spawn_audio_playback, PlaybackConfig, SpeakerSink};
use pandora::video_boards::{
    spawn_video_capture, spawn_video_display, Camera, DisplaySink, VideoCaptureHandle,
};
use pandora::VideoCosts;
use pandora_atm::{segment_to_cells, Cell, Reassembler, Switch, Vci};
use pandora_audio::gen::Signal;
use pandora_audio::SegmentAssembler;
use pandora_buffers::Report;
use pandora_segment::{wire, Segment, StreamId, Timestamp, BLOCK_DURATION_NANOS};
use pandora_sim::{link, Cpu, LinkConfig, LinkSender, Receiver, Sender, SimDuration, Spawner};
use pandora_video::CaptureConfig;

/// The ATM switch fabric joining Medusa units.
pub struct Fabric {
    switch: Switch,
    ports_tx: Vec<LinkSender<Cell>>,
    ports_rx: Vec<Option<Receiver<Cell>>>,
}

impl Fabric {
    /// Builds a fabric with `n_ports` ports at `bits_per_sec` each.
    pub fn new(spawner: &Spawner, n_ports: usize, bits_per_sec: u64) -> Fabric {
        let mut ingress_rx = Vec::with_capacity(n_ports);
        let mut ports_tx = Vec::with_capacity(n_ports);
        for p in 0..n_ports {
            let cfg = LinkConfig::new(
                Box::leak(format!("medusa.port{p}.in").into_boxed_str()),
                bits_per_sec,
            );
            let (tx, rx) = link::<Cell>(spawner, cfg);
            ports_tx.push(tx);
            ingress_rx.push(rx);
        }
        let (switch, port_rxs) = Switch::spawn(spawner, "medusa", ingress_rx, n_ports, 256);
        Fabric {
            switch,
            ports_tx,
            ports_rx: port_rxs.into_iter().map(Some).collect(),
        }
    }

    /// The sender a unit uses to inject cells at `port`.
    pub fn port_tx(&self, port: usize) -> LinkSender<Cell> {
        self.ports_tx[port].clone()
    }

    /// Takes the receiving end of `port` (each port has one unit).
    pub fn take_port_rx(&mut self, port: usize) -> Receiver<Cell> {
        self.ports_rx[port]
            .take()
            .expect("port receiver already taken")
    }

    /// Routes `vci` to `port` (VCI preserved — Medusa streams are
    /// end-to-end circuits).
    pub fn route(&self, vci: Vci, port: usize) {
        self.switch.route(vci, port, vci);
    }

    /// Adds one more copy destination for `vci` (a fabric-level tannoy
    /// split: existing listeners keep receiving undisturbed, Principle 6).
    pub fn route_add(&self, vci: Vci, port: usize) {
        self.switch.route_add(vci, port, vci);
    }

    /// Removes the copy of `vci` toward `port`; other copies keep flowing.
    pub fn route_remove(&self, vci: Vci, port: usize) {
        self.switch.route_remove(vci, port);
    }

    /// Installs one leg per `port` for `vci` in a single pass — the
    /// overlay head-end shape: a broadcast source's `k` stripe feeds fan
    /// out of the building through the fabric before the peer-to-peer
    /// trees take over, so the whole first-hop fan-out is one routing
    /// call. The first port replaces any existing route; the rest are
    /// added as tannoy copies.
    pub fn route_fanout(&self, vci: Vci, ports: &[usize]) {
        let mut ports = ports.iter();
        if let Some(&first) = ports.next() {
            self.route(vci, first);
        }
        for &port in ports {
            self.route_add(vci, port);
        }
    }

    /// Removes a route.
    pub fn unroute(&self, vci: Vci) {
        self.switch.unroute(vci);
    }

    /// Tears down every leg toward `port` — the dead-unit cleanup: when
    /// a unit disappears, all tannoy copies aimed at it come out of the
    /// fabric in one pass while other listeners keep receiving
    /// (Principle 6). Returns the VCIs that lost legs, ascending.
    pub fn unroute_port(&self, port: usize) -> Vec<Vci> {
        self.switch.unroute_port(port)
    }

    /// Installed legs toward `port`.
    pub fn port_route_count(&self, port: usize) -> usize {
        self.switch.port_route_count(port)
    }

    /// The underlying switch (for statistics).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }
}

/// A microphone unit: signal → 2 ms blocks → segments → cells on a VCI.
pub fn spawn_mic_unit(
    spawner: &Spawner,
    name: &str,
    mut signal: Box<dyn Signal>,
    blocks_per_segment: usize,
    vci: Vci,
    port: LinkSender<Cell>,
) -> Cpu {
    let cpu = Cpu::new(&format!("medusa-mic:{name}"), SimDuration::from_nanos(700));
    let c = cpu.clone();
    spawner.spawn(&format!("mic-unit:{name}"), async move {
        let mut asm = SegmentAssembler::new(blocks_per_segment);
        let mut cell_seq: u32 = 0;
        let mut n: u64 = 0;
        loop {
            n += 1;
            pandora_sim::delay_until(pandora_sim::SimTime::from_nanos(n * BLOCK_DURATION_NANOS))
                .await;
            let block = signal.next_block();
            c.claim(SimDuration::from_micros(250)).await;
            let ts = Timestamp::from_nanos(pandora_sim::now().as_nanos());
            if let Some(seg) = asm.push(block, ts) {
                let bytes = wire::encode(&Segment::Audio(seg));
                let cells = segment_to_cells(vci, &bytes, cell_seq);
                cell_seq = cell_seq.wrapping_add(cells.len() as u32);
                for cell in cells {
                    if port.send(cell).await.is_err() {
                        return;
                    }
                }
            }
        }
    });
    cpu
}

/// A speaker unit: cells → segments → the Pandora clawback/mixing path.
pub fn spawn_speaker_unit(
    spawner: &Spawner,
    name: &str,
    cells: Receiver<Cell>,
    config: PlaybackConfig,
    reports: Sender<Report>,
) -> (SpeakerSink, Cpu) {
    let cpu = Cpu::new(
        &format!("medusa-speaker:{name}"),
        SimDuration::from_nanos(700),
    );
    let (seg_tx, seg_rx) = pandora_sim::channel::<(StreamId, pandora_segment::AudioSegment)>();
    // AAL adapter.
    spawner.spawn(&format!("speaker-unit:{name}:aal"), async move {
        let mut reasm = Reassembler::new();
        while let Ok(cell) = cells.recv().await {
            if let Some((vci, frame)) = reasm.push(cell) {
                if let Ok(Segment::Audio(a)) = wire::decode(&frame) {
                    if seg_tx.send((vci.stream(), a)).await.is_err() {
                        return;
                    }
                }
            }
        }
    });
    let sink = spawn_audio_playback(
        spawner,
        &format!("medusa:{name}"),
        config,
        None,
        cpu.clone(),
        seg_rx,
        reports,
        SimDuration::from_millis(500),
    );
    (sink, cpu)
}

/// A camera unit: its own camera + capture task → cells on a VCI.
pub fn spawn_camera_unit(
    spawner: &Spawner,
    name: &str,
    config: CaptureConfig,
    vci: Vci,
    port: LinkSender<Cell>,
) -> (VideoCaptureHandle, Cpu) {
    let cpu = Cpu::new(
        &format!("medusa-camera:{name}"),
        SimDuration::from_nanos(700),
    );
    let camera = Camera::spawn(spawner, &format!("medusa:{name}"), 256, 192);
    let (seg_tx, seg_rx) = pandora_sim::channel::<(StreamId, pandora_segment::VideoSegment)>();
    let handle = spawn_video_capture(
        spawner,
        &format!("medusa:{name}"),
        vci.stream(),
        &camera,
        config,
        VideoCosts::default(),
        cpu.clone(),
        seg_tx,
    );
    spawner.spawn(&format!("camera-unit:{name}:aal"), async move {
        let mut cell_seq: u32 = 0;
        while let Ok((_, seg)) = seg_rx.recv().await {
            let bytes = wire::encode(&Segment::Video(seg));
            let cells = segment_to_cells(vci, &bytes, cell_seq);
            cell_seq = cell_seq.wrapping_add(cells.len() as u32);
            for cell in cells {
                if port.send(cell).await.is_err() {
                    return;
                }
            }
        }
    });
    (handle, cpu)
}

/// A display unit: cells → segments → whole-frame assembly and display.
pub fn spawn_display_unit(
    spawner: &Spawner,
    name: &str,
    cells: Receiver<Cell>,
) -> (DisplaySink, Cpu) {
    let cpu = Cpu::new(
        &format!("medusa-display:{name}"),
        SimDuration::from_nanos(700),
    );
    let (seg_tx, seg_rx) = pandora_sim::channel::<(StreamId, pandora_segment::VideoSegment)>();
    spawner.spawn(&format!("display-unit:{name}:aal"), async move {
        let mut reasm = Reassembler::new();
        while let Ok(cell) = cells.recv().await {
            if let Some((vci, frame)) = reasm.push(cell) {
                if let Ok(Segment::Video(v)) = wire::decode(&frame) {
                    if seg_tx.send((vci.stream(), v)).await.is_err() {
                        return;
                    }
                }
            }
        }
    });
    let sink = spawn_video_display(
        spawner,
        &format!("medusa:{name}"),
        512,
        384,
        seg_rx,
        VideoCosts::default(),
        cpu.clone(),
    );
    (sink, cpu)
}

/// A special-purpose in-path video processor (a "face tracker" stand-in):
/// receives a video stream on `in_cells`, applies `transform` to every
/// decoded segment's pixel data, and re-emits it on `out_vci`.
pub fn spawn_filter_unit(
    spawner: &Spawner,
    name: &str,
    in_cells: Receiver<Cell>,
    out_vci: Vci,
    port: LinkSender<Cell>,
    transform: impl FnMut(&mut pandora_segment::VideoSegment) + 'static,
) -> Rc<std::cell::Cell<u64>> {
    let processed = Rc::new(std::cell::Cell::new(0u64));
    let p = processed.clone();
    let mut transform = transform;
    spawner.spawn(&format!("filter-unit:{name}"), async move {
        let mut reasm = Reassembler::new();
        let mut cell_seq: u32 = 0;
        while let Ok(cell) = in_cells.recv().await {
            if let Some((_vci, frame)) = reasm.push(cell) {
                if let Ok(Segment::Video(mut v)) = wire::decode(&frame) {
                    transform(&mut v);
                    p.set(p.get() + 1);
                    let bytes = wire::encode(&Segment::Video(v));
                    let cells = segment_to_cells(out_vci, &bytes, cell_seq);
                    cell_seq = cell_seq.wrapping_add(cells.len() as u32);
                    for c in cells {
                        if port.send(c).await.is_err() {
                            return;
                        }
                    }
                }
            }
        }
    });
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_audio::gen::Tone;
    use pandora_sim::{unbounded, SimTime, Simulation};
    use pandora_video::dpcm::LineMode;
    use pandora_video::{RateFraction, Rect};

    #[test]
    fn mic_to_speaker_across_fabric() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let mut fabric = Fabric::new(&spawner, 4, 100_000_000);
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        // Mic on port 0 → speaker on port 1, VCI 10.
        fabric.route(Vci(10), 1);
        spawn_mic_unit(
            &spawner,
            "m0",
            Box::new(Tone::new(440.0, 8_000.0)),
            2,
            Vci(10),
            fabric.port_tx(0),
        );
        let (sink, _cpu) = spawn_speaker_unit(
            &spawner,
            "s0",
            fabric.take_port_rx(1),
            PlaybackConfig::default(),
            rep_tx,
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(
            sink.segments_received() > 200,
            "got {}",
            sink.segments_received()
        );
        assert_eq!(sink.segments_lost(), 0);
        assert_eq!(sink.late_ticks(), 0);
    }

    #[test]
    fn route_fanout_installs_every_leg_in_one_call() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let fabric = Fabric::new(&spawner, 4, 100_000_000);
        // A stale route toward port 3 must be replaced, not added to.
        fabric.route(Vci(20), 3);
        fabric.route_fanout(Vci(20), &[1, 2]);
        assert_eq!(fabric.port_route_count(1), 1);
        assert_eq!(fabric.port_route_count(2), 1);
        assert_eq!(fabric.port_route_count(3), 0, "first leg replaces");
        sim.run_until(SimTime::from_millis(1));
    }

    #[test]
    fn fabric_tannoy_splits_and_shrinks_without_glitch() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let mut fabric = Fabric::new(&spawner, 4, 100_000_000);
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        // Mic on port 0 announces to speakers on ports 1 and 2 (tannoy).
        fabric.route(Vci(10), 1);
        fabric.route_add(Vci(10), 2);
        spawn_mic_unit(
            &spawner,
            "m0",
            Box::new(Tone::new(440.0, 8_000.0)),
            2,
            Vci(10),
            fabric.port_tx(0),
        );
        let (sink1, _cpu) = spawn_speaker_unit(
            &spawner,
            "s1",
            fabric.take_port_rx(1),
            PlaybackConfig::default(),
            rep_tx.clone(),
        );
        let (sink2, _cpu) = spawn_speaker_unit(
            &spawner,
            "s2",
            fabric.take_port_rx(2),
            PlaybackConfig::default(),
            rep_tx,
        );
        sim.run_until(SimTime::from_millis(500));
        // Shrink: drop the port-2 copy; the port-1 copy must not glitch.
        fabric.route_remove(Vci(10), 2);
        let sink2_at_cut = sink2.segments_received();
        assert!(sink2_at_cut > 100, "got {sink2_at_cut}");
        sim.run_until(SimTime::from_secs(1));
        assert!(
            sink1.segments_received() > 200,
            "got {}",
            sink1.segments_received()
        );
        assert_eq!(sink1.segments_lost(), 0);
        assert_eq!(sink1.late_ticks(), 0);
        assert!(
            sink2.segments_received() <= sink2_at_cut + 2,
            "port 2 kept receiving after remove"
        );
    }

    #[test]
    fn three_mics_mix_at_one_speaker() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let mut fabric = Fabric::new(&spawner, 4, 100_000_000);
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        for (i, port) in [0usize, 1, 2].iter().enumerate() {
            let vci = Vci(10 + i as u32);
            fabric.route(vci, 3);
            spawn_mic_unit(
                &spawner,
                &format!("m{i}"),
                Box::new(Tone::new(300.0 + 100.0 * i as f64, 5_000.0)),
                2,
                vci,
                fabric.port_tx(*port),
            );
        }
        let (sink, _cpu) = spawn_speaker_unit(
            &spawner,
            "s0",
            fabric.take_port_rx(3),
            PlaybackConfig::default(),
            rep_tx,
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sink.max_active_streams(), 3);
        assert_eq!(sink.late_ticks(), 0);
    }

    #[test]
    fn camera_to_display_across_fabric() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let mut fabric = Fabric::new(&spawner, 2, 100_000_000);
        fabric.route(Vci(5), 1);
        let (handle, _cpu) = spawn_camera_unit(
            &spawner,
            "c0",
            CaptureConfig {
                rect: Rect::new(0, 0, 128, 96),
                rate: RateFraction::new(2, 5),
                lines_per_segment: 32,
                mode: LineMode::Dpcm,
            },
            Vci(5),
            fabric.port_tx(0),
        );
        let (sink, _dcpu) = spawn_display_unit(&spawner, "d0", fabric.take_port_rx(1));
        sim.run_until(SimTime::from_secs(2));
        handle.stop();
        let fps = sink.fps(SimDuration::from_secs(2));
        assert!((8.5..=10.5).contains(&fps), "fps {fps}");
        assert_eq!(sink.decode_errors(), 0);
    }

    #[test]
    fn filter_unit_transforms_in_path() {
        // Camera(port0) → VCI 5 → filter(port1) → VCI 6 → display(port2).
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let mut fabric = Fabric::new(&spawner, 3, 100_000_000);
        fabric.route(Vci(5), 1);
        fabric.route(Vci(6), 2);
        let (handle, _c) = spawn_camera_unit(
            &spawner,
            "c0",
            CaptureConfig {
                rect: Rect::new(0, 0, 64, 48),
                rate: RateFraction::new(1, 5),
                lines_per_segment: 48,
                mode: LineMode::Raw,
            },
            Vci(5),
            fabric.port_tx(0),
        );
        let processed = spawn_filter_unit(
            &spawner,
            "f0",
            fabric.take_port_rx(1),
            Vci(6),
            fabric.port_tx(1),
            |seg| {
                // "Face tracker": invert the pixels. Raw mode line records
                // are [1-byte header, width pixels]; keep each header.
                let record = 1 + seg.video.width as usize;
                for line in seg.data.chunks_mut(record) {
                    for b in line.iter_mut().skip(1) {
                        *b = 255 - *b;
                    }
                }
            },
        );
        let (sink, _d) = spawn_display_unit(&spawner, "d0", fabric.take_port_rx(2));
        sim.run_until(SimTime::from_secs(1));
        handle.stop();
        assert!(processed.get() > 2, "filter processed {}", processed.get());
        assert!(sink.frames_shown() > 2, "frames {}", sink.frames_shown());
    }

    #[test]
    fn unrouted_vci_counted_by_fabric() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let fabric = Fabric::new(&spawner, 2, 100_000_000);
        spawn_mic_unit(
            &spawner,
            "m0",
            Box::new(Tone::new(440.0, 8_000.0)),
            2,
            Vci(99), // No route.
            fabric.port_tx(0),
        );
        sim.run_until(SimTime::from_millis(100));
        assert!(fabric.switch().unroutable() > 0);
    }
}
