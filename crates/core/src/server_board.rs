//! The server-board switch process (§3.4, figures 3.3/3.4).
//!
//! All streams in a box pass through the server transputer. Input device
//! handlers allocate pool buffers and launch descriptors into the switch;
//! the switch consults its per-stream table and fans copies out to output
//! device handlers through ready-mode decoupling buffers. "If an output
//! device falls so far behind the input that its decoupling buffer fills,
//! then the switch simply omits to send it any more segments (effectively
//! discarding traffic for that output only) until the buffer has free
//! slots again. The switch records how many segments have been dropped in
//! this way, and periodically sends reports while the condition persists"
//! (§3.7.1) — Principle 5.
//!
//! Commands are taken ahead of data by PRI ALT (Principle 4) and apply
//! "without disturbing the flows of data … there is no possibility of the
//! table changing during the processing of a segment" (Principle 6).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pandora_atm::Vci;
use pandora_buffers::{Descriptor, Pool, ReadyGate, Report, ReportClass};
use pandora_metrics::{CounterSet, RateLimiter};
use pandora_segment::StreamId;
use pandora_sim::{alt2, Cpu, Either2, Receiver, Sender, SimDuration, Spawner};

use crate::msg::{OutputId, SegMsg, StreamKind, SwitchCommand, SwitchEntry};

/// A network-bound descriptor: stream, outgoing VCI, buffer index.
#[derive(Debug, Clone, Copy)]
pub struct NetMsg {
    /// The local stream number.
    pub stream: StreamId,
    /// The VCI to use on the wire (the destination's stream number).
    pub vci: Vci,
    /// Pool descriptor.
    pub desc: Descriptor,
    /// When the stream was opened (Principle 3's age ordering).
    pub opened_at: pandora_sim::SimTime,
}

/// The gates from the switch into each output handler's decoupling buffer.
///
/// Audio and video bound for the network are split into separate buffers
/// (figure 3.7) "so that it \[audio\] can be given priority (principle 2)".
pub struct SwitchOutputs {
    /// Network-bound audio (small buffer, drains first).
    pub net_audio: Option<ReadyGate<NetMsg>>,
    /// Network-bound video.
    pub net_video: Option<ReadyGate<NetMsg>>,
    /// Local audio playback (the audio board).
    pub audio: Option<ReadyGate<SegMsg>>,
    /// Local video display (the mixer board).
    pub mixer: Option<ReadyGate<SegMsg>>,
    /// Test output handler.
    pub test: Option<ReadyGate<SegMsg>>,
    /// Repository recorder.
    pub repository: Option<ReadyGate<SegMsg>>,
    /// Session agent (inbound control signalling).
    pub session: Option<ReadyGate<SegMsg>>,
}

impl SwitchOutputs {
    /// A gate set with every output unattached.
    pub fn none() -> Self {
        SwitchOutputs {
            net_audio: None,
            net_video: None,
            audio: None,
            mixer: None,
            test: None,
            repository: None,
            session: None,
        }
    }
}

/// Shared switch statistics.
#[derive(Clone, Default)]
pub struct SwitchStats {
    inner: Rc<RefCell<SwitchStatsInner>>,
}

#[derive(Default)]
struct SwitchStatsInner {
    forwarded: u64,
    dropped: CounterSet,
    no_route: u64,
}

impl SwitchStats {
    /// Segment copies successfully offered to output buffers.
    pub fn forwarded(&self) -> u64 {
        self.inner.borrow().forwarded
    }

    /// Copies dropped at a full output, keyed `"{stream}->{output}"`.
    pub fn dropped(&self, stream: StreamId, output: &str) -> u64 {
        self.inner
            .borrow()
            .dropped
            .get(&format!("{stream}->{output}"))
    }

    /// Total copies dropped at full outputs.
    pub fn dropped_total(&self) -> u64 {
        self.inner.borrow().dropped.total()
    }

    /// Segments for which no table entry existed.
    pub fn no_route(&self) -> u64 {
        self.inner.borrow().no_route
    }
}

/// Spawns the switch process.
///
/// * `input` — merged descriptor stream from all input device handlers;
/// * `commands` — the host/interface command channel (highest priority);
/// * `command_priority` — Principle 4: take commands ahead of data by PRI
///   ALT; when `false` data is polled first (the conformance ablation,
///   under which commands starve while inputs stay busy);
/// * `outputs` — ready-gates into the per-output decoupling buffers;
/// * `pool` — the server board's segment buffer pool (the switch never
///   inspects segment contents, so it works over any pooled type —
///   descriptors move, bytes do not);
/// * `cpu` — the server transputer (each segment pays a switching cost).
#[allow(clippy::too_many_arguments)]
pub fn spawn_switch<T: 'static>(
    spawner: &Spawner,
    name: &str,
    input: Receiver<SegMsg>,
    commands: Receiver<SwitchCommand>,
    command_priority: bool,
    mut outputs: SwitchOutputs,
    pool: Pool<T>,
    cpu: Cpu,
    per_segment_cost: SimDuration,
    reports: Sender<Report>,
    report_min_period: SimDuration,
) -> SwitchStats {
    let stats = SwitchStats::default();
    let s = stats.clone();
    let proc_name = format!("switch:{name}");
    let task_name = proc_name.clone();
    spawner.spawn(&task_name, async move {
        let mut table: HashMap<StreamId, SwitchEntry> = HashMap::new();
        let mut limiter = RateLimiter::new(report_min_period.as_nanos());
        loop {
            // PRI ALT: commands first (Principle 4). With the principle
            // disabled, data is polled first and a busy input starves the
            // command channel.
            let next = if command_priority {
                match alt2(&commands, &input).await {
                    Some(Ok(Either2::A(cmd))) => (Some(cmd), None),
                    Some(Ok(Either2::B(msg))) => (None, Some(msg)),
                    _ => return,
                }
            } else {
                match alt2(&input, &commands).await {
                    Some(Ok(Either2::A(msg))) => (None, Some(msg)),
                    Some(Ok(Either2::B(cmd))) => (Some(cmd), None),
                    _ => return,
                }
            };
            match next {
                (Some(cmd), _) => apply_command(&mut table, cmd, &reports, &proc_name).await,
                (_, Some(msg)) => {
                    cpu.claim(per_segment_cost).await;
                    let Some(entry) = table.get(&msg.stream) else {
                        s.inner.borrow_mut().no_route += 1;
                        pool.release(msg.desc);
                        continue;
                    };
                    if entry.dests.is_empty() {
                        pool.release(msg.desc);
                        continue;
                    }
                    // One reference already exists; each extra copy needs one.
                    if entry.dests.len() > 1 {
                        pool.add_refs(msg.desc, entry.dests.len() as u32 - 1);
                    }
                    let kind = entry.kind;
                    let opened_at = entry.opened_at;
                    // Fan-out borrows the table entry in place: Principle 6
                    // guarantees no command lands mid-segment, so no
                    // per-segment snapshot of the destination list is needed.
                    for &dest in &entry.dests {
                        let delivered =
                            offer(&mut outputs, dest, kind, opened_at, msg.stream, msg.desc).await;
                        match delivered {
                            Offered::Sent => s.inner.borrow_mut().forwarded += 1,
                            Offered::Dropped(output_name) => {
                                pool.release(msg.desc);
                                let key = format!("{}->{}", msg.stream, output_name);
                                s.inner.borrow_mut().dropped.incr(&key);
                                let now = pandora_sim::now();
                                if limiter.allow(&key, now.as_nanos()) {
                                    let total = s.inner.borrow().dropped.get(&key);
                                    let _ = reports
                                        .send(Report::new(
                                            now,
                                            &proc_name,
                                            ReportClass::Overload,
                                            format!(
                                                "output {output_name} full: dropped {total} of {}",
                                                msg.stream
                                            ),
                                        ))
                                        .await;
                                }
                            }
                        }
                    }
                }
                (None, None) => unreachable!("alt2 always yields one side"),
            }
        }
    });
    stats
}

enum Offered {
    Sent,
    Dropped(&'static str),
}

async fn offer(
    outputs: &mut SwitchOutputs,
    dest: OutputId,
    kind: StreamKind,
    opened_at: pandora_sim::SimTime,
    stream: StreamId,
    desc: Descriptor,
) -> Offered {
    match dest {
        OutputId::Network(vci) => {
            // Control signalling shares the audio queue so the net-out
            // scheduler's Principle-2 priority also keeps it unstarved.
            let (gate, label) = match kind {
                StreamKind::Audio | StreamKind::Control => (&mut outputs.net_audio, "net-audio"),
                StreamKind::Video | StreamKind::Test => (&mut outputs.net_video, "net-video"),
            };
            match gate {
                Some(g) => {
                    if g.offer(NetMsg {
                        stream,
                        vci,
                        desc,
                        opened_at,
                    })
                    .await
                    {
                        Offered::Sent
                    } else {
                        Offered::Dropped(label)
                    }
                }
                None => Offered::Dropped(label),
            }
        }
        OutputId::Audio => offer_plain(&mut outputs.audio, "audio", stream, desc).await,
        OutputId::Mixer => offer_plain(&mut outputs.mixer, "mixer", stream, desc).await,
        OutputId::Test => offer_plain(&mut outputs.test, "test", stream, desc).await,
        OutputId::Repository => {
            offer_plain(&mut outputs.repository, "repository", stream, desc).await
        }
        OutputId::Session => offer_plain(&mut outputs.session, "session", stream, desc).await,
    }
}

async fn offer_plain(
    gate: &mut Option<ReadyGate<SegMsg>>,
    label: &'static str,
    stream: StreamId,
    desc: Descriptor,
) -> Offered {
    match gate {
        Some(g) => {
            if g.offer(SegMsg { stream, desc }).await {
                Offered::Sent
            } else {
                Offered::Dropped(label)
            }
        }
        None => Offered::Dropped(label),
    }
}

async fn apply_command(
    table: &mut HashMap<StreamId, SwitchEntry>,
    cmd: SwitchCommand,
    reports: &Sender<Report>,
    proc_name: &str,
) {
    match cmd {
        SwitchCommand::SetRoute { stream, entry } => {
            table.insert(stream, entry);
        }
        SwitchCommand::AddDest { stream, dest } => {
            if let Some(e) = table.get_mut(&stream) {
                if !e.dests.contains(&dest) {
                    e.dests.push(dest);
                }
            }
        }
        SwitchCommand::RemoveDest { stream, dest } => {
            if let Some(e) = table.get_mut(&stream) {
                e.dests.retain(|d| *d != dest);
            }
        }
        SwitchCommand::DropRoute { stream } => {
            table.remove(&stream);
        }
        SwitchCommand::Query { stream } => {
            let msg = match table.get(&stream) {
                Some(e) => format!("{stream}: kind={:?} dests={}", e.kind, e.dests.len()),
                None => format!("{stream}: no route"),
            };
            let _ = reports
                .send(Report::new(
                    pandora_sim::now(),
                    proc_name,
                    ReportClass::Info,
                    msg,
                ))
                .await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_buffers::{spawn_decoupling_ready, ClawbackConfig};
    use pandora_segment::{AudioSegment, Segment, SequenceNumber, Timestamp};
    use pandora_sim::{channel, unbounded, SimTime, Simulation};

    fn seg() -> Segment {
        Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(0),
            Timestamp(0),
            vec![0u8; 32],
        ))
    }

    struct Rig {
        sim: Simulation,
        pool: Pool<Segment>,
        in_tx: Sender<SegMsg>,
        cmd_tx: Sender<SwitchCommand>,
        stats: SwitchStats,
        audio_out: Receiver<SegMsg>,
        test_out: Receiver<SegMsg>,
    }

    fn rig(audio_capacity: usize) -> Rig {
        let sim = Simulation::new();
        let spawner = sim.spawner();
        let pool = Pool::new(64);
        let (in_tx, in_rx) = channel::<SegMsg>();
        let (cmd_tx, cmd_rx) = unbounded::<SwitchCommand>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();

        // Audio output with a decoupling buffer.
        let (a_in_tx, a_in_rx) = channel::<SegMsg>();
        let (a_out_tx, audio_out) = channel::<SegMsg>();
        let (_h, a_ready) = spawn_decoupling_ready(
            &spawner,
            "audio",
            audio_capacity,
            a_in_rx,
            a_out_tx,
            rep_tx.clone(),
        );
        // Test output likewise.
        let (t_in_tx, t_in_rx) = channel::<SegMsg>();
        let (t_out_tx, test_out) = channel::<SegMsg>();
        let (_h2, t_ready) =
            spawn_decoupling_ready(&spawner, "test", 16, t_in_rx, t_out_tx, rep_tx.clone());

        let outputs = SwitchOutputs {
            audio: Some(ReadyGate::new(a_in_tx, a_ready)),
            test: Some(ReadyGate::new(t_in_tx, t_ready)),
            ..SwitchOutputs::none()
        };
        let cpu = Cpu::new("server", SimDuration::ZERO);
        let stats = spawn_switch(
            &spawner,
            "t",
            in_rx,
            cmd_rx,
            true,
            outputs,
            pool.clone(),
            cpu,
            SimDuration::from_micros(20),
            rep_tx,
            SimDuration::from_millis(100),
        );
        let _ = ClawbackConfig::default();
        Rig {
            sim,
            pool,
            in_tx,
            cmd_tx,
            stats,
            audio_out,
            test_out,
        }
    }

    fn entry(dests: Vec<OutputId>) -> SwitchEntry {
        SwitchEntry {
            dests,
            kind: StreamKind::Audio,
            opened_at: SimTime::ZERO,
        }
    }

    #[test]
    fn routes_to_configured_destination() {
        let mut r = rig(8);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        let cmd_tx = r.cmd_tx.clone();
        r.sim.spawn("setup", async move {
            cmd_tx
                .send(SwitchCommand::SetRoute {
                    stream: StreamId(1),
                    entry: entry(vec![OutputId::Audio]),
                })
                .await
                .unwrap();
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(1),
                    desc: d,
                })
                .await
                .unwrap();
        });
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        let out = r.audio_out;
        let pool2 = r.pool.clone();
        r.sim.spawn("sink", async move {
            while let Ok(m) = out.recv().await {
                g.borrow_mut().push(m.stream);
                pool2.release(m.desc);
            }
        });
        r.sim.run_until_idle();
        assert_eq!(*got.borrow(), vec![StreamId(1)]);
        assert_eq!(r.stats.forwarded(), 1);
        assert_eq!(r.pool.free_count(), 64);
    }

    #[test]
    fn unrouted_segment_released_and_counted() {
        let mut r = rig(8);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        r.sim.spawn("setup", async move {
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(9),
                    desc: d,
                })
                .await
                .unwrap();
        });
        r.sim.run_until_idle();
        assert_eq!(r.stats.no_route(), 1);
        assert_eq!(r.pool.free_count(), 64);
    }

    #[test]
    fn split_to_two_destinations_refcounts() {
        let mut r = rig(8);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        let cmd_tx = r.cmd_tx.clone();
        r.sim.spawn("setup", async move {
            cmd_tx
                .send(SwitchCommand::SetRoute {
                    stream: StreamId(1),
                    entry: entry(vec![OutputId::Audio, OutputId::Test]),
                })
                .await
                .unwrap();
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(1),
                    desc: d,
                })
                .await
                .unwrap();
        });
        let n = Rc::new(std::cell::Cell::new(0));
        for out in [r.audio_out, r.test_out] {
            let n = n.clone();
            let pool = r.pool.clone();
            r.sim.spawn("sink", async move {
                while let Ok(m) = out.recv().await {
                    n.set(n.get() + 1);
                    pool.release(m.desc);
                }
            });
        }
        r.sim.run_until_idle();
        assert_eq!(n.get(), 2);
        assert_eq!(r.stats.forwarded(), 2);
        // Both copies released: buffer fully freed.
        assert_eq!(r.pool.free_count(), 64);
    }

    #[test]
    fn full_output_drops_without_blocking_switch() {
        // Audio output has capacity 2 and nobody drains it; the test
        // output keeps flowing — Principle 5 at the switch.
        let mut r = rig(2);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        let cmd_tx = r.cmd_tx.clone();
        r.sim.spawn("setup", async move {
            cmd_tx
                .send(SwitchCommand::SetRoute {
                    stream: StreamId(1),
                    entry: entry(vec![OutputId::Audio, OutputId::Test]),
                })
                .await
                .unwrap();
            for _ in 0..20 {
                let d = pool.alloc(seg()).await;
                in_tx
                    .send(SegMsg {
                        stream: StreamId(1),
                        desc: d,
                    })
                    .await
                    .unwrap();
            }
        });
        // Drain only the test output.
        let n = Rc::new(std::cell::Cell::new(0));
        {
            let n = n.clone();
            let pool = r.pool.clone();
            let out = r.test_out;
            r.sim.spawn("test-sink", async move {
                while let Ok(m) = out.recv().await {
                    n.set(n.get() + 1);
                    pool.release(m.desc);
                }
            });
        }
        r.sim.run_until_idle();
        assert_eq!(n.get(), 20, "test output must see everything");
        let dropped = r.stats.dropped(StreamId(1), "audio");
        assert!(dropped >= 16, "audio drops {dropped}");
        // No leaked buffers: free + those stuck in the audio buffer.
        let stuck = 20 - dropped as usize;
        assert_eq!(r.pool.free_count(), 64 - stuck);
    }

    #[test]
    fn add_and_remove_dest_live() {
        let mut r = rig(8);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        let cmd_tx = r.cmd_tx.clone();
        r.sim.spawn("setup", async move {
            cmd_tx
                .send(SwitchCommand::SetRoute {
                    stream: StreamId(1),
                    entry: entry(vec![OutputId::Audio]),
                })
                .await
                .unwrap();
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(1),
                    desc: d,
                })
                .await
                .unwrap();
            cmd_tx
                .send(SwitchCommand::AddDest {
                    stream: StreamId(1),
                    dest: OutputId::Test,
                })
                .await
                .unwrap();
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(1),
                    desc: d,
                })
                .await
                .unwrap();
            cmd_tx
                .send(SwitchCommand::RemoveDest {
                    stream: StreamId(1),
                    dest: OutputId::Audio,
                })
                .await
                .unwrap();
            let d = pool.alloc(seg()).await;
            in_tx
                .send(SegMsg {
                    stream: StreamId(1),
                    desc: d,
                })
                .await
                .unwrap();
        });
        let audio_n = Rc::new(std::cell::Cell::new(0));
        let test_n = Rc::new(std::cell::Cell::new(0));
        {
            let n = audio_n.clone();
            let pool = r.pool.clone();
            let out = r.audio_out;
            r.sim.spawn("a", async move {
                while let Ok(m) = out.recv().await {
                    n.set(n.get() + 1);
                    pool.release(m.desc);
                }
            });
        }
        {
            let n = test_n.clone();
            let pool = r.pool.clone();
            let out = r.test_out;
            r.sim.spawn("t", async move {
                while let Ok(m) = out.recv().await {
                    n.set(n.get() + 1);
                    pool.release(m.desc);
                }
            });
        }
        r.sim.run_until_idle();
        // Audio saw segments 1 and 2; test saw 2 and 3. No loss on the
        // surviving copies during the re-plumbing (Principle 6).
        assert_eq!(audio_n.get(), 2);
        assert_eq!(test_n.get(), 2);
        assert_eq!(r.pool.free_count(), 64);
    }

    #[test]
    fn drop_route_mid_stream_leaves_other_streams_byte_identical() {
        // Switch-level Principle 6: dropping stream 2's route mid-flow
        // must leave stream 1's delivered segment bytes exactly as they
        // would have been with no command at all.
        let run = |drop: bool| {
            let mut r = rig(64);
            let pool = r.pool.clone();
            let in_tx = r.in_tx.clone();
            let cmd_tx = r.cmd_tx.clone();
            r.sim.spawn("drive", async move {
                cmd_tx
                    .send(SwitchCommand::SetRoute {
                        stream: StreamId(1),
                        entry: entry(vec![OutputId::Audio]),
                    })
                    .await
                    .unwrap();
                cmd_tx
                    .send(SwitchCommand::SetRoute {
                        stream: StreamId(2),
                        entry: entry(vec![OutputId::Test]),
                    })
                    .await
                    .unwrap();
                for i in 0..20u32 {
                    for stream in [StreamId(1), StreamId(2)] {
                        let seg = Segment::Audio(AudioSegment::from_blocks(
                            SequenceNumber(i),
                            Timestamp(i),
                            vec![(i as u8) ^ (stream.0 as u8); 32],
                        ));
                        let d = pool.alloc(seg).await;
                        in_tx.send(SegMsg { stream, desc: d }).await.unwrap();
                    }
                    if drop && i == 9 {
                        cmd_tx
                            .send(SwitchCommand::DropRoute {
                                stream: StreamId(2),
                            })
                            .await
                            .unwrap();
                    }
                }
            });
            let bytes = Rc::new(RefCell::new(Vec::new()));
            let b = bytes.clone();
            let pool = r.pool.clone();
            let out = r.audio_out;
            r.sim.spawn("sink", async move {
                while let Ok(m) = out.recv().await {
                    let seg = pool.with(m.desc, |s| s.clone());
                    pool.release(m.desc);
                    b.borrow_mut()
                        .push((m.stream, pandora_segment::wire::encode(&seg)));
                }
            });
            r.sim.run_until_idle();
            // After the drop, stream 2's remaining segments are unrouted.
            assert_eq!(r.stats.no_route(), if drop { 10 } else { 0 });
            let delivered = bytes.borrow().clone();
            delivered
        };
        let undisturbed = run(false);
        let with_drop = run(true);
        assert_eq!(undisturbed.len(), 20);
        assert_eq!(
            undisturbed, with_drop,
            "stream 1 flow changed across DropRoute"
        );
    }

    #[test]
    fn commands_win_over_flooded_data() {
        // Principle 4: with data always ready, a command still lands.
        let mut r = rig(8);
        let pool = r.pool.clone();
        let in_tx = r.in_tx.clone();
        let cmd_tx = r.cmd_tx.clone();
        r.sim.spawn("flood", async move {
            for _ in 0..50 {
                if let Ok(d) = pool.try_alloc(seg()) {
                    in_tx
                        .send(SegMsg {
                            stream: StreamId(2),
                            desc: d,
                        })
                        .await
                        .unwrap();
                }
            }
        });
        r.sim.spawn("command", async move {
            cmd_tx
                .send(SwitchCommand::SetRoute {
                    stream: StreamId(2),
                    entry: entry(vec![OutputId::Test]),
                })
                .await
                .unwrap();
        });
        let n = Rc::new(std::cell::Cell::new(0));
        {
            let n = n.clone();
            let pool = r.pool.clone();
            let out = r.test_out;
            r.sim.spawn("t", async move {
                while let Ok(m) = out.recv().await {
                    n.set(n.get() + 1);
                    pool.release(m.desc);
                }
            });
        }
        r.sim.run_until_idle();
        // The command was processed despite the flood: at least the
        // segments after it were routed rather than no_route-dropped.
        assert!(n.get() > 0, "route command starved");
    }
}
