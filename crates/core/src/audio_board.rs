//! The audio board: block handler, server writer, clawback mixing (§3.5,
//! §3.7, §4.2, §4.3).
//!
//! Outgoing: the codec fills a FIFO; every 2 ms the event pin fires and the
//! block handler takes a 16-byte block, applies the muting table to it,
//! and hands grouped blocks to the server-writer process for transmission
//! to the server board. Incoming: segments from the server are split into
//! blocks and fed to per-stream clawback buffers; a 2 ms mixing tick reads
//! one block from each active buffer, mixes, and drives the speaker codec.
//! CPU time for every step is charged to the audio transputer per the
//! calibrated [`pandora_audio::CpuProfile`], so the §4.2 capacities (5
//! plain / 3 full streams) are emergent.

use std::cell::RefCell;
use std::rc::Rc;

use pandora_audio::{
    gen::Signal, mix_blocks, segment_blocks, Block, Concealer, Concealment, CpuProfile, Muting,
    SegmentAssembler,
};
use pandora_buffers::{ClawbackBank, ClawbackConfig, ClawbackPool, Report, ReportClass};
use pandora_metrics::{Histogram, JitterTracker, RateLimiter};
use pandora_segment::{
    AudioSegment, SeqEvent, SeqTracker, StreamId, Timestamp, BLOCK_DURATION_NANOS,
};
use pandora_sim::{
    drifted_tick, ticker, Cpu, Priority, Receiver, Sender, SimDuration, SimTime, Spawner,
};

/// CPU claim priority of the outgoing (capture) path. Principle 1: "under
/// overload, incoming data streams should be degraded before outgoing data
/// streams" — the outgoing block handler outranks the incoming mix
/// (which claims at [`pandora_sim::PRIO_OUTPUT`]).
pub const PRIO_OUTGOING: pandora_sim::ClaimPriority = 13;

/// A 2 ms block tagged with its source timestamp, as it travels through
/// the playback path.
#[derive(Debug, Clone, Copy)]
pub struct TimedBlock {
    /// The µ-law samples.
    pub block: Block,
    /// Source timestamp in source-boot-relative nanoseconds.
    pub ts_nanos: u64,
}

/// Configuration of the outgoing (microphone) path.
pub struct CaptureConfig {
    /// The microphone signal.
    pub signal: Box<dyn Signal>,
    /// Blocks grouped per segment (1 / 2 / 12; default 2).
    pub blocks_per_segment: usize,
    /// Crystal drift of this box's codec clock.
    pub drift: f64,
    /// Per-block CPU cost of the outgoing path.
    pub outgoing_cost: SimDuration,
    /// Depth of the codec FIFO in blocks before overrun.
    pub fifo_depth: usize,
}

/// Statistics of the capture path.
#[derive(Clone, Default)]
pub struct CaptureStats {
    inner: Rc<RefCell<CaptureInner>>,
}

#[derive(Default)]
struct CaptureInner {
    blocks: u64,
    segments: u64,
    dropped_busy: u64,
}

impl CaptureStats {
    /// Blocks taken from the codec FIFO.
    pub fn blocks(&self) -> u64 {
        self.inner.borrow().blocks
    }

    /// Segments handed to the server writer.
    pub fn segments(&self) -> u64 {
        self.inner.borrow().segments
    }

    /// Segments dropped because the server writer was still busy and its
    /// decoupling slot was full.
    pub fn dropped_busy(&self) -> u64 {
        self.inner.borrow().dropped_busy
    }
}

/// Spawns the microphone → server capture path.
///
/// Emits segments on `out`; the muting state (shared with playback) scales
/// the microphone blocks (§4.3: the stream is muted *after* the speaker
/// threshold detection, with ≥4 ms in hand).
pub fn spawn_audio_capture(
    spawner: &Spawner,
    name: &str,
    mut config: CaptureConfig,
    muting: Option<Rc<RefCell<Muting>>>,
    cpu: Cpu,
    out: Sender<AudioSegment>,
) -> CaptureStats {
    let stats = CaptureStats::default();
    let s = stats.clone();
    let (tick_rx, _tick_handle) = ticker(
        spawner,
        &format!("{name}:codec-in"),
        SimDuration::from_nanos(BLOCK_DURATION_NANOS),
        config.fifo_depth,
        config.drift,
    );
    // The server writer: "implemented as a separate process to allow some
    // concurrency in case the Server is busy" (§3.5). One segment of
    // decoupling; if it is still occupied the block handler drops.
    let (writer_tx, writer_rx) = pandora_sim::buffered::<AudioSegment>(1);
    let writer_name = format!("audio:{name}:server-writer");
    spawner.spawn_prio(&writer_name, Priority::High, async move {
        while let Ok(seg) = writer_rx.recv().await {
            if out.send(seg).await.is_err() {
                return;
            }
        }
    });
    let handler_name = format!("audio:{name}:block-handler");
    spawner.spawn(&handler_name, async move {
        let mut assembler = SegmentAssembler::new(config.blocks_per_segment);
        while let Ok(tick) = tick_rx.recv().await {
            // Drain the whole codec FIFO backlog under one claim: the
            // transputer's high-priority block handler preempts; in this
            // non-preemptive model the batch claim gives the same
            // guarantee (Principle 1: outgoing data never starves).
            let mut ticks = vec![tick];
            while let Some(t) = tick_rx.try_recv() {
                ticks.push(t);
            }
            cpu.claim_prio(config.outgoing_cost.mul(ticks.len() as u64), PRIO_OUTGOING)
                .await;
            for tick in ticks {
                let raw = config.signal.next_block();
                let block = match &muting {
                    Some(m) => m.borrow().apply_mic(&raw),
                    None => raw,
                };
                s.inner.borrow_mut().blocks += 1;
                // Timestamp "derived from the Transputer clock as close as
                // possible to the data source": the tick time.
                let ts = Timestamp::from_nanos(tick.at.as_nanos());
                if let Some(seg) = assembler.push(block, ts) {
                    match writer_tx.try_send(seg) {
                        Ok(()) => s.inner.borrow_mut().segments += 1,
                        Err(_) => s.inner.borrow_mut().dropped_busy += 1,
                    }
                }
            }
        }
    });
    stats
}

/// Configuration of the incoming (speaker) path.
#[derive(Clone)]
pub struct PlaybackConfig {
    /// Clawback parameters.
    pub clawback: ClawbackConfig,
    /// Shared clawback pool size in blocks.
    pub pool_blocks: usize,
    /// Whether jitter correction cost is charged (the "straightforward
    /// case" of §4.2 charges mixing only).
    pub charge_clawback: bool,
    /// Whether the muting scan cost is charged.
    pub charge_muting: bool,
    /// Whether the interface-code overhead is charged.
    pub charge_interface: bool,
    /// CPU cost profile.
    pub costs: CpuProfile,
    /// Crystal drift of this box's playback clock.
    pub drift: f64,
    /// Maximum blocks concealed (replay-last) per detected gap (§3.8:
    /// "we replay the last 2ms block, and try to ensure that it does not
    /// happen frequently").
    pub conceal_cap_blocks: usize,
    /// Keep the mixed output blocks for offline quality analysis.
    pub record_output: bool,
    /// Depth of the codec *output* FIFO in nanoseconds. §4.2 accounts
    /// "4ms … in the buffering to the codec" on the paper's measured 8 ms
    /// best one-way trip; mixed blocks sit this long before they sound.
    pub codec_output_fifo_ns: u64,
    /// Principle 1: claim the mix's CPU time at
    /// [`pandora_sim::PRIO_OUTPUT`]; when `false` the mix competes at
    /// normal priority (the conformance-suite ablation).
    pub output_priority: bool,
}

impl Default for PlaybackConfig {
    fn default() -> Self {
        PlaybackConfig {
            clawback: ClawbackConfig::default(),
            pool_blocks: 2_000,
            charge_clawback: true,
            charge_muting: true,
            charge_interface: true,
            costs: CpuProfile::default(),
            drift: 0.0,
            conceal_cap_blocks: 6,
            record_output: false,
            codec_output_fifo_ns: 4_000_000,
            output_priority: true,
        }
    }
}

/// Shared view of the playback path — the speaker-side instrumentation.
#[derive(Clone)]
pub struct SpeakerSink {
    inner: Rc<RefCell<SpeakerInner>>,
}

struct SpeakerInner {
    /// Mix ticks processed.
    ticks: u64,
    /// Ticks completed after their deadline (CPU overload indicator).
    late_ticks: u64,
    /// Largest lag behind the tick deadline seen, ns.
    max_lag_ns: u64,
    /// Latency from source timestamp to mix, per delivered block.
    latency: Histogram,
    /// Per-stream segment arrival jitter.
    jitter: std::collections::HashMap<StreamId, JitterTracker>,
    /// Per-stream sequence trackers.
    seq: std::collections::HashMap<StreamId, SeqTracker>,
    /// Blocks concealed by replay.
    concealed: u64,
    /// Current clawback delay per stream (ns), sampled each tick.
    delay_series: pandora_metrics::TimeSeries,
    /// Active stream count per tick (for capacity experiments).
    max_active: usize,
    /// Recorded mixer output.
    output: Vec<Block>,
    /// Aggregate clawback stats snapshot (updated each tick).
    clawback_stats: pandora_buffers::ClawbackStats,
    segments_in: u64,
    /// P8 local adaptation: while set, the mix output is silence. Audio
    /// is muted, never degraded (Principle 2) — sustained loss sounds
    /// worse than silence, so the health monitor flips this instead of
    /// thinning the stream.
    muted: bool,
    /// Ticks mixed to silence while muted.
    muted_ticks: u64,
}

impl SpeakerSink {
    fn new() -> Self {
        SpeakerSink {
            inner: Rc::new(RefCell::new(SpeakerInner {
                ticks: 0,
                late_ticks: 0,
                max_lag_ns: 0,
                latency: Histogram::new(),
                jitter: Default::default(),
                seq: Default::default(),
                concealed: 0,
                delay_series: pandora_metrics::TimeSeries::new("clawback_delay"),
                max_active: 0,
                output: Vec::new(),
                clawback_stats: Default::default(),
                segments_in: 0,
                muted: false,
                muted_ticks: 0,
            })),
        }
    }

    /// Mix ticks processed.
    pub fn ticks(&self) -> u64 {
        self.inner.borrow().ticks
    }

    /// Ticks that finished after their 2 ms deadline.
    pub fn late_ticks(&self) -> u64 {
        self.inner.borrow().late_ticks
    }

    /// Fraction of ticks that were late.
    pub fn late_fraction(&self) -> f64 {
        let i = self.inner.borrow();
        if i.ticks == 0 {
            0.0
        } else {
            i.late_ticks as f64 / i.ticks as f64
        }
    }

    /// Largest processing lag observed, in nanoseconds.
    pub fn max_lag_ns(&self) -> u64 {
        self.inner.borrow().max_lag_ns
    }

    /// Block latency distribution (source timestamp → mix), nanoseconds.
    pub fn latency_ns(&self) -> Histogram {
        self.inner.borrow().latency.clone()
    }

    /// Segment arrival jitter for one stream.
    pub fn jitter_of(&self, stream: StreamId) -> Option<JitterTracker> {
        self.inner.borrow().jitter.get(&stream).cloned()
    }

    /// Segments lost according to sequence tracking, summed over streams.
    pub fn segments_lost(&self) -> u64 {
        self.inner.borrow().seq.values().map(|t| t.lost()).sum()
    }

    /// Segments received, summed over streams.
    pub fn segments_received(&self) -> u64 {
        self.inner.borrow().segments_in
    }

    /// Blocks concealed by replay-last.
    pub fn concealed(&self) -> u64 {
        self.inner.borrow().concealed
    }

    /// The clawback delay trace of the (single) monitored stream.
    pub fn delay_series(&self) -> pandora_metrics::TimeSeries {
        self.inner.borrow().delay_series.clone()
    }

    /// Largest simultaneous active stream count seen.
    pub fn max_active_streams(&self) -> usize {
        self.inner.borrow().max_active
    }

    /// The recorded mixer output (empty unless `record_output`).
    pub fn output(&self) -> Vec<Block> {
        self.inner.borrow().output.clone()
    }

    /// Aggregate clawback statistics.
    pub fn clawback_stats(&self) -> pandora_buffers::ClawbackStats {
        self.inner.borrow().clawback_stats
    }

    /// Engages or releases the P8 audio mute. While muted the playback
    /// task keeps its 2 ms cadence (segments are still tracked, so loss
    /// statistics and recovery detection keep working) but mixes
    /// silence.
    pub fn set_muted(&self, muted: bool) {
        self.inner.borrow_mut().muted = muted;
    }

    /// Whether the P8 mute is currently engaged.
    pub fn muted(&self) -> bool {
        self.inner.borrow().muted
    }

    /// Ticks mixed to silence while muted.
    pub fn muted_ticks(&self) -> u64 {
        self.inner.borrow().muted_ticks
    }

    /// Per-stream `(stream, received, lost)` counters from sequence
    /// tracking, in ascending stream order (deterministic) — the health
    /// monitor's sampling surface.
    pub fn stream_stats(&self) -> Vec<(StreamId, u64, u64)> {
        let i = self.inner.borrow();
        let mut out: Vec<(StreamId, u64, u64)> = i
            .seq
            .iter()
            .map(|(&s, t)| (s, t.received(), t.lost()))
            .collect();
        out.sort_by_key(|&(s, _, _)| s.0);
        out
    }
}

/// Spawns the server → speaker playback path.
///
/// `segments` delivers `(stream, segment)` pairs from the server board;
/// the task mixes every 2 ms and exposes everything through the returned
/// [`SpeakerSink`].
#[allow(clippy::too_many_arguments)] // mirrors the board's full wiring harness
pub fn spawn_audio_playback(
    spawner: &Spawner,
    name: &str,
    config: PlaybackConfig,
    muting: Option<Rc<RefCell<Muting>>>,
    cpu: Cpu,
    segments: Receiver<(StreamId, AudioSegment)>,
    reports: Sender<Report>,
    report_min_period: SimDuration,
) -> SpeakerSink {
    let sink = SpeakerSink::new();
    let s = sink.clone();
    let proc_name = format!("audio:{name}:playback");
    let task_name = proc_name.clone();
    spawner.spawn(&task_name, async move {
        let pool = ClawbackPool::new(config.pool_blocks);
        let mut bank: ClawbackBank<TimedBlock> = ClawbackBank::new(config.clawback, pool);
        let mut concealers: std::collections::HashMap<StreamId, Concealer> = Default::default();
        let mut limiter = RateLimiter::new(report_min_period.as_nanos());
        let start = pandora_sim::now();
        let mut tick_no: u64 = 0;
        loop {
            tick_no += 1;
            let deadline = drifted_tick(
                start,
                SimDuration::from_nanos(BLOCK_DURATION_NANOS),
                config.drift,
                tick_no,
            );
            // Between ticks, accept arriving segments (PRI: the tick timer
            // is modelled by the deadline on the ALT).
            loop {
                match pandora_sim::recv_deadline(&segments, deadline).await {
                    Some(Ok((stream, seg))) => {
                        handle_segment(
                            &mut bank,
                            &mut concealers,
                            &s,
                            &config,
                            stream,
                            seg,
                            &reports,
                            &mut limiter,
                            &proc_name,
                        )
                        .await;
                    }
                    Some(Err(_)) => return,
                    None => break, // Tick time.
                }
            }
            // The 2ms mix.
            let active = bank.active_streams();
            let mut cost = active as u64 * config.costs.mix_per_stream_ns;
            if config.charge_clawback {
                cost += active as u64 * config.costs.clawback_per_stream_ns;
            }
            if config.charge_muting {
                cost += config.costs.muting_per_block_ns;
            }
            if config.charge_interface {
                cost += config.costs.interface_per_tick_ns;
            }
            if cost > 0 {
                let prio = if config.output_priority {
                    pandora_sim::PRIO_OUTPUT
                } else {
                    pandora_sim::PRIO_NORMAL
                };
                cpu.claim_prio(SimDuration::from_nanos(cost), prio).await;
            }
            let mixed_inputs = bank.mix_tick();
            let now = pandora_sim::now();
            {
                let mut i = s.inner.borrow_mut();
                i.ticks += 1;
                i.max_active = i.max_active.max(active);
                // The mix for tick n must complete within the block period
                // (before the codec drains the FIFO entry): it is late when
                // it finishes materially past `deadline + 2ms`.
                let lag = now
                    .as_nanos()
                    .saturating_sub(deadline.as_nanos() + BLOCK_DURATION_NANOS);
                if lag > BLOCK_DURATION_NANOS / 4 {
                    i.late_ticks += 1;
                }
                i.max_lag_ns = i.max_lag_ns.max(lag);
                for (_, tb) in &mixed_inputs {
                    // End-to-end to the loudspeaker: mix time minus source
                    // timestamp, plus the codec output FIFO residence.
                    i.latency.record(
                        (now.as_nanos().saturating_sub(tb.ts_nanos) + config.codec_output_fifo_ns)
                            as f64,
                    );
                }
                if let Some((sid, _)) = mixed_inputs.first() {
                    let d = bank.delay_nanos(*sid).unwrap_or(0);
                    i.delay_series.push(now.as_nanos(), d as f64);
                }
                i.clawback_stats = bank.total_stats();
            }
            let blocks: Vec<Block> = mixed_inputs.iter().map(|(_, tb)| tb.block).collect();
            let muted = {
                let mut i = s.inner.borrow_mut();
                if i.muted {
                    i.muted_ticks += 1;
                }
                i.muted
            };
            // P8 mute: keep the cadence, silence the output (Principle
            // 2 — audio is muted, never degraded).
            let mixed = if muted {
                mix_blocks(std::iter::empty::<&Block>())
            } else {
                mix_blocks(blocks.iter())
            };
            if let Some(m) = &muting {
                m.borrow_mut().observe_speaker(&mixed);
            }
            if config.record_output {
                s.inner.borrow_mut().output.push(mixed);
            }
        }
    });
    sink
}

#[allow(clippy::too_many_arguments)]
async fn handle_segment(
    bank: &mut ClawbackBank<TimedBlock>,
    concealers: &mut std::collections::HashMap<StreamId, Concealer>,
    sink: &SpeakerSink,
    config: &PlaybackConfig,
    stream: StreamId,
    seg: AudioSegment,
    reports: &Sender<Report>,
    limiter: &mut RateLimiter,
    proc_name: &str,
) {
    let now = pandora_sim::now();
    {
        let mut i = sink.inner.borrow_mut();
        i.segments_in += 1;
        let duration = seg.duration_nanos().max(BLOCK_DURATION_NANOS);
        i.jitter
            .entry(stream)
            .or_insert_with(|| JitterTracker::new(duration))
            .arrival(now.as_nanos());
    }
    // Loss detection by sequence number (§3.8) with replay-last
    // concealment, capped.
    let event = {
        let mut i = sink.inner.borrow_mut();
        i.seq
            .entry(stream)
            .or_default()
            .observe(seg.common.sequence)
    };
    let concealer = concealers
        .entry(stream)
        .or_insert_with(|| Concealer::new(Concealment::RepeatLast));
    if let SeqEvent::Gap { missing } = event {
        let blocks_missing = missing as usize * seg.block_count();
        let conceal = blocks_missing.min(config.conceal_cap_blocks);
        for k in 0..conceal {
            let block = concealer.conceal();
            sink.inner.borrow_mut().concealed += 1;
            let ts = seg
                .common
                .timestamp
                .as_nanos()
                .saturating_sub((conceal - k) as u64 * BLOCK_DURATION_NANOS);
            let _ = bank.arrival(
                stream,
                TimedBlock {
                    block,
                    ts_nanos: ts,
                },
            );
        }
        let key = format!("gap:{stream}");
        if limiter.allow(&key, now.as_nanos()) {
            let _ = reports
                .send(Report::new(
                    now,
                    proc_name,
                    ReportClass::Error,
                    format!("{stream}: {missing} segment(s) lost, concealed {conceal} block(s)"),
                ))
                .await;
        }
    }
    if event == SeqEvent::Stale {
        return;
    }
    let base_ts = seg.common.timestamp.as_nanos();
    for (k, block) in segment_blocks(&seg).into_iter().enumerate() {
        concealer.deliver(block);
        let outcome = bank.arrival(
            stream,
            TimedBlock {
                block,
                ts_nanos: base_ts + k as u64 * BLOCK_DURATION_NANOS,
            },
        );
        if outcome == pandora_buffers::Arrival::OverLimit {
            let key = format!("overlimit:{stream}");
            if limiter.allow(&key, now.as_nanos()) {
                let _ = reports
                    .send(Report::new(
                        now,
                        proc_name,
                        ReportClass::Fault,
                        format!("{stream}: clawback buffer at 120ms cap, dropping"),
                    ))
                    .await;
            }
        }
    }
}

/// Convenience: a playback rig fed directly by generated segments — used
/// by unit tests and the capacity benches (no server board involved).
pub struct DirectFeed {
    /// Send `(stream, segment)` pairs here.
    pub tx: Sender<(StreamId, AudioSegment)>,
}

/// Spawns a generator task producing `n_streams` synthetic audio streams
/// at the nominal rate into `tx`, each as `blocks_per_segment`-block
/// segments, for `duration`.
pub fn spawn_stream_generators(
    spawner: &Spawner,
    tx: Sender<(StreamId, AudioSegment)>,
    n_streams: usize,
    blocks_per_segment: usize,
    duration: SimTime,
) {
    for k in 0..n_streams {
        let tx = tx.clone();
        spawner.spawn(&format!("gen:{k}"), async move {
            let mut signal = pandora_audio::gen::Tone::new(200.0 + 50.0 * k as f64, 6_000.0);
            let mut asm = SegmentAssembler::new(blocks_per_segment);
            let period = SimDuration::from_nanos(BLOCK_DURATION_NANOS);
            let mut n: u64 = 0;
            loop {
                n += 1;
                let at = SimTime::ZERO + period.mul(n);
                if at > duration {
                    return;
                }
                pandora_sim::delay_until(at).await;
                let ts = Timestamp::from_nanos(at.as_nanos());
                if let Some(seg) = asm.push(signal.next_block(), ts) {
                    if tx.send((StreamId(k as u32 + 1), seg)).await.is_err() {
                        return;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_audio::MutingConfig;
    use pandora_sim::{channel, unbounded, Simulation};

    fn playback_rig(
        config: PlaybackConfig,
    ) -> (
        Simulation,
        Sender<(StreamId, AudioSegment)>,
        SpeakerSink,
        Cpu,
    ) {
        let sim = Simulation::new();
        let cpu = Cpu::new("audio", SimDuration::from_nanos(700));
        let (tx, rx) = channel::<(StreamId, AudioSegment)>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let sink = spawn_audio_playback(
            &sim.spawner(),
            "t",
            config,
            None,
            cpu.clone(),
            rx,
            rep_tx,
            SimDuration::from_millis(100),
        );
        (sim, tx, sink, cpu)
    }

    #[test]
    fn three_full_streams_meet_deadlines() {
        // E1 calibration check: 3 streams on the full path never miss.
        let (mut sim, tx, sink, _cpu) = playback_rig(PlaybackConfig::default());
        spawn_stream_generators(&sim.spawner(), tx, 3, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(2));
        assert!(sink.ticks() > 900);
        assert_eq!(
            sink.late_ticks(),
            0,
            "late: {}/{}",
            sink.late_ticks(),
            sink.ticks()
        );
        assert_eq!(sink.max_active_streams(), 3);
    }

    #[test]
    fn five_full_streams_overload() {
        // 5 streams with clawback+muting+interface exceed the 2ms budget.
        let (mut sim, tx, sink, _cpu) = playback_rig(PlaybackConfig::default());
        spawn_stream_generators(&sim.spawner(), tx, 5, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(2));
        assert!(
            sink.late_fraction() > 0.3,
            "expected heavy lateness, got {}",
            sink.late_fraction()
        );
    }

    #[test]
    fn five_plain_streams_fit() {
        // The "straightforward case": mixing only.
        let config = PlaybackConfig {
            charge_clawback: false,
            charge_muting: false,
            charge_interface: false,
            ..PlaybackConfig::default()
        };
        let (mut sim, tx, sink, _cpu) = playback_rig(config);
        spawn_stream_generators(&sim.spawner(), tx, 5, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            sink.late_ticks(),
            0,
            "late: {}/{}",
            sink.late_ticks(),
            sink.ticks()
        );
    }

    #[test]
    fn six_plain_streams_overload() {
        let config = PlaybackConfig {
            charge_clawback: false,
            charge_muting: false,
            charge_interface: false,
            ..PlaybackConfig::default()
        };
        let (mut sim, tx, sink, _cpu) = playback_rig(config);
        spawn_stream_generators(&sim.spawner(), tx, 6, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(2));
        assert!(sink.late_fraction() > 0.3, "got {}", sink.late_fraction());
    }

    #[test]
    fn latency_close_to_buffering_minimum() {
        // One stream, no jitter: latency ≈ segment accumulation (2 blocks)
        // plus the clawback queue — single-digit milliseconds.
        let (mut sim, tx, sink, _cpu) = playback_rig(PlaybackConfig::default());
        spawn_stream_generators(&sim.spawner(), tx, 1, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(2));
        let mut lat = sink.latency_ns();
        assert!(lat.count() > 500);
        let p50_ms = lat.percentile(50.0) / 1e6;
        assert!(p50_ms < 10.0, "p50 latency {p50_ms}ms");
    }

    #[test]
    fn p8_mute_keeps_cadence_and_silences_output() {
        let config = PlaybackConfig {
            record_output: true,
            ..PlaybackConfig::default()
        };
        let (mut sim, tx, sink, _cpu) = playback_rig(config);
        spawn_stream_generators(&sim.spawner(), tx, 1, 2, SimTime::from_secs(2));
        sim.run_until(SimTime::from_secs(1));
        let ticks_before = sink.ticks();
        assert_eq!(sink.muted_ticks(), 0);
        let loud_before = sink
            .output()
            .iter()
            .any(|b| *b != mix_blocks(std::iter::empty::<&Block>()));
        assert!(loud_before, "tone should be audible before the mute");
        sink.set_muted(true);
        sim.run_until(SimTime::from_secs(2));
        assert!(sink.ticks() > ticks_before + 400, "cadence must continue");
        assert!(sink.muted_ticks() > 400);
        let silence = mix_blocks(std::iter::empty::<&Block>());
        let tail = sink.output();
        assert!(
            tail[tail.len() - 100..].iter().all(|b| *b == silence),
            "muted ticks must mix silence"
        );
        // Loss statistics keep flowing while muted (detection intact).
        let stats = sink.stream_stats();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].1 > 400, "received counter must keep counting");
        sink.set_muted(false);
        assert!(!sink.muted());
    }

    #[test]
    fn capture_groups_blocks_into_segments() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("audio", SimDuration::ZERO);
        let (tx, rx) = channel::<AudioSegment>();
        let stats = spawn_audio_capture(
            &sim.spawner(),
            "t",
            CaptureConfig {
                signal: Box::new(pandora_audio::gen::Tone::new(440.0, 8_000.0)),
                blocks_per_segment: 2,
                drift: 0.0,
                outgoing_cost: SimDuration::from_micros(250),
                fifo_depth: 16,
            },
            None,
            cpu,
            tx,
        );
        let n = Rc::new(std::cell::Cell::new(0u64));
        let nn = n.clone();
        sim.spawn("sink", async move {
            while let Ok(seg) = rx.recv().await {
                assert_eq!(seg.block_count(), 2);
                nn.set(nn.get() + 1);
            }
        });
        sim.run_until(SimTime::from_millis(100));
        // 100ms = 50 blocks = 25 segments (minus pipeline warmup).
        assert!((23..=25).contains(&n.get()), "segments {}", n.get());
        assert_eq!(stats.dropped_busy(), 0);
    }

    #[test]
    fn muting_couples_speaker_to_mic() {
        // A loud incoming stream must duck the outgoing microphone.
        let mut sim = Simulation::new();
        let cpu = Cpu::new("audio", SimDuration::from_nanos(700));
        let muting = Rc::new(RefCell::new(Muting::new(MutingConfig::default())));
        let (seg_tx, seg_rx) = channel::<(StreamId, AudioSegment)>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let _sink = spawn_audio_playback(
            &sim.spawner(),
            "t",
            PlaybackConfig::default(),
            Some(muting.clone()),
            cpu.clone(),
            seg_rx,
            rep_tx,
            SimDuration::from_millis(100),
        );
        // Loud far-end audio.
        let tx2 = seg_tx.clone();
        sim.spawn("loud", async move {
            let mut sig = pandora_audio::gen::Tone::new(300.0, 20_000.0);
            let mut asm = SegmentAssembler::new(2);
            for n in 1..500u64 {
                pandora_sim::delay_until(SimTime::from_nanos(n * BLOCK_DURATION_NANOS)).await;
                let ts = Timestamp::from_nanos(pandora_sim::now().as_nanos());
                if let Some(seg) = asm.push(sig.next_block(), ts) {
                    if tx2.send((StreamId(1), seg)).await.is_err() {
                        return;
                    }
                }
            }
        });
        // Outgoing mic with muting applied.
        let (mic_tx, mic_rx) = channel::<AudioSegment>();
        let _cstats = spawn_audio_capture(
            &sim.spawner(),
            "t",
            CaptureConfig {
                signal: Box::new(pandora_audio::gen::Tone::new(440.0, 10_000.0)),
                blocks_per_segment: 2,
                drift: 0.0,
                outgoing_cost: SimDuration::from_micros(250),
                fifo_depth: 16,
            },
            Some(muting),
            cpu,
            mic_tx,
        );
        let peaks = Rc::new(RefCell::new(Vec::new()));
        let p = peaks.clone();
        sim.spawn("mic-sink", async move {
            while let Ok(seg) = mic_rx.recv().await {
                let peak = segment_blocks(&seg)
                    .iter()
                    .map(|b| b.peak())
                    .max()
                    .unwrap_or(0);
                p.borrow_mut().push(peak);
            }
        });
        sim.run_until(SimTime::from_millis(400));
        let peaks = peaks.borrow();
        assert!(peaks.len() > 50);
        // Early segments (before the far-end stream warms up) are louder
        // than the steady-state ducked ones.
        let late_avg: i64 = peaks[peaks.len() - 20..]
            .iter()
            .map(|&v| v as i64)
            .sum::<i64>()
            / 20;
        let full = pandora_audio::mulaw::decode(pandora_audio::mulaw::encode(10_000));
        assert!(
            (late_avg as i32) < full / 2,
            "mic not ducked: late {late_avg} vs full {full}"
        );
    }

    #[test]
    fn gap_triggers_concealment_and_report() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("audio", SimDuration::from_nanos(700));
        let (tx, rx) = channel::<(StreamId, AudioSegment)>();
        let (rep_tx, rep_rx) = unbounded::<Report>();
        let sink = spawn_audio_playback(
            &sim.spawner(),
            "t",
            PlaybackConfig::default(),
            None,
            cpu,
            rx,
            rep_tx,
            SimDuration::from_millis(1),
        );
        sim.spawn("feed", async move {
            let mut sig = pandora_audio::gen::Tone::new(440.0, 8_000.0);
            let mut asm = SegmentAssembler::new(2);
            let mut sent = 0u32;
            for n in 1..200u64 {
                pandora_sim::delay_until(SimTime::from_nanos(n * BLOCK_DURATION_NANOS)).await;
                let ts = Timestamp::from_nanos(pandora_sim::now().as_nanos());
                if let Some(seg) = asm.push(sig.next_block(), ts) {
                    sent += 1;
                    // Drop segments 20..22 (a 3-segment gap).
                    if (20..23).contains(&sent) {
                        continue;
                    }
                    if tx.send((StreamId(1), seg)).await.is_err() {
                        return;
                    }
                }
            }
        });
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sink.segments_lost(), 3);
        assert!(sink.concealed() > 0, "no concealment");
        assert!(sink.concealed() <= 6, "cap exceeded: {}", sink.concealed());
        let reports = rep_rx.try_recv();
        assert!(reports.is_some(), "no gap report");
    }

    #[test]
    fn arrival_jitter_measured() {
        let (mut sim, tx, sink, _cpu) = playback_rig(PlaybackConfig::default());
        spawn_stream_generators(&sim.spawner(), tx, 1, 2, SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(1));
        let j = sink.jitter_of(StreamId(1)).expect("tracker");
        assert!(j.count() > 200);
        // Direct feed: essentially no jitter.
        assert!(j.peak_to_peak() < 100_000.0, "p2p {}", j.peak_to_peak());
    }
}
