//! The host-side report log.
//!
//! "Reports are sent to the host computer for display or logging" (§1.1);
//! "these messages are brought together on the host computer, and written
//! to a log file. If a stream is corrupted because of data loss, it is
//! possible to look in the log file to find out whether the data is being
//! lost within Pandora, and if so, which process is losing it and why"
//! (§3.8).

use std::cell::RefCell;
use std::rc::Rc;

use pandora_buffers::{Report, ReportClass};
use pandora_sim::{unbounded, Sender, Spawner};

/// A handle onto the collected host log.
#[derive(Clone)]
pub struct ReportLog {
    entries: Rc<RefCell<Vec<Report>>>,
    tx: Sender<Report>,
}

impl ReportLog {
    /// Spawns the multiplexing collector and returns the log handle.
    ///
    /// Every process clones [`ReportLog::sender`] as its report channel;
    /// sends never block (the host link is modelled as an unbounded sink,
    /// report volume being tiny next to stream traffic).
    pub fn spawn(spawner: &Spawner, name: &str) -> ReportLog {
        let (tx, rx) = unbounded::<Report>();
        let entries = Rc::new(RefCell::new(Vec::new()));
        let log = ReportLog {
            entries: entries.clone(),
            tx,
        };
        spawner.spawn(&format!("hostlog:{name}"), async move {
            while let Ok(r) = rx.recv().await {
                entries.borrow_mut().push(r);
            }
        });
        log
    }

    /// The sender processes use as their report channel.
    pub fn sender(&self) -> Sender<Report> {
        self.tx.clone()
    }

    /// All reports collected so far.
    pub fn entries(&self) -> Vec<Report> {
        self.entries.borrow().clone()
    }

    /// Number of reports collected.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Returns `true` when no report has arrived.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Reports from sources whose name contains `needle`.
    pub fn from_source(&self, needle: &str) -> Vec<Report> {
        self.entries
            .borrow()
            .iter()
            .filter(|r| r.source.contains(needle))
            .cloned()
            .collect()
    }

    /// Reports of a given class.
    pub fn of_class(&self, class: ReportClass) -> Vec<Report> {
        self.entries
            .borrow()
            .iter()
            .filter(|r| r.class == class)
            .cloned()
            .collect()
    }

    /// Renders the log as the paper's host log file would look.
    pub fn render(&self) -> String {
        self.entries
            .borrow()
            .iter()
            .map(|r| format!("{r}\n"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{SimTime, Simulation};

    #[test]
    fn collects_and_filters() {
        let mut sim = Simulation::new();
        let log = ReportLog::spawn(&sim.spawner(), "boxa");
        let tx = log.sender();
        sim.spawn("proc", async move {
            tx.send(Report::new(
                SimTime::ZERO,
                "switch",
                ReportClass::Overload,
                "dropped 3",
            ))
            .await
            .unwrap();
            tx.send(Report::new(
                SimTime::ZERO,
                "clawback",
                ReportClass::Fault,
                "limit",
            ))
            .await
            .unwrap();
        });
        sim.run_until_idle();
        assert_eq!(log.len(), 2);
        assert_eq!(log.from_source("switch").len(), 1);
        assert_eq!(log.of_class(ReportClass::Fault).len(), 1);
        assert!(log.render().contains("dropped 3"));
        assert!(!log.is_empty());
    }
}
