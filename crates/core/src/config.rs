//! Box-wide configuration and the calibrated cost model.
//!
//! Absolute CPU costs on the authors' T425s are unpublished; DESIGN.md §2
//! explains the calibration: we pin the capacities the paper states
//! (5 plain / 3 full audio streams per audio transputer, §4.2) via
//! [`pandora_audio::CpuProfile`], pick link rates straight from figure 1.2
//! (20 Mbit/s links, 100 Mbit/s FIFOs), and let every other behaviour
//! emerge.

use pandora_audio::{CpuProfile, MutingConfig};
use pandora_buffers::ClawbackConfig;
use pandora_recover::HealthConfig;
use pandora_sim::SimDuration;

/// How the network output process schedules cells from different segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxMode {
    /// The paper's implementation: one segment's cells go out back-to-back;
    /// "video segments can hold up following audio segments, introducing
    /// up to 20ms of jitter in a stream" (§4.2).
    NonInterleaved,
    /// Cell-level round-robin between pending segments — the fix the paper
    /// implies; reproduced as an ablation (E4).
    Interleaved,
}

/// Per-board CPU costs beyond the audio profile.
#[derive(Debug, Clone, Copy)]
pub struct VideoCosts {
    /// Capture-side cost per video line (read + compress + slice).
    pub capture_per_line_ns: u64,
    /// Mixer-side cost per video line (decompress + interpolate + copy).
    pub display_per_line_ns: u64,
    /// Server-side cost per segment switched (one copy in, one per copy out).
    pub switch_per_segment_ns: u64,
}

impl Default for VideoCosts {
    fn default() -> Self {
        VideoCosts {
            capture_per_line_ns: 12_000,
            display_per_line_ns: 10_000,
            switch_per_segment_ns: 20_000,
        }
    }
}

/// Complete configuration of one Pandora's Box.
#[derive(Debug, Clone)]
pub struct BoxConfig {
    /// Box name (used in process and report names).
    pub name: &'static str,
    /// Audio-board cost calibration.
    pub audio_costs: CpuProfile,
    /// Video/server cost calibration.
    pub video_costs: VideoCosts,
    /// Context-switch cost charged per CPU claim (§3.1: "less than 1µs").
    pub switch_cost: SimDuration,
    /// Blocks per outgoing audio segment (2 by default, §3.2).
    pub blocks_per_segment: usize,
    /// Clawback configuration (targets, rate, caps).
    pub clawback: ClawbackConfig,
    /// Shared clawback pool size in blocks (2000 = 4 s, §3.7.2).
    pub clawback_pool_blocks: usize,
    /// Muting parameters (figure 4.1).
    pub muting: MutingConfig,
    /// Whether hands-free muting is enabled on this box.
    pub muting_enabled: bool,
    /// Audio-board link rate to the server (20 Mbit/s, figure 1.2).
    pub audio_link_bps: u64,
    /// Video FIFO rate to/from the server (100 Mbit/s, figure 1.2).
    pub video_fifo_bps: u64,
    /// Capacity of each output decoupling buffer, in segments.
    pub decoupling_capacity: usize,
    /// Capacity of the audio-specific network decoupling buffer
    /// (kept small so "video delays do not become aggravating", fig 3.7).
    pub audio_net_buffer: usize,
    /// Video backlog cap (segments) in the network scheduler before the
    /// oldest-stream drop policy (Principle 3) engages.
    pub video_backlog_cap: usize,
    /// Network transmit scheduling mode.
    pub tx_mode: TxMode,
    /// Segment buffer pool size on the server board.
    pub pool_buffers: usize,
    /// Byte slabs in the payload arena (a little above `pool_buffers`:
    /// reassembly writers hold regions before a descriptor exists).
    pub slab_buffers: usize,
    /// Fixed capacity of one payload slab, in bytes. Must hold the
    /// largest whole received frame (headers + payload).
    pub slab_bytes: usize,
    /// Relative crystal drift of this box's clocks (e.g. `1e-5`).
    pub clock_drift: f64,
    /// Minimum period between reports of one error class (§3.8).
    pub report_min_period: SimDuration,
    /// Principle 1: output processes claim the CPU at
    /// [`pandora_sim::PRIO_OUTPUT`]. Disabled, the audio mix competes at
    /// normal priority — a conformance-suite ablation, not a mode the
    /// paper supports.
    pub output_priority: bool,
    /// Principle 2: the network scheduler drains audio ahead of video.
    /// Disabled, video is served first and audio waits behind the backlog.
    pub audio_priority: bool,
    /// Principle 3: when the video backlog overflows, drop from the
    /// longest-open stream. Disabled, the newest stream is the victim.
    pub p3_oldest_first: bool,
    /// Principle 4: the switch takes commands ahead of data (PRI ALT).
    /// Disabled, data is polled first and commands starve under load.
    pub command_priority: bool,
    /// Principle 5: switch outputs go through *ready-mode* decoupling
    /// buffers, so a slow output loses its own traffic only. Disabled, the
    /// gates block on a full buffer and stall the whole switch.
    pub ready_mode: bool,
    /// Principle 8: spawn the box's stream-health monitor with these
    /// tunables (local adaptation: audio mute, video rate divisor).
    /// `None` disables local adaptation entirely.
    pub health: Option<HealthConfig>,
}

impl BoxConfig {
    /// The standard configuration, calibrated per DESIGN.md §2.
    pub fn standard(name: &'static str) -> Self {
        BoxConfig {
            name,
            audio_costs: CpuProfile::default(),
            video_costs: VideoCosts::default(),
            switch_cost: SimDuration::from_nanos(700),
            blocks_per_segment: 2,
            clawback: ClawbackConfig::default(),
            clawback_pool_blocks: 2_000,
            muting: MutingConfig::default(),
            muting_enabled: true,
            audio_link_bps: 20_000_000,
            video_fifo_bps: 100_000_000,
            decoupling_capacity: 32,
            audio_net_buffer: 8,
            video_backlog_cap: 24,
            tx_mode: TxMode::NonInterleaved,
            pool_buffers: 256,
            slab_buffers: 288,
            slab_bytes: 64 * 1024,
            clock_drift: 0.0,
            report_min_period: SimDuration::from_millis(500),
            output_priority: true,
            audio_priority: true,
            p3_oldest_first: true,
            command_priority: true,
            ready_mode: true,
            health: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matches_paper_figures() {
        let c = BoxConfig::standard("test");
        assert_eq!(c.audio_link_bps, 20_000_000);
        assert_eq!(c.video_fifo_bps, 100_000_000);
        assert_eq!(c.blocks_per_segment, 2);
        assert_eq!(c.clawback.count_threshold, 4096);
        assert_eq!(c.clawback_pool_blocks, 2_000);
        assert!(c.switch_cost < SimDuration::from_micros(1));
        assert_eq!(c.tx_mode, TxMode::NonInterleaved);
    }
}
